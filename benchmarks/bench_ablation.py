"""Ablations of the reproduction's own design choices.

Not a paper experiment — these sweeps justify implementation decisions
called out in DESIGN.md:

* wait-list strategy (paper's ordered linked list vs binary heap) as the
  number of distinct live levels grows;
* the virtual-time substrate's processor model (one-processor-per-thread
  vs a bounded pool) on the E3 workload — showing the paper's
  multiprocessor assumption is the regime where ragged synchronization
  pays;
* wavefront column-block granularity (sync amortization inside the
  wavefront pattern).
"""

from __future__ import annotations

import threading

from repro.bench import Table, measure
from repro.core import MonotonicCounter


def test_ablation_waitlist_strategy(benchmark, show):
    """O(L) list insertion vs O(log L) heap insertion, single-threaded:
    insert a waiter at each of L levels (worst-case ascending order for
    the list), then release all."""
    table = Table(
        "ablation A: wait-list strategy, park/release of L distinct levels (ms)",
        ["levels", "linked", "heap"],
        caption="the paper's list is fine at realistic L; the heap wins asymptotically",
    )

    def park_release(strategy: str, levels: int) -> None:
        counter = MonotonicCounter(strategy=strategy)
        ready = threading.Semaphore(0)
        threads = [
            threading.Thread(
                target=lambda lv=level: (ready.release(), counter.check(lv, timeout=30)),
                daemon=True,
            )
            for level in range(1, levels + 1)
        ]
        for thread in threads:
            thread.start()
        for _ in range(levels):
            ready.acquire()
        while counter.snapshot().total_waiters < levels:
            pass
        counter.increment(levels)
        for thread in threads:
            thread.join(30)

    for levels in (16, 64, 256):
        linked = measure(lambda: park_release("linked", levels), repeats=3)
        heap = measure(lambda: park_release("heap", levels), repeats=3)
        table.add_row(levels, linked.mean * 1e3, heap.mean * 1e3)
    show(table)
    benchmark(lambda: park_release("linked", 64))


def test_ablation_processor_model(benchmark, show):
    """The sim's processor knob: with processors << threads, ragged and
    barrier converge (no parallelism to recover); with one processor per
    thread (the paper's regime) ragged wins.  Justifies DESIGN.md's
    default of an unbounded pool."""
    from repro.apps.sim_models import sim_floyd_warshall

    table = Table(
        "ablation B: FW counter-vs-barrier ratio by processor pool (N=48, 8 threads, imbalance 0.6)",
        ["processors", "barrier", "counter", "counter/barrier"],
    )
    for processors in (1, 2, 4, 8, None):
        barrier = sim_floyd_warshall(
            48, 8, "barrier", imbalance=0.6, seed=3, processors=processors
        )
        counter = sim_floyd_warshall(
            48, 8, "counter", imbalance=0.6, seed=3, processors=processors
        )
        table.add_row(
            "∞" if processors is None else processors,
            barrier.makespan,
            counter.makespan,
            counter.makespan / barrier.makespan,
        )
    show(table)
    benchmark(
        lambda: sim_floyd_warshall(48, 8, "counter", imbalance=0.6, seed=3, processors=4)
    )


def test_ablation_wavefront_granularity(benchmark, show):
    """Column-block sweep for the 2-D wavefront: per-block sync cost vs
    lost diagonal overlap — the §5.3 granularity story on a 2-D pattern."""
    import numpy as np

    from repro.apps.lcs import lcs_length_sequential, lcs_length_wavefront

    rng = np.random.default_rng(0)
    a = "".join(rng.choice(list("ACGT")) for _ in range(96))
    b = "".join(rng.choice(list("ACGT")) for _ in range(96))
    expected = lcs_length_sequential(a, b)
    table = Table(
        "ablation C: wavefront LCS wall clock by column block (96x96, 4 threads, ms)",
        ["col_block", "time", "correct"],
    )
    for col_block in (1, 4, 16, 48, 96):
        timing = measure(
            lambda cb=col_block: lcs_length_wavefront(a, b, num_threads=4, col_block=cb),
            repeats=3,
        )
        got = lcs_length_wavefront(a, b, num_threads=4, col_block=col_block)
        table.add_row(col_block, timing.mean * 1e3, got == expected)
    show(table)
    benchmark(lambda: lcs_length_wavefront(a, b, num_threads=4, col_block=16))


def test_ablation_traced_counter_overhead(benchmark, show):
    """Per-op cost of instrumentation layers: plain -> traced (vector
    clocks) — what the one-run certificate costs at the operation level."""
    from repro.determinism import DeterminismChecker

    table = Table(
        "ablation D: per-op cost of instrumentation (µs/op, 5k ops)",
        ["implementation", "increment", "immediate check"],
    )
    plain = MonotonicCounter()
    checker = DeterminismChecker()
    traced = checker.counter("t")
    for name, counter in (("plain", plain), ("traced", traced)):
        inc = measure(
            lambda c=counter: [c.increment(1) for _ in range(5000)], repeats=3
        ).mean / 5000
        chk = measure(
            lambda c=counter: [c.check(1) for _ in range(5000)], repeats=3
        ).mean / 5000
        table.add_row(name, inc * 1e6, chk * 1e6)
    show(table)
    hot = MonotonicCounter()
    benchmark(lambda: hot.increment(1))
