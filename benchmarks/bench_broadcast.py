"""E6 — §5.3 single-writer multiple-reader broadcast.

Regenerates:

* the block-size granularity sweep (per-op overhead vs pipelining) in
  virtual time — the trade the paper's blocked listing exists for;
* the one-counter-many-queues observable: distinct live suspension
  levels when readers use different granularities;
* real-thread broadcast throughput vs block size.
"""

from __future__ import annotations

import threading

from repro.apps.sim_models import sim_broadcast
from repro.bench import Table, measure
from repro.core import MonotonicCounter
from repro.patterns import SingleWriterBroadcast
from repro.structured import ThreadScope


def test_e6_block_size_sweep(benchmark, show):
    table = Table(
        "E6a: broadcast granularity sweep (2048 items, 4 readers, op cost 0.5)",
        ["block size", "makespan", "sync ops", "vs block=1"],
        caption="blocking amortizes synchronization; too-large blocks lose pipelining (§5.3)",
    )
    baseline = None
    for block in (1, 4, 16, 64, 256, 1024, 2048):
        result = sim_broadcast(
            2048, 4, writer_block=block, reader_block=block, op_cost=0.5
        )
        ops = sum(stats.sync_ops for stats in result.tasks.values())
        if baseline is None:
            baseline = result.makespan
        table.add_row(block, result.makespan, ops, result.makespan / baseline)
    show(table)
    benchmark(
        lambda: sim_broadcast(2048, 4, writer_block=16, reader_block=16, op_cost=0.5)
    )


def test_e6_mixed_granularity(benchmark, show):
    """Different readers, different block sizes — one counter serves all."""
    table = Table(
        "E6b: per-reader granularity (writer block 8)",
        ["reader blocks", "makespan", "max live levels on the one counter"],
    )
    from repro.simthread import Compute, Simulation

    for blocks in ((1, 1, 1), (1, 8, 64), (64, 64, 64)):

        sim = Simulation()
        counter = sim.counter("dataCount")
        n = 1024

        def writer():
            pending = 0
            for _ in range(n):
                yield Compute(1.0)
                pending += 1
                if pending == 8:
                    yield counter.increment(pending)
                    pending = 0
            if pending:
                yield counter.increment(pending)

        def reader(block):
            for i in range(n):
                if i % block == 0:
                    yield counter.check(min(i + block, n))
                yield Compute(1.0)

        sim.spawn(writer(), name="w")
        for r, block in enumerate(blocks):
            sim.spawn(reader(block), name=f"r{r}")
        result = sim.run()
        table.add_row("/".join(map(str, blocks)), result.makespan, counter.max_live_levels)
    show(table)
    benchmark(lambda: sim_broadcast(1024, 3, writer_block=8, reader_block=8))


def test_e6_real_thread_throughput(benchmark, show):
    table = Table(
        "E6c: real-thread broadcast wall clock (20k items, 3 readers, ms)",
        ["block size", "time", "counter ops"],
    )
    n = 20_000

    def run_broadcast(block: int) -> MonotonicCounter:
        counter = MonotonicCounter(stats=True)
        bc = SingleWriterBroadcast(n, counter=counter)
        with ThreadScope() as scope:
            for _ in range(3):
                scope.spawn(lambda: sum(1 for _ in bc.read(block_size=block)))
            bc.publish_blocked(list(range(n)), block_size=block)
        return counter

    for block in (1, 16, 256):
        timing = measure(lambda: run_broadcast(block), repeats=3, warmup=1)
        counter = run_broadcast(block)
        ops = counter.stats.increments + counter.stats.checks
        table.add_row(block, timing.mean * 1e3, ops)
    show(table)
    benchmark(lambda: run_broadcast(256))


def test_e6_distinct_suspension_levels(benchmark, show):
    """The §5.3 structural claim on live threads: readers park at
    *different levels of one counter* simultaneously."""
    counter = MonotonicCounter()
    bc = SingleWriterBroadcast(300, counter=counter)
    parked = threading.Event()

    def reader(block):
        for _ in bc.read(block_size=block):
            pass

    with ThreadScope() as scope:
        for block in (1, 10, 100):
            scope.spawn(reader, block)
        from tests.helpers import wait_until

        wait_until(lambda: len(counter.snapshot().waiting_levels) == 3)
        levels = counter.snapshot().waiting_levels
        for i in range(300):
            bc.publish(i)
    table = Table(
        "E6d: simultaneous suspension levels on one counter",
        ["reader block sizes", "parked levels observed"],
    )
    table.add_row("1 / 10 / 100", str(levels))
    show(table)
    assert levels == (1, 10, 100)
    benchmark(lambda: MonotonicCounter().increment(1))
