"""E8 — §7 implementation complexity: cost ∝ distinct waiting levels.

The paper: "The storage requirements of a counter are proportional to the
number of different levels at which threads are waiting ... The time
complexity of Check and Increment operations is also proportional to the
number of different levels at which threads are waiting, not to the total
number of waiting threads."

Regenerates:

* storage: wait-node high-water vs (waiters, levels) grid;
* release cost: one increment releasing W waiters parked on L levels,
  for the paper's linked list, the heap variant, and the naive
  single-queue broadcast baseline (which wakes everyone on every
  increment — what §7's per-level queues avoid);
* uncontended op costs (increment, immediate check).
"""

from __future__ import annotations

import pytest

from repro.bench import Table, measure, spread_waiters
from repro.core import BroadcastCounter, MonotonicCounter

FACTORIES = {
    "linked": lambda: MonotonicCounter(strategy="linked", stats=True),
    "heap": lambda: MonotonicCounter(strategy="heap", stats=True),
    "broadcast": lambda: BroadcastCounter(stats=True),
}


def test_e8_storage_proportional_to_levels(benchmark, show):
    table = Table(
        "E8a: live wait nodes vs waiters and levels (linked strategy)",
        ["waiters", "distinct levels", "max live nodes", "max live waiters"],
        caption="storage tracks L, not W (§7)",
    )
    for waiters, levels in ((16, 1), (16, 4), (64, 4), (64, 16), (128, 8), (128, 64)):
        counter = MonotonicCounter(stats=True)
        result = spread_waiters(counter, waiters=waiters, levels=levels)
        table.add_row(waiters, levels, result.max_live_levels, result.max_live_waiters)
        assert result.max_live_levels <= levels
    show(table)
    benchmark(lambda: spread_waiters(MonotonicCounter(), waiters=32, levels=8))


@pytest.mark.parametrize("strategy", sorted(FACTORIES))
def test_e8_release_cost_by_strategy(benchmark, show, strategy):
    """Wall time to park W waiters on L levels and release them all,
    stepping the counter one level at a time (the worst case for the
    naive broadcast counter: every increment wakes every waiter)."""
    table = Table(
        f"E8b[{strategy}]: park + stepped release wall clock (ms)",
        ["waiters", "levels", "time"],
    )
    for waiters, levels in ((32, 1), (32, 8), (32, 32), (96, 8)):
        timing = measure(
            lambda: spread_waiters(
                FACTORIES[strategy](),
                waiters=waiters,
                levels=levels,
                increment_steps=levels,
            ),
            repeats=3,
            warmup=1,
        )
        table.add_row(waiters, levels, timing.mean * 1e3)
    show(table)
    benchmark(
        lambda: spread_waiters(
            FACTORIES[strategy](), waiters=32, levels=8, increment_steps=8
        )
    )


def test_e8_wakeups_linked_vs_broadcast(benchmark, show):
    """The structural count behind E8b: spurious wakeups per run.  The
    §7 implementation wakes each thread exactly once; the naive
    single-queue counter re-wakes every parked thread on every increment."""
    table = Table(
        "E8c: threads woken during a stepped release (32 waiters)",
        ["levels", "linked wakeups", "broadcast wakeups"],
        caption="counted by the implementations' own stats; linked == waiters exactly",
    )
    for levels in (1, 8, 32):
        linked = MonotonicCounter(stats=True)
        spread_waiters(linked, waiters=32, levels=levels, increment_steps=levels)
        naive = BroadcastCounter(stats=True)
        spread_waiters(naive, waiters=32, levels=levels, increment_steps=levels)
        table.add_row(levels, linked.stats.threads_woken, naive.stats.threads_woken)
        assert linked.stats.threads_woken == 32
        assert naive.stats.threads_woken >= linked.stats.threads_woken
    show(table)
    benchmark(lambda: spread_waiters(MonotonicCounter(), waiters=32, levels=32, increment_steps=32))


def test_e8_uncontended_op_cost(benchmark, show):
    table = Table(
        "E8d: uncontended operation cost (µs/op, 10k ops)",
        ["implementation", "increment", "immediate check"],
    )
    for name, factory in sorted(FACTORIES.items()):
        counter = factory()

        def increments():
            for _ in range(10_000):
                counter.increment(1)

        inc = measure(increments, repeats=3).mean / 10_000
        counter2 = factory()
        counter2.increment(1)

        def checks():
            for _ in range(10_000):
                counter2.check(1)

        chk = measure(checks, repeats=3).mean / 10_000
        table.add_row(name, inc * 1e6, chk * 1e6)
    show(table)
    hot = MonotonicCounter()
    benchmark(lambda: hot.increment(1))
