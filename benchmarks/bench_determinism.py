"""E7 — §6 determinacy: exhaustive interleaving counts.

Regenerates the final-state census for the paper's three two-thread
programs (and the read/write-split variants) over *every* schedule, plus
the cost of one-execution certification (vector-clock race checking) on
real threads.
"""

from __future__ import annotations

from repro.bench import Table
from repro.verify import (
    counter_ordered_program,
    counter_racy_program,
    counter_racy_program_split,
    explore,
    lock_program,
    lock_program_split,
)

PROGRAMS = [
    ("lock (paper §6)", lock_program),
    ("counter ordered (paper §6)", counter_ordered_program),
    ("counter racy (paper §6)", counter_racy_program),
    ("lock, split r/w", lock_program_split),
    ("counter racy, split r/w", counter_racy_program_split),
]


def test_e7_exhaustive_state_census(benchmark, show):
    table = Table(
        "E7a: final states of x over ALL interleavings (x=0; x+1 || x*2)",
        ["program", "executions", "distinct final x", "deterministic"],
        caption="the §6 determinacy claims, model-checked",
    )
    for name, factory in PROGRAMS:
        report = explore(factory)
        table.add_row(
            name,
            report.executions,
            "{" + ", ".join(map(str, sorted(report.states))) + "}",
            report.deterministic,
        )
    show(table)
    benchmark(lambda: explore(counter_ordered_program))


def test_e7_ordered_chain_scaling(benchmark, show):
    """Schedule-space growth vs state count: counter-ordered chains stay
    at exactly one state while executions grow combinatorially."""
    from repro.simthread import SimCounter
    from repro.verify import ExplorerProgram

    def chain(n):
        def factory():
            c = SimCounter()
            x = [1]

            def worker(i):
                yield c.check(i)
                x[0] = x[0] * 2 + i
                yield c.increment(1)

            return ExplorerProgram(tasks=[worker(i) for i in range(n)], observe=lambda: x[0])

        return factory

    table = Table(
        "E7b: counter-ordered chain of N threads",
        ["N", "executions explored", "distinct final states"],
    )
    for n in (2, 3, 4, 5):
        report = explore(chain(n))
        table.add_row(n, report.executions, len(report.states))
        assert report.deterministic
    show(table)
    benchmark(lambda: explore(chain(4)))


def test_e7_checker_certification_cost(benchmark, show):
    """Wall-clock cost of the vector-clock checker on the §4.5 program —
    the price of a one-run certificate."""
    from repro.apps.floyd_warshall import shortest_paths_counter
    from repro.apps.graphs import random_dense_graph
    from repro.bench import measure
    from repro.determinism import DeterminismChecker

    edge = random_dense_graph(48, seed=0)
    plain = measure(lambda: shortest_paths_counter(edge, 4), repeats=3)

    def instrumented():
        checker = DeterminismChecker()
        shortest_paths_counter(edge, 4, counter=checker.counter("kCount"))
        checker.assert_race_free()

    traced = measure(instrumented, repeats=3)
    table = Table(
        "E7c: cost of determinacy certification (FW, N=48, 4 threads, ms)",
        ["variant", "time", "overhead"],
    )
    table.add_row("plain counter", plain.mean * 1e3, 1.0)
    table.add_row("traced counter + race check", traced.mean * 1e3, traced.mean / plain.mean)
    show(table)
    benchmark(instrumented)
