"""E3 — §4 Floyd-Warshall: barrier vs condvar-array vs counter.

The paper's argument: the barrier version serializes iterations across
all threads; the event/counter versions let each thread proceed as soon
as row k is staged, so they win under load imbalance, and the counter
version does it with ONE synchronization object instead of N.

Regenerates:

* the virtual-time makespan table (variant × threads × imbalance) — the
  "who wins, by how much, where it grows" series;
* the synchronization-object count table (§4.5's storage claim);
* real-thread wall-clock timings of the three implementations
  (synchronization overhead on a live runtime; the GIL serializes the
  arithmetic, so treat these as overhead, not speedup).
"""

from __future__ import annotations

import numpy as np

from repro.apps.floyd_warshall import (
    shortest_paths_barrier,
    shortest_paths_counter,
    shortest_paths_events,
)
from repro.apps.graphs import random_dense_graph
from repro.apps.sim_models import sim_floyd_warshall
from repro.bench import Table

VARIANTS = ("barrier", "events", "counter")


def test_e3_virtual_time_makespan(benchmark, show):
    table = Table(
        "E3a: Floyd-Warshall virtual-time makespan (N=64 rows)",
        ["threads", "imbalance", "barrier", "events", "counter", "counter/barrier"],
        caption="ragged variants win under imbalance; counter == events (paper §4.4-4.5)",
    )
    for threads in (2, 4, 8):
        for imbalance in (0.0, 0.5, 0.9):
            makespans = {
                variant: sim_floyd_warshall(
                    64, threads, variant, imbalance=imbalance, seed=42
                ).makespan
                for variant in VARIANTS
            }
            table.add_row(
                threads,
                imbalance,
                makespans["barrier"],
                makespans["events"],
                makespans["counter"],
                makespans["counter"] / makespans["barrier"],
            )
    show(table)
    benchmark(lambda: sim_floyd_warshall(64, 8, "counter", imbalance=0.5, seed=42))


def test_e3_sync_object_count(benchmark, show):
    """§4.5: N events vs one counter; live suspension levels stay small."""
    from repro.core import MonotonicCounter

    table = Table(
        "E3b: synchronization objects, events vs counter",
        ["N (rows)", "event objects", "counter objects", "max live levels"],
        caption="'the number of these objects in existence at any given time is likely to be much less than N' (§4.5)",
    )
    for n in (32, 64, 128):
        counter = MonotonicCounter(name="kCount", stats=True)
        edge = random_dense_graph(n, seed=1)
        shortest_paths_counter(edge, 4, counter=counter)
        table.add_row(n, n, 1, counter.stats.max_live_levels)
    show(table)
    edge = random_dense_graph(64, seed=1)
    benchmark(lambda: shortest_paths_counter(edge, 4))


def test_e3_real_thread_wall_clock(benchmark, show):
    table = Table(
        "E3c: Floyd-Warshall real-thread wall clock (N=128, ms)",
        ["threads", "barrier", "events", "counter"],
        caption="CPython threads: measures synchronization overhead, not speedup (GIL)",
    )
    from repro.bench import measure

    edge = random_dense_graph(128, seed=3)
    expected = None
    for threads in (1, 2, 4):
        row = [threads]
        for solver in (shortest_paths_barrier, shortest_paths_events, shortest_paths_counter):
            timing = measure(lambda s=solver: s(edge, threads), repeats=3, warmup=1)
            row.append(timing.mean * 1e3)
            result = solver(edge, threads)
            if expected is None:
                expected = result
            assert np.allclose(result, expected)
        table.add_row(*row)
    show(table)
    benchmark(lambda: shortest_paths_counter(edge, 4))
