"""E4 — §5.1 ragged barriers: time-stepped simulation with boundary exchange.

The paper's claim: complete barrier synchronization is unnecessarily
restrictive when dependencies are pairwise; counters remove the N-way
bottleneck and reduce load-imbalance stalls.  Regenerates the
barrier-vs-ragged makespan series over thread count and imbalance, the
per-thread wait-time breakdown, and a real-thread wall-clock comparison.
"""

from __future__ import annotations

import numpy as np

from repro.apps.heat import heat_barrier, heat_ragged, heat_sequential
from repro.apps.sim_models import sim_heat
from repro.bench import Table, measure


def test_e4_virtual_time_makespan(benchmark, show):
    table = Table(
        "E4a: heat simulation virtual-time makespan (200 steps)",
        ["threads", "imbalance", "barrier", "ragged", "ragged/barrier"],
        caption="pairwise (ragged) sync beats the N-way barrier as imbalance grows (§5.1)",
    )
    for threads in (4, 8, 16):
        for imbalance in (0.0, 0.25, 0.5, 0.9):
            barrier = sim_heat(threads, 200, "barrier", imbalance=imbalance, seed=7)
            ragged = sim_heat(threads, 200, "ragged", imbalance=imbalance, seed=7)
            table.add_row(
                threads,
                imbalance,
                barrier.makespan,
                ragged.makespan,
                ragged.makespan / barrier.makespan,
            )
    show(table)
    benchmark(lambda: sim_heat(16, 200, "ragged", imbalance=0.5, seed=7))


def test_e4_wait_time_breakdown(benchmark, show):
    """Where the barrier loses: accumulated synchronization wait."""
    table = Table(
        "E4b: total synchronization wait (16 threads, 200 steps)",
        ["imbalance", "barrier wait", "ragged wait", "saved"],
    )
    for imbalance in (0.0, 0.5, 0.9):
        barrier = sim_heat(16, 200, "barrier", imbalance=imbalance, seed=9)
        ragged = sim_heat(16, 200, "ragged", imbalance=imbalance, seed=9)
        table.add_row(
            imbalance,
            barrier.total_wait,
            ragged.total_wait,
            barrier.total_wait - ragged.total_wait,
        )
    show(table)
    benchmark(lambda: sim_heat(16, 200, "barrier", imbalance=0.5, seed=9))


def test_e4_gauss_seidel_2d(benchmark, show):
    """§5.1 generalized to 2-D: red-black Gauss-Seidel, barrier vs ragged
    counters (same protocol, two half-sweeps per iteration)."""
    from repro.apps.gauss_seidel import (
        gauss_seidel_barrier,
        gauss_seidel_ragged,
        gauss_seidel_sequential,
    )

    table = Table(
        "E4d: 2-D red-black Gauss-Seidel wall clock (40x32 grid, 60 sweeps, ms)",
        ["threads", "barrier", "ragged"],
        caption="real-thread overhead; correctness is bitwise vs the oracle",
    )
    grid = np.random.default_rng(2).uniform(0, 100, (40, 32))
    expected = gauss_seidel_sequential(grid, 60)
    for threads in (2, 4):
        barrier_t = measure(
            lambda: gauss_seidel_barrier(grid, 60, num_threads=threads), repeats=3
        )
        ragged_t = measure(
            lambda: gauss_seidel_ragged(grid, 60, num_threads=threads), repeats=3
        )
        assert np.array_equal(
            gauss_seidel_ragged(grid, 60, num_threads=threads), expected
        )
        table.add_row(threads, barrier_t.mean * 1e3, ragged_t.mean * 1e3)
    show(table)
    benchmark(lambda: gauss_seidel_ragged(grid, 60, num_threads=4))


def test_e4_real_thread_wall_clock(benchmark, show):
    table = Table(
        "E4c: heat real-thread wall clock (N=34 cells, 200 steps, ms)",
        ["threads", "barrier", "ragged"],
        caption="overhead measurement on CPython threads",
    )
    init = np.random.default_rng(0).uniform(0, 100, 34)
    expected = heat_sequential(init, 200)
    for threads in (2, 4, 8):
        barrier_t = measure(
            lambda: heat_barrier(init, 200, num_threads=threads), repeats=3
        )
        ragged_t = measure(
            lambda: heat_ragged(init, 200, num_threads=threads), repeats=3
        )
        assert np.allclose(heat_ragged(init, 200, num_threads=threads), expected)
        table.add_row(threads, barrier_t.mean * 1e3, ragged_t.mean * 1e3)
    show(table)
    benchmark(lambda: heat_ragged(init, 200, num_threads=4))
