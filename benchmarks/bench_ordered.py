"""E5 — §5.2 mutual exclusion with sequential ordering: lock vs counter.

Two claims to regenerate:

* determinacy: the counter-ordered fold produces ONE result across runs
  (bitwise, on a floating-point workload whose sum is order-sensitive);
  the lock fold is schedule-dependent;
* cost: sequential ordering sacrifices concurrency — quantified in
  virtual time, where the counter version's makespan meets or exceeds
  the lock version's.
"""

from __future__ import annotations

from repro.apps.accumulate import (
    accumulate_counter,
    accumulate_lock,
    accumulate_sequential,
    distinct_float_sums,
    float_sum,
    ill_conditioned_terms,
)
from repro.apps.sim_models import sim_ordered_accumulate
from repro.bench import Table


def test_e5_determinacy_table(benchmark, show):
    table = Table(
        "E5a: ordered accumulation determinacy (ill-conditioned float sum)",
        ["threads", "lock distinct", "counter distinct", "counter == sequential"],
        caption="20 jittered runs each; permutation-sensitivity of the workload shown below",
    )
    for n in (8, 16, 32):
        terms = ill_conditioned_terms(n, seed=n)
        sequential = accumulate_sequential(terms, float_sum, 0.0)
        lock_results = {
            accumulate_lock(terms, float_sum, 0.0, jitter=0.001) for _ in range(20)
        }
        counter_results = {
            accumulate_counter(terms, float_sum, 0.0, jitter=0.001) for _ in range(20)
        }
        table.add_row(
            n,
            len(lock_results),
            len(counter_results),
            counter_results == {sequential},
        )
    show(table)
    terms16 = ill_conditioned_terms(16, seed=16)
    show(
        f"workload sensitivity: {distinct_float_sums(terms16, permutations=50)} "
        "distinct sums over 50 random permutations of the 16-term series"
    )
    benchmark(lambda: accumulate_counter(terms16, float_sum, 0.0))


def test_e5_concurrency_cost(benchmark, show):
    table = Table(
        "E5b: the §5.2 trade in virtual time (work=10, critical section=1)",
        ["threads", "imbalance", "lock makespan", "counter makespan", "cost"],
        caption="'greater determinacy at the cost of less concurrency'",
    )
    for threads in (4, 16, 64):
        for imbalance in (0.0, 0.8):
            lock = sim_ordered_accumulate(threads, "lock", imbalance=imbalance, seed=5)
            counter = sim_ordered_accumulate(threads, "counter", imbalance=imbalance, seed=5)
            table.add_row(
                threads,
                imbalance,
                lock.makespan,
                counter.makespan,
                counter.makespan / lock.makespan,
            )
    show(table)
    benchmark(lambda: sim_ordered_accumulate(64, "counter", imbalance=0.8, seed=5))


def test_e5_list_append_ordering(benchmark, show):
    """The paper's other non-associative example: list append."""
    from repro.apps.accumulate import list_append

    items = list(range(32))
    lock_orders = {
        tuple(accumulate_lock(items, list_append, [], jitter=0.001)) for _ in range(20)
    }
    counter_orders = {
        tuple(accumulate_counter(items, list_append, [], jitter=0.001)) for _ in range(20)
    }
    table = Table(
        "E5c: list append ordering (32 appends, 20 jittered runs)",
        ["variant", "distinct orderings", "always sequential order"],
    )
    table.add_row("lock", len(lock_orders), lock_orders == {tuple(items)})
    table.add_row("counter", len(counter_orders), counter_orders == {tuple(items)})
    show(table)
    assert counter_orders == {tuple(items)}
    benchmark(lambda: accumulate_counter(items, list_append, []))
