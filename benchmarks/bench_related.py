"""E9 — §8 related work: counters vs latches, phasers, and semaphores.

The paper positions counters against mechanisms with one (or statically
many) suspension queues.  This experiment re-expresses two counter
workloads with the closest modern comparators and counts what the
substitution costs:

* the §4 iteration-ready pattern: one counter vs an ARRAY of
  CountDownLatches vs one Phaser;
* the §5.3 broadcast pattern: one counter vs per-reader semaphores
  (a semaphore's value is consumed by P, so a single semaphore cannot
  broadcast to R readers — it takes R of them, one per reader).
"""

from __future__ import annotations

from repro.bench import Table, measure
from repro.core import MonotonicCounter
from repro.structured import ThreadScope, multithreaded_for
from repro.sync import CountDownLatch, CountingSemaphore, Phaser


def _counter_pipeline(n: int, readers: int) -> None:
    counter = MonotonicCounter()

    def reader():
        for k in range(n):
            counter.check(k + 1)

    with ThreadScope() as scope:
        for _ in range(readers):
            scope.spawn(reader)
        for _ in range(n):
            counter.increment(1)


def _latch_pipeline(n: int, readers: int) -> None:
    latches = [CountDownLatch(1) for _ in range(n)]

    def reader():
        for k in range(n):
            latches[k].await_()

    with ThreadScope() as scope:
        for _ in range(readers):
            scope.spawn(reader)
        for k in range(n):
            latches[k].count_down()


def _phaser_pipeline(n: int, readers: int) -> None:
    phaser = Phaser(1)  # the writer is the only arriving party

    def reader():
        for k in range(n):
            phaser.await_advance(k)

    with ThreadScope() as scope:
        for _ in range(readers):
            scope.spawn(reader)
        for _ in range(n):
            phaser.arrive()


def _semaphore_pipeline(n: int, readers: int) -> None:
    # One semaphore PER READER: V is consumed by P, so broadcast requires
    # the writer to release once per reader per item.
    sems = [CountingSemaphore(0) for _ in range(readers)]

    def reader(r):
        for _ in range(n):
            sems[r].acquire()

    with ThreadScope() as scope:
        for r in range(readers):
            scope.spawn(reader, r)
        for _ in range(n):
            for r in range(readers):
                sems[r].release()


PIPELINES = {
    "counter x1": _counter_pipeline,
    "latch xN": _latch_pipeline,
    "phaser x1": _phaser_pipeline,
    "semaphore xR": _semaphore_pipeline,
}

OBJECTS = {
    "counter x1": lambda n, r: 1,
    "latch xN": lambda n, r: n,
    "phaser x1": lambda n, r: 1,
    "semaphore xR": lambda n, r: r,
}

WRITER_OPS = {
    "counter x1": lambda n, r: n,
    "latch xN": lambda n, r: n,
    "phaser x1": lambda n, r: n,
    "semaphore xR": lambda n, r: n * r,
}


def test_e9_iteration_ready_pattern(benchmark, show):
    n, readers = 400, 4
    table = Table(
        "E9a: the §4 'iteration k ready' pattern, by mechanism "
        f"(n={n} levels, {readers} readers, ms)",
        ["mechanism", "sync objects", "writer ops", "time"],
        caption="one counter replaces N latches / R semaphores at equal or better cost",
    )
    for name, pipeline in PIPELINES.items():
        timing = measure(lambda p=pipeline: p(n, readers), repeats=3, warmup=1)
        table.add_row(name, OBJECTS[name](n, readers), WRITER_OPS[name](n, readers), timing.mean * 1e3)
    show(table)
    benchmark(lambda: _counter_pipeline(n, readers))


def test_e9_latch_cannot_rewait_counter_can(benchmark, show):
    """Qualitative gap: a latch is single-shot; a counter level stays
    checkable forever (monotonicity).  Late-arriving readers are free
    with a counter; with latches every reader must hold all N objects."""
    counter = MonotonicCounter()
    for _ in range(100):
        counter.increment(1)
    late_reader_checks = measure(
        lambda: [counter.check(k + 1) for k in range(100)], repeats=3
    )
    table = Table(
        "E9b: late reader replaying 100 announcements (ms)",
        ["mechanism", "time", "objects the reader must reference"],
    )
    table.add_row("counter x1", late_reader_checks.mean * 1e3, 1)
    latches = [CountDownLatch(1) for _ in range(100)]
    for latch in latches:
        latch.count_down()
    latch_replay = measure(lambda: [l.await_() for l in latches], repeats=3)
    table.add_row("latch x100", latch_replay.mean * 1e3, 100)
    show(table)
    benchmark(lambda: [counter.check(k + 1) for k in range(100)])


def test_e9_suspension_queue_census(benchmark, show):
    """§8's taxonomy, measured: suspension queues per mechanism for the
    'N announcements, R waiters' workload.  Counters are the only
    mechanism whose queue count adapts to the waiters' actual positions."""
    n, readers = 50, 3
    counter = MonotonicCounter()
    # Park readers at distinct levels spread over the announcement range.
    from repro.structured import ThreadScope as _Scope
    from tests.helpers import wait_until

    with _Scope() as scope:
        for r in range(readers):
            level = (r + 1) * n // (readers + 1)
            scope.spawn(lambda lv=level: counter.check(lv, timeout=30))
        wait_until(lambda: counter.snapshot().total_waiters == readers)
        live_queues = len(counter.snapshot().nodes)
        counter.increment(n)

    table = Table(
        "E9d: suspension queues by mechanism (N=50 announcements, 3 waiters)",
        ["mechanism", "queues (static)", "queues live in this run"],
        caption="§8: counters have a dynamically varying number of queues",
    )
    table.add_row("counter x1", "dynamic", live_queues)
    table.add_row("latch xN", n, n)
    table.add_row("event xN", n, n)
    table.add_row("phaser x1", 1, 1)
    table.add_row("semaphore xR", readers, readers)
    table.add_row("monitor (1 cond)", 1, 1)
    table.add_row("rendezvous entry", 2, 2)
    show(table)
    assert live_queues == readers  # one queue per distinct waited level
    benchmark(lambda: MonotonicCounter().increment(1))


def test_e9_barrier_emulation(benchmark, show):
    """§8: counters subsume barriers — CounterBarrier vs CyclicBarrier
    throughput."""
    from repro.sync import CounterBarrier, CyclicBarrier

    table = Table(
        "E9c: barrier episode throughput (4 parties, 100 episodes, ms)",
        ["implementation", "time"],
    )
    for name, factory in (("CyclicBarrier", CyclicBarrier), ("CounterBarrier", CounterBarrier)):
        def run(factory=factory):
            barrier = factory(4)

            def party(_):
                for _ in range(100):
                    barrier.pass_()

            multithreaded_for(party, range(4))

        table.add_row(name, measure(run, repeats=3).mean * 1e3)
    show(table)

    def bench_unit():
        barrier = CounterBarrier(2)

        def party(_):
            for _ in range(20):
                barrier.pass_()

        multithreaded_for(party, range(2))

    benchmark(bench_unit)
