"""Benchmark-suite fixtures.

Every experiment regenerator both *times* a representative unit with
pytest-benchmark (so ``--benchmark-only`` reports it) and *prints* the
experiment's full table — the same rows/series the paper's evaluation
discusses.  Tables print through ``capsys.disabled()`` so they reach the
terminal without requiring ``-s``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a :class:`repro.bench.Table` (or string) to the real terminal."""

    def _show(table) -> None:
        with capsys.disabled():
            if hasattr(table, "render"):
                print(table.render())
            else:
                print(table)

    return _show
