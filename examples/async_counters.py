#!/usr/bin/env python
"""Counters beyond threads: asyncio coroutines and thread->loop bridging.

The paper (§8) claims counters "can easily be incorporated in almost any
language as a library" — the mechanism depends only on monotonicity, not
on preemption.  This example runs the §5.3 broadcast and §5.2 ordering
patterns on coroutines, then bridges a compute thread into an event loop
through one shared monotone value.

Run:  python examples/async_counters.py
"""

import asyncio
import threading

from repro.aio import AsyncCounter, CounterBridge


async def broadcast_pattern() -> None:
    print("== §5.3 broadcast, coroutine edition ==")
    n = 12
    data = [None] * n
    ready = AsyncCounter(name="dataCount")
    totals = []

    async def writer():
        for i in range(n):
            data[i] = i * i
            ready.increment(1)
            if i % 4 == 0:
                await asyncio.sleep(0)  # let readers interleave

    async def reader(r):
        total = 0
        for i in range(n):
            await ready.check(i + 1)
            total += data[i]
        totals.append((r, total))

    await asyncio.gather(writer(), reader(0), reader(1), reader(2))
    for r, total in sorted(totals):
        print(f"  reader {r}: consumed all {n} items, sum {total}")
    print(f"  one AsyncCounter served 3 readers at independent positions\n")


async def ordered_pattern() -> None:
    print("== §5.2 ordered sections, coroutine edition ==")
    turn = AsyncCounter(name="turns")
    log = []

    async def worker(i):
        await turn.check(i)
        log.append(i)
        turn.increment(1)

    # Launch in scrambled order; completion order is still 0..7.
    await asyncio.gather(*(worker(i) for i in (5, 2, 7, 0, 3, 6, 1, 4)))
    print(f"  critical sections ran in order: {log}\n")
    assert log == list(range(8))


async def bridged_pattern() -> None:
    print("== thread -> event loop bridging ==")
    bridge = CounterBridge(asyncio.get_running_loop(), name="progress")
    chunks = 8

    def compute_thread():
        import time

        for _ in range(chunks):
            time.sleep(0.005)  # stand-in for real compute
            bridge.increment(1)

    thread = threading.Thread(target=compute_thread)
    thread.start()
    for milestone in range(1, chunks + 1):
        await bridge.async_counter.check(milestone)
        print(f"  loop observed compute progress {milestone}/{chunks}")
    thread.join()
    print("  monotonicity makes the mirroring trivially correct: floors")
    print("  forwarded across threads can batch or lag without races")


async def main() -> None:
    await broadcast_pattern()
    await ordered_pattern()
    await bridged_pattern()


if __name__ == "__main__":
    asyncio.run(main())
