#!/usr/bin/env python
"""§5.3 at scale: a Paraffins-style dataflow pipeline.

Every stage is a single writer publishing an array that ALL later stages
read concurrently — the single-writer multiple-reader broadcast pattern,
synchronized end to end by counters (one per stage).  The workload is the
chemistry-free analogue described in the paper's reproduction notes:
integer partitions, where partitions of k are assembled from the streams
of every smaller stage while those streams are still being produced.

Run:  python examples/dataflow_pipeline.py
"""

import time

from repro.apps.paraffins import dataflow_partitions, partition_count
from repro.patterns import ClosableBroadcast
from repro.structured import ThreadScope, sequential_execution


def pipeline_demo() -> None:
    print("== dataflow partition pipeline (one thread per stage) ==")
    max_n = 12
    start = time.perf_counter()
    result = dataflow_partitions(max_n)
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"  stages 0..{max_n} ran concurrently in {elapsed:.1f} ms")
    for k in range(max_n + 1):
        assert len(result[k]) == partition_count(k)
    print(f"  p(n) for n=0..{max_n}: {[len(result[k]) for k in range(max_n + 1)]}")
    print(f"  partitions of 6: {result[6]}")

    with sequential_execution():
        sequential = dataflow_partitions(max_n)
    print(f"  sequential execution produces identical output: {sequential == result}")
    print("  (counter-only synchronization -> deterministic, §6)\n")


def streaming_demo() -> None:
    """The underlying primitive: an unknown-length broadcast where readers
    follow the writer live and end cleanly at close()."""
    print("== live streaming broadcast (unknown length, 3 readers) ==")
    stream: ClosableBroadcast[int] = ClosableBroadcast()
    progress = []

    def reader(r: int):
        total = 0
        for item in stream.read():
            total += item
        progress.append((r, total))

    with ThreadScope() as scope:
        for r in range(3):
            scope.spawn(reader, r)
        published = 0
        for i in range(1, 101):
            stream.publish(i)
            published += i
        stream.close()
    print(f"  writer published 100 items (sum {published})")
    for r, total in sorted(progress):
        print(f"  reader {r} consumed the full stream: sum {total}")
    assert all(total == published for _, total in progress)
    print("  one counter; readers suspended at whatever level they reached")


if __name__ == "__main__":
    pipeline_demo()
    streaming_demo()
