#!/usr/bin/env python
"""§6: monotonicity, determinacy, and sequential equivalence — live.

Three demonstrations on the paper's own two-thread programs
(``x = x + 1`` vs ``x = x * 2``):

1. exhaustive model checking of every interleaving (locks are
   nondeterministic, ordered counters are not);
2. the vector-clock race checker certifying the discipline from ONE run;
3. sequential equivalence of the counter program.

Run:  python examples/determinism_demo.py
"""

from repro.core import MonotonicCounter
from repro.determinism import DeterminismChecker, check_sequential_equivalence
from repro.structured import multithreaded
from repro.verify import (
    counter_ordered_program,
    counter_racy_program,
    explore,
    lock_program,
)


def model_check() -> None:
    print("== 1. every interleaving, exhaustively ==")
    for label, factory in (
        ("lock:            {Lock; x+=1; Unlock} || {Lock; x*=2; Unlock}", lock_program),
        ("ordered counter: {Check(0); x+=1; Inc} || {Check(1); x*=2; Inc}", counter_ordered_program),
        ("racy counter:    {Check(0); x+=1; Inc} || {Check(0); x*=2; Inc}", counter_racy_program),
    ):
        report = explore(factory)
        verdict = "deterministic" if report.deterministic else "NONDETERMINISTIC"
        print(f"  {label}")
        print(
            f"      -> {report.executions} schedules, final x ∈ "
            f"{sorted(report.states)}  [{verdict}]"
        )
    print()


def race_check() -> None:
    print("== 2. one-run certification (vector clocks) ==")
    checker = DeterminismChecker()
    x = checker.shared(0, "x")
    c = checker.counter("xCount")

    def add_one():
        c.check(0)
        x.modify(lambda v: v + 1)
        c.increment(1)

    def double():
        c.check(1)
        x.modify(lambda v: v * 2)
        c.increment(1)

    multithreaded(add_one, double)
    print(f"  ordered program: {checker.report()}   (x = {x.peek()})")

    racy = DeterminismChecker()
    y = racy.shared(0, "x")
    c2 = racy.counter("xCount")

    def r_add():
        c2.check(0)
        y.modify(lambda v: v + 1)
        c2.increment(1)

    def r_double():
        c2.check(0)
        y.modify(lambda v: v * 2)
        c2.increment(1)

    multithreaded(r_add, r_double)
    print(f"  racy program:    {racy.report()}")
    print("  (the verdict is schedule-independent: counter happens-before")
    print("   is a property of the program, not of one lucky run — §6)\n")


def sequential_equivalence() -> None:
    print("== 3. multithreaded == sequential ==")

    def program():
        c = MonotonicCounter()
        x = [0]

        def add_one():
            c.check(0)
            x[0] += 1
            c.increment(1)

        def double():
            c.check(1)
            x[0] *= 2
            c.increment(1)

        multithreaded(add_one, double)
        return x[0]

    verdict = check_sequential_equivalence(program, runs=10)
    print(f"  {verdict}")
    print("  sequential execution (multithreaded keyword ignored) and all")
    print("  threaded executions produce the same x — test your threaded")
    print("  program with ordinary sequential tools (§6)")


if __name__ == "__main__":
    model_check()
    race_check()
    sequential_equivalence()
