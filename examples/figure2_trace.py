#!/usr/bin/env python
"""Figure 2, live: the internal structure of a counter over seven steps.

Reprints the paper's trace — value, ordered wait nodes with per-level
counts and set flags — using the real implementation and real threads.

Run:  python examples/figure2_trace.py
"""

import threading
import time

from repro.core import MonotonicCounter


def settle(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.001)
    raise RuntimeError("trace did not settle")


def main() -> None:
    c = MonotonicCounter(name="c")
    print(f"(a) construction:          {c.snapshot()}")

    t1 = threading.Thread(target=c.check, args=(5,), name="T1", daemon=True)
    t1.start()
    settle(lambda: c.snapshot().total_waiters == 1)
    print(f"(b) c.Check(5) by T1:      {c.snapshot()}")

    t2 = threading.Thread(target=c.check, args=(9,), name="T2", daemon=True)
    t2.start()
    settle(lambda: c.snapshot().total_waiters == 2)
    print(f"(c) c.Check(9) by T2:      {c.snapshot()}")

    t3 = threading.Thread(target=c.check, args=(5,), name="T3", daemon=True)
    t3.start()
    settle(lambda: c.snapshot().total_waiters == 3)
    print(f"(d) c.Check(5) by T3:      {c.snapshot()}")

    c.increment(7)
    print(f"(e) c.Increment(7) by T0:  {c.snapshot()}")
    settle(lambda: c.snapshot().total_waiters == 1)
    print(f"(f/g) T1 and T3 resumed:   {c.snapshot()}")

    c.increment(2)
    for t in (t1, t2, t3):
        t.join()
    print(f"(end) T2 released at 9:    {c.snapshot()}")
    print("\nnote the §7 structure: one node per DISTINCT level (T1 and T3")
    print("share the level-5 node), list ordered by level, nodes vanish as")
    print("the last waiter leaves — storage ∝ levels, not threads")


if __name__ == "__main__":
    main()
