#!/usr/bin/env python
"""Seeing the §4 argument: Gantt charts of barrier vs counter schedules.

Renders virtual-time execution traces of the Floyd-Warshall
synchronization structure under load imbalance.  Blank space is a thread
stalled on synchronization — with the barrier, every iteration ends in a
convoy behind the slowest thread; with the counter, each thread stalls
only until the one row it needs is staged.

Run:  python examples/gantt_chart.py
"""

import random

from repro.simthread import Compute, Simulation, render_gantt
from repro.structured import block_range


def build(variant: str, *, n: int = 12, threads: int = 4, imbalance: float = 0.8, seed: int = 5):
    rng = random.Random(seed)
    rows_of = [list(block_range(t, n, threads)) for t in range(threads)]
    costs = [
        [[rng.uniform(1 - imbalance, 1 + imbalance) for _ in rows_of[t]] for _ in range(n)]
        for t in range(threads)
    ]
    sim = Simulation(trace=True)
    if variant == "barrier":
        barrier = sim.barrier(threads)

        def worker(t):
            for k in range(n):
                for cost in costs[t][k]:
                    yield Compute(cost)
                yield barrier.pass_()

    else:
        counter = sim.counter("kCount")

        def worker(t):
            for k in range(n):
                yield counter.check(k)
                for offset, i in enumerate(rows_of[t]):
                    yield Compute(costs[t][k][offset])
                    if i == k + 1:
                        yield counter.increment(1)

    for t in range(threads):
        sim.spawn(worker(t), name=f"thread{t}")
    result = sim.run()
    return sim, result


def main() -> None:
    barrier_sim, barrier_result = build("barrier")
    counter_sim, counter_result = build("counter")
    width = 100
    scale = max(barrier_result.makespan, counter_result.makespan)

    print("== §4.3 barrier version (gaps = all threads waiting for the slowest) ==")
    print(render_gantt(barrier_sim.trace, width=width, makespan=scale))
    print(f"\nmakespan: {barrier_result.makespan:.1f}   "
          f"total wait: {barrier_result.total_wait:.1f}\n")

    print("== §4.5 counter version (each thread waits only for its own row) ==")
    print(render_gantt(counter_sim.trace, width=width, makespan=scale))
    print(f"\nmakespan: {counter_result.makespan:.1f}   "
          f"total wait: {counter_result.total_wait:.1f}")
    saving = 1 - counter_result.makespan / barrier_result.makespan
    print(f"\ncounter version finishes {saving:.0%} sooner on the same workload")


if __name__ == "__main__":
    main()
