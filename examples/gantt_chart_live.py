#!/usr/bin/env python
"""The §4 Gantt argument again — on real threads, from a real trace.

``examples/gantt_chart.py`` draws the barrier-vs-counter schedules in
*virtual* time with the simthread scheduler.  This companion runs the
same imbalanced Floyd-Warshall synchronization structure on actual
``threading`` threads with observability enabled, rebuilds the schedule
from the causal trace (:mod:`repro.obs.causal`), and renders the same
chart from measured timestamps: ``#`` where a thread ran, ``.`` where it
was suspended in ``check``.

The barrier chart shows the convoy — columns of ``.`` across every row,
one per round, as the gang waits for that round's slow thread.  The
ragged counter chart shows each thread stalling only on the one row it
needs; the analyzer's critical path (printed below each chart) is
correspondingly shorter, and the run finishes sooner on identical
per-thread work.

Run:  python examples/gantt_chart_live.py
"""

from repro.obs.causal import CausalGraph, analyze, render_gantt
from repro.obs.causal.workloads import run_imbalanced_fw


def show(mode: str) -> tuple[float, float]:
    run = run_imbalanced_fw(mode, threads=4, rounds=8, base_cost=0.003)
    graph = CausalGraph.from_events(run["events"])
    report = analyze(graph)
    cp = report["critical_path"]
    print(render_gantt(graph, width=96))
    print(f"\nwall: {run['wall_s'] * 1e3:.1f} ms   "
          f"critical path: {cp['duration_s'] * 1e3:.1f} ms "
          f"({len(cp['steps'])} segments, {report['edges']} release edges)")
    for step in cp["steps"]:
        if step["kind"] == "wakeup":
            print(f"  {step['name']} resumed at {step['end_s'] * 1e3:7.2f} ms: {step['detail']}")
    return run["wall_s"], cp["duration_s"]


def main() -> None:
    print("== barrier version (every round convoys behind the slow thread) ==")
    barrier_wall, barrier_cp = show("barrier")
    print()
    print("== ragged counter version (each thread waits only for its one row) ==")
    ragged_wall, ragged_cp = show("ragged")
    print()
    saving = 1 - ragged_wall / barrier_wall
    print(f"counter version finished {saving:.0%} sooner on the same per-thread work")
    print(f"critical path shrank {barrier_cp * 1e3:.1f} ms -> {ragged_cp * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
