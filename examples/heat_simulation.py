#!/usr/bin/env python
"""§5.1: ragged barriers — heat transfer along a metal rod.

One thread per block of rod cells; each time step needs the neighbours'
previous-step values.  The traditional solution barriers ALL threads
twice per step; the counter solution synchronizes each thread only with
its two neighbours, so a slow thread only delays its neighbours — not the
whole rod.

Run:  python examples/heat_simulation.py
"""

import numpy as np

from repro.apps.heat import heat_barrier, heat_ragged, heat_sequential
from repro.apps.sim_models import sim_heat


def correctness() -> None:
    print("== correctness: 30-cell rod, 100 steps ==")
    rng = np.random.default_rng(0)
    rod = rng.uniform(0.0, 100.0, 30)
    rod[0], rod[-1] = 0.0, 100.0  # clamped ends

    reference = heat_sequential(rod, 100)
    for impl, label in ((heat_barrier, "barrier"), (heat_ragged, "ragged counters")):
        result = impl(rod, 100, num_threads=4)
        status = "matches sequential" if np.allclose(result, reference) else "MISMATCH"
        print(f"  {label:>16}: {status}")
    print(f"  mid-rod temperatures: {np.round(reference[13:17], 2)}")
    print()


def sparkline(values: np.ndarray) -> str:
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


def evolution() -> None:
    print("== diffusion toward the steady state (hot right end) ==")
    rod = np.zeros(40)
    rod[-1] = 100.0
    for steps in (0, 50, 200, 1000, 5000):
        state = heat_sequential(rod, steps)
        print(f"  t={steps:>5}: {sparkline(state)}")
    print()


def barrier_vs_ragged() -> None:
    print("== the §5.1 argument in virtual time (16 threads, 300 steps) ==")
    print(f"{'imbalance':>9}  {'barrier':>9}  {'ragged':>9}  {'ragged wins by':>14}")
    for imbalance in (0.0, 0.25, 0.5, 0.9):
        barrier = sim_heat(16, 300, "barrier", imbalance=imbalance, seed=3)
        ragged = sim_heat(16, 300, "ragged", imbalance=imbalance, seed=3)
        print(
            f"{imbalance:>9.2f}  {barrier.makespan:>9.1f}  {ragged.makespan:>9.1f}"
            f"  {1 - ragged.makespan / barrier.makespan:>13.1%}"
        )
    print("\npairwise synchronization lets fast threads run ahead; the")
    print("barrier makes every step cost the slowest thread's time (§5.1)")


if __name__ == "__main__":
    correctness()
    evolution()
    barrier_vs_ragged()
