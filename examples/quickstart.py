#!/usr/bin/env python
"""Quickstart: monotonic counters in five minutes.

Covers the whole §2 interface — ``increment``, ``check``, the missing
``decrement``/probe (on purpose!) — plus the structured ``multithreaded``
constructs the paper's listings use.

Run:  python examples/quickstart.py
"""

from repro import MonotonicCounter, multithreaded, multithreaded_for


def basics() -> None:
    print("== counter basics ==")
    c = MonotonicCounter(name="demo")
    print(f"fresh counter: {c!r}")

    c.increment(3)
    c.check(2)  # 3 >= 2: returns immediately
    print(f"after increment(3): value={c.value}; check(2) returned at once")

    # The interface has no decrement and no non-blocking probe: the value
    # is monotone, so a satisfied check can never become unsatisfied —
    # that is what makes counter synchronization race-free (§2).
    assert not hasattr(c, "decrement")
    print("no decrement operation; no probe operation — by design\n")


def writer_reader_pipeline() -> None:
    """The canonical dataflow use: announce data with increments, express
    dependencies with checks (§5.3 in miniature)."""
    print("== single-writer broadcast, two readers ==")
    n = 10
    data = [None] * n
    ready = MonotonicCounter(name="dataCount")
    consumed: list[list[int]] = [[], []]

    def writer():
        for i in range(n):
            data[i] = i * i          # publish the item...
            ready.increment(1)       # ...then broadcast its availability

    def reader(r: int):
        for i in range(n):
            ready.check(i + 1)       # suspend until data[i] exists
            consumed[r].append(data[i])

    multithreaded(writer, lambda: reader(0), lambda: reader(1))
    print(f"reader 0 saw: {consumed[0]}")
    print(f"reader 1 saw: {consumed[1]}")
    assert consumed[0] == consumed[1] == [i * i for i in range(n)]
    print("both readers saw every item, in order — reading does not consume\n")


def ordered_critical_sections() -> None:
    """§5.2: a check/increment pair = a lock that also fixes the order."""
    print("== mutual exclusion WITH sequential ordering ==")
    order = MonotonicCounter(name="turns")
    log: list[int] = []

    def worker(i: int):
        order.check(i)       # wait for my turn: threads 0..i-1 are done
        log.append(i)        # exclusive access, deterministic order
        order.increment(1)   # hand over to thread i+1

    multithreaded_for(worker, range(8))
    print(f"critical-section order: {log}")
    assert log == list(range(8))
    print("always 0..7, on every run — deterministic by construction\n")


def one_counter_many_queues() -> None:
    """The paper's implementation insight (§7): threads suspend at
    *different levels* of one counter, each level its own queue."""
    import threading
    import time

    print("== one counter, many suspension queues ==")
    c = MonotonicCounter(name="levels")
    threads = [
        threading.Thread(target=c.check, args=(level,), daemon=True)
        for level in (5, 9, 5, 12)
    ]
    for t in threads:
        t.start()
    while c.snapshot().total_waiters < 4:
        time.sleep(0.001)
    print(f"structure while threads wait:  {c.snapshot()}")
    c.increment(12)
    for t in threads:
        t.join()
    print(f"after increment(12):           {c.snapshot()}")


if __name__ == "__main__":
    basics()
    writer_reader_pipeline()
    ordered_critical_sections()
    one_counter_many_queues()
