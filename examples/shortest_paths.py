#!/usr/bin/env python
"""§4: all-pairs shortest paths four ways, including the paper's Figure 1.

Runs the sequential, barrier, event-array, and counter versions of
Floyd-Warshall on the exact Figure 1 graph and on a random graph, checks
they agree, and shows the virtual-time makespans that motivate the
counter version.

Run:  python examples/shortest_paths.py
"""

import numpy as np

from repro.apps.floyd_warshall import (
    figure1_edge,
    figure1_path,
    shortest_paths_barrier,
    shortest_paths_counter,
    shortest_paths_events,
    shortest_paths_sequential,
)
from repro.apps.graphs import random_dense_graph
from repro.apps.sim_models import sim_floyd_warshall
from repro.core import MonotonicCounter


def show_matrix(name: str, matrix: np.ndarray) -> None:
    print(f"{name}:")
    for row in matrix:
        print("   ", "  ".join(f"{'∞' if np.isinf(v) else f'{v:g}':>4}" for v in row))


def figure1() -> None:
    print("== Figure 1: the paper's 3-vertex example ==")
    edge = figure1_edge()
    show_matrix("edge (input)", edge)
    path = shortest_paths_sequential(edge)
    show_matrix("path (output)", path)
    assert np.array_equal(path, figure1_path())
    for solver, label in (
        (shortest_paths_barrier, "barrier  (§4.3)"),
        (shortest_paths_events, "events   (§4.4)"),
        (shortest_paths_counter, "counter  (§4.5)"),
    ):
        result = solver(edge, num_threads=3)
        status = "matches Figure 1" if np.array_equal(result, figure1_path()) else "MISMATCH"
        print(f"  {label}: {status}")
    print()


def one_counter_replaces_n_events() -> None:
    print("== §4.5: one counter instead of N condition variables ==")
    n = 64
    edge = random_dense_graph(n, seed=7)
    counter = MonotonicCounter(name="kCount", stats=True)
    result = shortest_paths_counter(edge, num_threads=4, counter=counter)
    reference = shortest_paths_sequential(edge)
    assert np.allclose(result, reference)
    print(f"graph: {n} vertices, 4 threads")
    print(f"event-array version would allocate: {n} synchronization objects")
    print("counter version allocated:          1 counter")
    print(
        f"max simultaneously live wait levels: {counter.stats.max_live_levels} "
        f"(‘likely to be much less than N’ — §4.5)"
    )
    print()


def virtual_time_shapes() -> None:
    print("== why ragged beats the barrier (virtual time, N=64, 8 threads) ==")
    print(f"{'imbalance':>9}  {'barrier':>9}  {'counter':>9}  {'saving':>7}")
    for imbalance in (0.0, 0.3, 0.6, 0.9):
        barrier = sim_floyd_warshall(64, 8, "barrier", imbalance=imbalance, seed=1)
        counter = sim_floyd_warshall(64, 8, "counter", imbalance=imbalance, seed=1)
        saving = 1.0 - counter.makespan / barrier.makespan
        print(
            f"{imbalance:>9.1f}  {barrier.makespan:>9.1f}  "
            f"{counter.makespan:>9.1f}  {saving:>6.1%}"
        )
    print("\n(each thread proceeds the moment row k is staged, instead of")
    print(" waiting for every thread to finish iteration k — §4.4/§4.5)")


if __name__ == "__main__":
    figure1()
    one_counter_replaces_n_events()
    virtual_time_shapes()
