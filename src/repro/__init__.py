"""repro — a full reproduction of *Monotonic Counters: A New Mechanism
for Thread Synchronization* (Thornley & Chandy, IPPS 2000).

The headline export is :class:`MonotonicCounter` — a synchronization
object with a nonnegative value, an atomic ``increment(amount)``, and a
blocking ``check(level)`` that suspends until ``value >= level``.  Around
it, the package provides everything the paper describes or depends on:

============  =====================================================
subpackage    contents
============  =====================================================
core          the counter (paper §2, §7) and its variants
sync          traditional primitives built from scratch (§1, §8)
structured    the ``multithreaded`` block / for-loop model (§3)
determinism   race & ordering checker, sequential equivalence (§6)
simthread     deterministic virtual-time thread simulator
verify        exhaustive schedule exploration (model checking §6)
patterns      ragged barriers, ordered regions, broadcasts (§5)
apps          Floyd-Warshall, heat, accumulation, pipelines (§4-5)
bench         benchmark harness utilities
============  =====================================================

Quickstart::

    from repro import MonotonicCounter, multithreaded

    c = MonotonicCounter()
    data = []

    def writer():
        for i in range(10):
            data.append(i * i)
            c.increment(1)

    def reader():
        for i in range(10):
            c.check(i + 1)       # suspend until data[i] exists
            print(data[i])

    multithreaded(writer, reader)
"""

from repro.core import (
    BroadcastCounter,
    CheckTimeout,
    Counter,
    CounterError,
    CounterProtocol,
    CounterSnapshot,
    MonotonicCounter,
    MultiWait,
    ShardedCounter,
    WaitPolicy,
)
from repro.structured import (
    ThreadScope,
    block_range,
    multithreaded,
    multithreaded_for,
    sequential_execution,
)

__version__ = "1.0.0"

__all__ = [
    "MonotonicCounter",
    "BroadcastCounter",
    "ShardedCounter",
    "Counter",
    "CounterProtocol",
    "CounterSnapshot",
    "CounterError",
    "CheckTimeout",
    "MultiWait",
    "WaitPolicy",
    "multithreaded",
    "multithreaded_for",
    "block_range",
    "ThreadScope",
    "sequential_execution",
    "__version__",
]
