"""Package self-check: ``python -m repro``.

Runs a fast end-to-end exercise of every subsystem — a smoke test for
installations (no pytest required) and a tour for the curious.
"""

from __future__ import annotations

import sys


def main() -> int:
    import numpy as np

    import repro
    from repro import MonotonicCounter, multithreaded
    from repro.apps.floyd_warshall import (
        figure1_edge,
        figure1_path,
        shortest_paths_counter,
    )
    from repro.determinism import DeterminismChecker
    from repro.simthread import Compute, Simulation
    from repro.verify import counter_ordered_program, explore, lock_program

    print(f"repro {repro.__version__} — monotonic counters (Thornley & Chandy, IPPS 2000)")
    failures = 0

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures += 1

    # 1. The counter itself.
    c = MonotonicCounter()
    seen: list[int] = []
    multithreaded(
        lambda: [c.increment(1) for _ in range(5)],
        lambda: [c.check(i + 1) or seen.append(i) for i in range(5)],
    )
    check("counter increment/check across threads", seen == [0, 1, 2, 3, 4])

    # 2. Figure 1.
    got = shortest_paths_counter(figure1_edge(), num_threads=3)
    check("Figure 1 shortest paths (§4.5 counter version)", np.array_equal(got, figure1_path()))

    # 3. §6 determinacy, model-checked.
    check("lock program nondeterministic (§6)", explore(lock_program).states == {1, 2})
    check(
        "ordered counter program deterministic (§6)",
        explore(counter_ordered_program).deterministic,
    )

    # 4. Race checker.
    checker = DeterminismChecker()
    x = checker.shared(0, "x")
    cc = checker.counter("c")
    multithreaded(
        lambda: (x.write(1), cc.increment(1)),
        lambda: (cc.check(1), x.read()),
    )
    check("vector-clock checker certifies the discipline", checker.report().race_free)

    # 5. Virtual-time simulator.
    sim = Simulation()
    ctr = sim.counter()

    def producer():
        yield Compute(2.0)
        yield ctr.increment(1)

    def consumer():
        yield ctr.check(1)
        yield Compute(1.0)

    sim.spawn(producer())
    sim.spawn(consumer())
    check("virtual-time simulator (makespan = critical path)", sim.run().makespan == 3.0)

    if failures:
        print(f"{failures} self-check(s) FAILED")
        return 1
    print("all self-checks passed — try the scripts in examples/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
