"""Monotonic counters for asyncio — the mechanism is runtime-agnostic.

:class:`AsyncCounter` gives coroutines the §2 interface
(``increment`` / ``await check``); :class:`AsyncShardedCounter` is the
batched twin of :class:`repro.core.sharded.ShardedCounter`;
:class:`CounterBridge` mirrors a thread-side counter into an event loop
so hybrid programs share one monotone value.
"""

from repro.aio.bridge import CounterBridge
from repro.aio.counter import AsyncCounter, AsyncCounterSubscription
from repro.aio.multiwait import AsyncMultiWait
from repro.aio.sharded import AsyncShardedCounter

__all__ = [
    "AsyncCounter",
    "AsyncCounterSubscription",
    "AsyncMultiWait",
    "AsyncShardedCounter",
    "CounterBridge",
]
