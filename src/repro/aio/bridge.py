"""Bridging thread-world counters into asyncio.

A hybrid program (compute threads + an async I/O loop) often wants the
loop to await progress announced by threads.  :class:`CounterBridge`
mirrors a thread-side :class:`~repro.core.counter.MonotonicCounter` into
a loop-side :class:`~repro.aio.counter.AsyncCounter`: every thread-side
``increment`` is forwarded with ``loop.call_soon_threadsafe``.

Monotonicity makes this trivially correct: forwarding can lag, batch, or
reorder *notifications* freely because the mirrored value only ever
grows and every ``check`` condition is stable — the exact property the
paper exploits for race-freedom, reused here for cross-runtime
signalling.
"""

from __future__ import annotations

import asyncio

from repro.aio.counter import AsyncCounter
from repro.core.counter import MonotonicCounter

__all__ = ["CounterBridge"]


class CounterBridge:
    """A thread-side writer façade mirrored into an event loop.

    Create it *inside* the loop; hand :meth:`increment` (or the whole
    bridge) to threads; ``await bridge.async_counter.check(level)`` in
    coroutines.

    The thread-side counter is a full :class:`MonotonicCounter`, so
    threads can also ``check`` it directly — both worlds wait on the
    same monotone value.
    """

    __slots__ = ("_loop", "thread_counter", "async_counter")

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, *, name: str | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.thread_counter = MonotonicCounter(name=name)
        self.async_counter = AsyncCounter(name=name)

    def increment(self, amount: int = 1) -> int:
        """Thread-safe: bump the thread counter and mirror into the loop."""
        new_value = self.thread_counter.increment(amount)
        # Mirror the *target value*, not the delta: call_soon_threadsafe
        # callbacks may coalesce or arrive late, and setting an absolute
        # floor is idempotent under monotonicity.
        self._loop.call_soon_threadsafe(self._raise_to, new_value)
        return new_value

    def _raise_to(self, target: int) -> None:
        gap = target - self.async_counter.value
        if gap > 0:
            self.async_counter.increment(gap)

    def __repr__(self) -> str:
        return (
            f"<CounterBridge thread={self.thread_counter.value} "
            f"async={self.async_counter.value}>"
        )
