"""Bridging thread-world counters into asyncio.

A hybrid program (compute threads + an async I/O loop) often wants the
loop to await progress announced by threads.  :class:`CounterBridge`
mirrors a thread-side :class:`~repro.core.counter.MonotonicCounter` into
a loop-side :class:`~repro.aio.counter.AsyncCounter`: every thread-side
``increment`` is forwarded with ``loop.call_soon_threadsafe``.

Monotonicity makes this trivially correct: forwarding can lag, batch, or
reorder *notifications* freely because the mirrored value only ever
grows and every ``check`` condition is stable — the exact property the
paper exploits for race-freedom, reused here for cross-runtime
signalling.

Awaiting through the mirror is *double-parking*, though: the release
first runs the thread counter's full wake pass, then a mirrored
increment re-runs the loop counter's release machinery before the
coroutine resumes.  :meth:`CounterBridge.check` is the engine-era
direct path: the coroutine subscribes on the *thread* counter and the
releasing thread completes its loop future with one
``call_soon_threadsafe`` — a single handoff, no loop-side counter in
the loop-critical path.  The mirror stays for code that holds an
:class:`AsyncCounter` reference or mixes loop-side increments in.
"""

from __future__ import annotations

import asyncio
import concurrent.futures

from repro.aio.counter import AsyncCounter
from repro.core.counter import MonotonicCounter
from repro.core.engine import current_slot
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout

__all__ = ["CounterBridge", "raise_to", "wait_threadside"]


def raise_to(counter, target: int) -> None:
    """Idempotently raise ``counter`` to the absolute floor ``target``.

    The mirroring primitive every cross-runtime (and cross-process /
    cross-host) forwarder in this repo reduces to: notifications may
    coalesce, lag, or arrive out of order, but setting an absolute floor
    is idempotent and order-insensitive under monotonicity — applying
    {5, 3, 9} in any order leaves the counter at 9.  Works on any
    object with ``value`` and ``increment`` (thread counters take their
    lock per call; asyncio counters mutate between awaits).  A stale
    ``value`` read only under-raises, and the next notification closes
    the gap — the same lower-bound contract the obs dumps carry.
    """
    gap = target - counter.value
    if gap > 0:
        counter.increment(gap)


def wait_threadside(loop: asyncio.AbstractEventLoop, coro, timeout: float | None = None):
    """Run ``coro`` on ``loop`` from a non-loop thread, parking the
    caller on its engine :class:`~repro.core.engine.ParkingSlot`.

    The inverse leg of :meth:`CounterBridge.check`: there a thread wakes
    a coroutine with one ``call_soon_threadsafe``; here a coroutine's
    completion wakes a parked thread with one slot set (the future's
    done callback, which asyncio invokes exactly once — including on
    cancellation).  Used by the dist service's thread-side shim so a
    synchronous ``check`` against a remote counter parks on the same
    engine primitive as a local one.

    The one-set-per-park discipline is preserved on the timeout path by
    *consuming before returning*: after an expiry the future is
    cancelled and the thread re-parks until the done callback's set
    arrives, so no stray set can leak into the thread's next counter
    park.  Raises :class:`TimeoutError` on expiry; a completion racing
    the expiry is returned as success (the caller's conditions are
    stable, so late success is still success).
    """
    future = asyncio.run_coroutine_threadsafe(coro, loop)
    slot = current_slot()
    future.add_done_callback(lambda _f: slot.set())
    if not slot.wait(timeout):
        # Expired: request cancellation, then consume the set the done
        # callback is guaranteed to deliver (cancelled futures complete
        # too) so the slot is re-armed for the thread's next park.
        future.cancel()
        slot.block()
        try:
            return future.result(0)  # completed concurrently with expiry
        except concurrent.futures.CancelledError:
            raise TimeoutError(f"loop call did not complete within {timeout}s") from None
    return future.result(0)


class CounterBridge:
    """A thread-side writer façade mirrored into an event loop.

    Create it *inside* the loop; hand :meth:`increment` (or the whole
    bridge) to threads; ``await bridge.async_counter.check(level)`` in
    coroutines.

    The thread-side counter is a full :class:`MonotonicCounter`, so
    threads can also ``check`` it directly — both worlds wait on the
    same monotone value.
    """

    __slots__ = ("_loop", "thread_counter", "async_counter")

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, *, name: str | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.thread_counter = MonotonicCounter(name=name)
        self.async_counter = AsyncCounter(name=name)

    def increment(self, amount: int = 1) -> int:
        """Thread-safe: bump the thread counter and mirror into the loop."""
        new_value = self.thread_counter.increment(amount)
        # Mirror the *target value*, not the delta: call_soon_threadsafe
        # callbacks may coalesce or arrive late, and setting an absolute
        # floor is idempotent under monotonicity.
        self._loop.call_soon_threadsafe(self._raise_to, new_value)
        return new_value

    def _raise_to(self, target: int) -> None:
        raise_to(self.async_counter, target)

    async def check(self, level: int, timeout: float | None = None) -> None:
        """Await ``thread_counter.value >= level`` — the direct handoff.

        One subscription on the thread counter, one loop future, one
        ``call_soon_threadsafe`` from the releasing thread: the await
        never parks on the mirrored :class:`AsyncCounter` (whose value
        may lag the thread counter by in-flight mirror callbacks).
        Raises :class:`~repro.core.errors.CheckTimeout` on expiry;
        stability means a satisfaction racing the expiry is still
        reported as success, never as a timeout.
        """
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def deliver() -> None:  # runs on the loop
            if not future.done():
                future.set_result(None)

        def on_reach() -> None:  # runs in the incrementing thread
            loop.call_soon_threadsafe(deliver)

        subscription = self.thread_counter.subscribe(level, on_reach)
        if subscription is None:
            return  # already satisfied: no park at all
        try:
            if timeout is None:
                await future
                return
            try:
                await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # The satisfying increment may have fired concurrently
                # with the expiry (its deliver still in flight); the
                # condition is stable, so a direct re-read adjudicates.
                value = self.thread_counter.value
                if value >= level:
                    return
                raise CheckTimeout(
                    f"{self!r}: check({level}) timed out after {timeout}s "
                    f"(value={value})"
                ) from None
        finally:
            # Idempotent, and a no-op once the callback has fired; after
            # a timeout or cancellation it deregisters so the wait node
            # (or its subscriber list) is reclaimed.
            subscription.cancel()

    def __repr__(self) -> str:
        return (
            f"<CounterBridge thread={self.thread_counter.value} "
            f"async={self.async_counter.value}>"
        )
