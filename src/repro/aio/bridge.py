"""Bridging thread-world counters into asyncio.

A hybrid program (compute threads + an async I/O loop) often wants the
loop to await progress announced by threads.  :class:`CounterBridge`
mirrors a thread-side :class:`~repro.core.counter.MonotonicCounter` into
a loop-side :class:`~repro.aio.counter.AsyncCounter`: every thread-side
``increment`` is forwarded with ``loop.call_soon_threadsafe``.

Monotonicity makes this trivially correct: forwarding can lag, batch, or
reorder *notifications* freely because the mirrored value only ever
grows and every ``check`` condition is stable — the exact property the
paper exploits for race-freedom, reused here for cross-runtime
signalling.

Awaiting through the mirror is *double-parking*, though: the release
first runs the thread counter's full wake pass, then a mirrored
increment re-runs the loop counter's release machinery before the
coroutine resumes.  :meth:`CounterBridge.check` is the engine-era
direct path: the coroutine subscribes on the *thread* counter and the
releasing thread completes its loop future with one
``call_soon_threadsafe`` — a single handoff, no loop-side counter in
the loop-critical path.  The mirror stays for code that holds an
:class:`AsyncCounter` reference or mixes loop-side increments in.
"""

from __future__ import annotations

import asyncio

from repro.aio.counter import AsyncCounter
from repro.core.counter import MonotonicCounter
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout

__all__ = ["CounterBridge"]


class CounterBridge:
    """A thread-side writer façade mirrored into an event loop.

    Create it *inside* the loop; hand :meth:`increment` (or the whole
    bridge) to threads; ``await bridge.async_counter.check(level)`` in
    coroutines.

    The thread-side counter is a full :class:`MonotonicCounter`, so
    threads can also ``check`` it directly — both worlds wait on the
    same monotone value.
    """

    __slots__ = ("_loop", "thread_counter", "async_counter")

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, *, name: str | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.thread_counter = MonotonicCounter(name=name)
        self.async_counter = AsyncCounter(name=name)

    def increment(self, amount: int = 1) -> int:
        """Thread-safe: bump the thread counter and mirror into the loop."""
        new_value = self.thread_counter.increment(amount)
        # Mirror the *target value*, not the delta: call_soon_threadsafe
        # callbacks may coalesce or arrive late, and setting an absolute
        # floor is idempotent under monotonicity.
        self._loop.call_soon_threadsafe(self._raise_to, new_value)
        return new_value

    def _raise_to(self, target: int) -> None:
        gap = target - self.async_counter.value
        if gap > 0:
            self.async_counter.increment(gap)

    async def check(self, level: int, timeout: float | None = None) -> None:
        """Await ``thread_counter.value >= level`` — the direct handoff.

        One subscription on the thread counter, one loop future, one
        ``call_soon_threadsafe`` from the releasing thread: the await
        never parks on the mirrored :class:`AsyncCounter` (whose value
        may lag the thread counter by in-flight mirror callbacks).
        Raises :class:`~repro.core.errors.CheckTimeout` on expiry;
        stability means a satisfaction racing the expiry is still
        reported as success, never as a timeout.
        """
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def deliver() -> None:  # runs on the loop
            if not future.done():
                future.set_result(None)

        def on_reach() -> None:  # runs in the incrementing thread
            loop.call_soon_threadsafe(deliver)

        subscription = self.thread_counter.subscribe(level, on_reach)
        if subscription is None:
            return  # already satisfied: no park at all
        try:
            if timeout is None:
                await future
                return
            try:
                await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # The satisfying increment may have fired concurrently
                # with the expiry (its deliver still in flight); the
                # condition is stable, so a direct re-read adjudicates.
                value = self.thread_counter.value
                if value >= level:
                    return
                raise CheckTimeout(
                    f"{self!r}: check({level}) timed out after {timeout}s "
                    f"(value={value})"
                ) from None
        finally:
            # Idempotent, and a no-op once the callback has fired; after
            # a timeout or cancellation it deregisters so the wait node
            # (or its subscriber list) is reclaimed.
            subscription.cancel()

    def __repr__(self) -> str:
        return (
            f"<CounterBridge thread={self.thread_counter.value} "
            f"async={self.async_counter.value}>"
        )
