"""Monotonic counters for asyncio.

The paper (§8) argues counters are "not tied to any particular notation
or type system — they can easily be incorporated in almost any language
as a library."  This module is that claim exercised against a different
concurrency runtime: cooperative coroutines instead of preemptive
threads.  The semantics carry over unchanged because they never depended
on preemption — only on monotonicity.

:class:`AsyncCounter` mirrors the §7 implementation: a dynamically
varying ordered collection of per-level wakeup objects
(``asyncio.Event`` per distinct level), so storage and wake cost stay
proportional to the number of distinct waiting levels.  No lock is
needed for state transitions: asyncio is cooperative, and every mutation
completes synchronously between awaits.  The loop plays the role the
wakeup engine (:mod:`repro.core.engine`) plays thread-side: an
``asyncio.Event`` *is* a list of per-waiter futures — the loop's
parking slots — and timed waits ride the loop's own timer heap via
``asyncio.wait_for``, its timer wheel.

Thread-safety: an ``AsyncCounter`` belongs to one event loop.  For
cross-thread signalling into a loop, use
:class:`repro.aio.bridge.CounterBridge` — and prefer its direct
``await bridge.check(level)`` handoff, which parks once on a loop
future completed straight from the releasing thread instead of
double-parking through the mirrored counter.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.core.errors import CheckTimeout, CounterOverflowError, ResetConcurrencyError
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.stats import NOOP_STATS, CounterStats
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs import registry as _obs_registry
from repro.obs.events import next_token as _next_token

__all__ = ["AsyncCounter", "AsyncCounterSubscription"]


class _Level:
    """One distinct waiting level: count of waiters + its wakeup event."""

    __slots__ = ("level", "count", "event", "released_ts", "token", "subscribers")

    def __init__(self, level: int) -> None:
        self.level = level
        self.count = 0
        self.event = asyncio.Event()
        # Stamped by the observability release hook so resuming waiters
        # can report release-to-unpark latency; None when obs is off.
        self.released_ts: float | None = None
        # Schema-v2 correlation id (same token space as the threaded
        # counter's wait nodes): release/park/unpark/timeout/sub_fire
        # events on this level share it.
        self.token = _next_token()
        self.subscribers: list[Callable[[], None]] | None = None


class AsyncCounterSubscription:
    """Handle for one level-reached notification on an :class:`AsyncCounter`.

    Same contract as :class:`repro.core.counter.CounterSubscription`, in
    cooperative form (no locks needed — all mutation happens between
    awaits on one event loop).
    """

    __slots__ = ("_counter", "_node", "_callback", "_cancelled")

    def __init__(
        self, counter: "AsyncCounter", node: _Level, callback: Callable[[], None]
    ) -> None:
        self._counter = counter
        self._node = node
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Deregister the callback (no-op if it already fired)."""
        if self._cancelled:
            return
        self._cancelled = True
        node = self._node
        subscribers = node.subscribers
        if node.event.is_set() or subscribers is None:
            return
        try:
            subscribers.remove(self._callback)
        except ValueError:
            return
        if node.count == 0 and not subscribers:
            levels = self._counter._levels
            if levels.get(node.level) is node:
                del levels[node.level]


class AsyncCounter:
    """The monotonic counter, for coroutines.

    >>> async def demo():
    ...     c = AsyncCounter()
    ...     async def waiter():
    ...         await c.check(2)
    ...         return c.value
    ...     task = asyncio.ensure_future(waiter())
    ...     c.increment(2)
    ...     return await task
    >>> asyncio.run(demo())
    2
    """

    __slots__ = ("_value", "_levels", "_max_value", "_name", "_stats_on",
                 "_obs_label", "_obs_chan", "stats", "__weakref__")

    def __init__(
        self,
        *,
        max_value: int | None = None,
        name: str | None = None,
        stats: bool = False,
    ) -> None:
        if max_value is not None and (not isinstance(max_value, int) or max_value < 0):
            raise ValueError(f"max_value must be a nonnegative int or None, got {max_value!r}")
        self._value = 0
        self._levels: dict[int, _Level] = {}
        self._max_value = max_value
        self._name = name
        self._stats_on = bool(stats)
        self.stats = CounterStats() if stats else NOOP_STATS
        _obs_registry.register(self)

    @property
    def value(self) -> int:
        """Current value (diagnostic only — synchronize with ``check``)."""
        return self._value

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` and wake every coroutine whose level is reached.

        Synchronous (no await needed): the wakeups are scheduled on the
        loop; woken coroutines resume at the next scheduling point.
        """
        amount = validate_amount(amount)
        new_value = self._value + amount
        if self._max_value is not None and new_value > self._max_value:
            raise CounterOverflowError(
                f"{self!r}: increment({amount}) would exceed max_value={self._max_value}"
            )
        self._value = new_value
        if self._stats_on:
            self.stats.increments += 1
        inc_seq: int | None = None
        if _obs.enabled:
            inc_seq = _obs.on_increment(self, amount, new_value)
        if amount and self._levels:
            released = [lv for lv in self._levels if lv <= new_value]
            if released:
                nodes = [self._levels.pop(lv) for lv in released]
                if self._stats_on:
                    for node in nodes:
                        self.stats.nodes_released += 1
                        self.stats.threads_woken += node.count
                if _obs.enabled:
                    # Stamps released_ts before any event is set, so woken
                    # coroutines can report release-to-resume latency.
                    # (No deferred construction here: the event loop is
                    # single-threaded, so nothing races the set() loop.)
                    _obs.on_release(self, new_value, nodes, cause_seq=inc_seq)
                for node in nodes:
                    node.event.set()
                    subscribers = node.subscribers
                    if subscribers:
                        if _obs.enabled:
                            _obs.on_sub_fire(self, node.level, len(subscribers),
                                             token=node.token)
                        node.subscribers = None
                        for callback in subscribers:
                            callback()
        return new_value

    async def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend the calling coroutine until ``value >= level``."""
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        if self._value >= level:
            if self._stats_on:
                self.stats.immediate_checks += 1
            return
        node = self._levels.get(level)
        if node is None:
            node = _Level(level)
            self._levels[level] = node
            if self._stats_on:
                self.stats.nodes_created += 1
        node.count += 1
        if self._stats_on:
            self.stats.suspended_checks += 1
            self.stats.note_levels(
                len(self._levels), sum(n.count for n in self._levels.values())
            )
        t_parked: float | None = None
        if _obs.enabled:
            t_parked = _obs.on_park(
                self, level, self._value, len(self._levels),
                sum(n.count for n in self._levels.values()),
                token=node.token,
            )
        try:
            if timeout is None:
                await node.event.wait()
            else:
                try:
                    # No shield: cancelling Event.wait() is side-effect
                    # free, and a shielded inner task would linger pending
                    # forever after a timeout (the finally block may pop
                    # the level, so its event is never set) — one leaked
                    # task per timed-out check.
                    await asyncio.wait_for(node.event.wait(), timeout)
                except asyncio.TimeoutError:
                    if not node.event.is_set():
                        if self._stats_on:
                            self.stats.timeouts += 1
                        if _obs.enabled:
                            waited = None if t_parked is None else _obs.clock() - t_parked
                            _obs.on_timeout(self, level, self._value, waited,
                                            token=node.token)
                        raise CheckTimeout(
                            f"{self!r}: check({level}) timed out after {timeout}s "
                            f"(value={self._value})"
                        ) from None
            if _obs.enabled:
                now = _obs.clock()
                wait_s = None if t_parked is None else now - t_parked
                released_ts = node.released_ts
                wakeup_s = None if released_ts is None else now - released_ts
                _obs.on_unpark(self, level, wait_s, wakeup_s, token=node.token, ts=now)
        finally:
            node.count -= 1
            if node.count == 0 and not node.event.is_set() and not node.subscribers:
                # Last waiter timed out/cancelled and no subscriptions are
                # outstanding: reclaim the level so storage stays
                # proportional to live waiting levels.
                self._levels.pop(level, None)

    def subscribe(
        self, level: int, callback: Callable[[], None]
    ) -> AsyncCounterSubscription | None:
        """Register ``callback`` to fire once when ``value >= level``.

        Returns ``None`` — without invoking the callback — when the level
        is already satisfied, else an :class:`AsyncCounterSubscription`.
        The callback runs synchronously inside the ``increment`` call that
        reaches the level; it must be quick and must not raise.  This is
        the hook :class:`repro.aio.multiwait.AsyncMultiWait` is built on.
        """
        level = validate_level(level)
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if self._value >= level:
            return None
        node = self._levels.get(level)
        if node is None:
            node = _Level(level)
            self._levels[level] = node
            if self._stats_on:
                self.stats.nodes_created += 1
        if node.subscribers is None:
            node.subscribers = []
        node.subscribers.append(callback)
        return AsyncCounterSubscription(self, node, callback)

    def reset(self) -> None:
        """Reset to zero; refuses while any coroutine is suspended."""
        if self._levels:
            raise ResetConcurrencyError(
                f"{self!r}: reset() with {len(self._levels)} waiting level(s)"
            )
        self._value = 0

    def snapshot(self) -> CounterSnapshot:
        """Freeze value + waiting structure (Figure 2 equivalent)."""
        return CounterSnapshot(
            value=self._value,
            nodes=tuple(
                WaitNodeSnapshot(level=node.level, count=node.count, signaled=node.event.is_set())
                for node in sorted(self._levels.values(), key=lambda n: n.level)
            ),
        )

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<AsyncCounter{label} value={self._value}>"
