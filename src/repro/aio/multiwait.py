"""Waiting on several async counters at once — the MultiWait twin.

Cooperative counterpart of :class:`repro.core.multiwait.MultiWait`: one
subscription per ``(counter, level)`` condition, one ``asyncio.Event``
to park on, satisfactions delivered synchronously by the ``increment``
calls that reach the levels.  The same stability argument makes it
correct: a satisfied condition can never unsatisfy, so accumulating
indices into a set and testing "all present" / "any present" needs no
retry choreography.

The ``wait_any`` determinism caveat from the thread-side module applies
unchanged: observing *which* condition fired first is a scheduler
choice; programs needing the paper's determinism guarantees should use
``wait_all`` or a shared counter.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from repro.aio.counter import AsyncCounter
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs.events import next_token as _next_token

__all__ = ["AsyncMultiWait"]

Condition = tuple[AsyncCounter, int]


class AsyncMultiWait:
    """Park a coroutine once for N async-counter conditions.

    Conditions are indexed by their position in the constructor
    argument.  Always :meth:`close` (or use as an ``with`` block — the
    context manager is synchronous, registration and cancellation never
    await) so unfired subscriptions are deregistered:

    >>> import asyncio
    >>> from repro.aio import AsyncCounter, AsyncMultiWait
    >>> async def demo():
    ...     a, b = AsyncCounter(), AsyncCounter()
    ...     with AsyncMultiWait([(a, 1), (b, 1)]) as mw:
    ...         a.increment(1)
    ...         b.increment(1)
    ...         await mw.wait_all()
    ...     return sorted(mw.satisfied)
    >>> asyncio.run(demo())
    [0, 1]
    """

    __slots__ = ("_pairs", "_satisfied", "_subs", "_event", "_closed", "_token",
                 "_obs_label")

    def __init__(self, conditions: Iterable[Condition]) -> None:
        pairs: Sequence[Condition] = list(conditions)
        for counter, level in pairs:
            validate_level(level)
            if not callable(getattr(counter, "subscribe", None)):
                raise TypeError(f"{counter!r} does not support subscribe()")
        self._pairs = pairs
        self._satisfied: set[int] = set()
        self._subs: list = []
        self._event = asyncio.Event()
        self._closed = False
        # Schema-v2 correlation id shared by this instance's mw_* events.
        self._token = _next_token()
        for index, (counter, level) in enumerate(pairs):
            subscription = counter.subscribe(level, self._make_callback(index))
            if subscription is None:
                self._satisfied.add(index)
            else:
                self._subs.append(subscription)

    def _make_callback(self, index: int):
        def fire() -> None:
            self._satisfied.add(index)
            self._event.set()

        return fire

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def satisfied(self) -> frozenset[int]:
        """Indices of the conditions known satisfied so far."""
        return frozenset(self._satisfied)

    async def wait_all(self, timeout: float | None = None) -> None:
        """Suspend until every condition has been satisfied."""
        await self._wait(lambda: len(self._satisfied) == len(self._pairs), timeout, "all")

    async def wait_any(self, timeout: float | None = None) -> frozenset[int]:
        """Suspend until at least one condition is satisfied; return the
        frozenset of indices satisfied at wake time (see module docstring
        for the determinism caveat)."""
        await self._wait(lambda: bool(self._satisfied), timeout, "any")
        return frozenset(self._satisfied)

    async def _wait(self, done, timeout: float | None, mode: str) -> None:
        timeout = validate_timeout(timeout)
        if self._closed:
            raise RuntimeError("AsyncMultiWait is closed")
        t_parked: float | None = None
        if _obs.enabled:
            _obs.on_mw_park(self, len(self._pairs), len(self._satisfied),
                            token=self._token)
            t_parked = _obs.clock()
        if timeout is None:
            while not done():
                self._event.clear()
                await self._event.wait()
            if _obs.enabled:
                wait_s = None if t_parked is None else _obs.clock() - t_parked
                _obs.on_mw_wake(self, len(self._satisfied), wait_s, token=self._token)
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not done():
            self._event.clear()
            remaining = deadline - loop.time()
            if remaining <= 0:
                if _obs.enabled:
                    _obs.on_mw_timeout(self, len(self._pairs), len(self._satisfied),
                                       token=self._token)
                raise CheckTimeout(
                    f"AsyncMultiWait.wait_{mode}: timed out after {timeout}s "
                    f"({len(self._satisfied)}/{len(self._pairs)} satisfied)"
                )
            try:
                # Cancelling Event.wait() is side-effect free, so no shield
                # is needed (and a shielded waiter would linger as a pending
                # task after every expiry).
                await asyncio.wait_for(self._event.wait(), remaining)
            except asyncio.TimeoutError:
                if done():
                    break
                if _obs.enabled:
                    _obs.on_mw_timeout(self, len(self._pairs), len(self._satisfied),
                                       token=self._token)
                raise CheckTimeout(
                    f"AsyncMultiWait.wait_{mode}: timed out after {timeout}s "
                    f"({len(self._satisfied)}/{len(self._pairs)} satisfied)"
                ) from None
        if _obs.enabled:
            wait_s = None if t_parked is None else _obs.clock() - t_parked
            _obs.on_mw_wake(self, len(self._satisfied), wait_s, token=self._token)

    def close(self) -> None:
        """Cancel unfired subscriptions; idempotent."""
        if self._closed:
            return
        self._closed = True
        subs, self._subs = self._subs, []
        for subscription in subs:
            subscription.cancel()

    def __enter__(self) -> "AsyncMultiWait":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
