"""Waiting on several async counters at once — the MultiWait twin.

Cooperative counterpart of :class:`repro.core.multiwait.MultiWait`: one
subscription per ``(counter, level)`` condition, one loop future per
parked waiter, satisfactions delivered synchronously by the
``increment`` calls that reach the levels.  Like the thread-side engine
port, the wakeup is *single-wake*: each waiter registers the count of
satisfactions it needs, and only the one callback that meets that need
completes its future — earlier satisfactions just land in the set, with
no wake/clear/re-wait churn per condition.  The same stability argument
makes it correct: a satisfied condition can never unsatisfy, so
accumulating indices into a set and testing "all present" / "any
present" needs no retry choreography.

The ``wait_any`` determinism caveat from the thread-side module applies
unchanged: observing *which* condition fired first is a scheduler
choice; programs needing the paper's determinism guarantees should use
``wait_all`` or a shared counter.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from repro.aio.counter import AsyncCounter
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs.events import next_token as _next_token

__all__ = ["AsyncMultiWait"]

Condition = tuple[AsyncCounter, int]


class AsyncMultiWait:
    """Park a coroutine once for N async-counter conditions.

    Conditions are indexed by their position in the constructor
    argument.  Always :meth:`close` (or use as an ``with`` block — the
    context manager is synchronous, registration and cancellation never
    await) so unfired subscriptions are deregistered:

    >>> import asyncio
    >>> from repro.aio import AsyncCounter, AsyncMultiWait
    >>> async def demo():
    ...     a, b = AsyncCounter(), AsyncCounter()
    ...     with AsyncMultiWait([(a, 1), (b, 1)]) as mw:
    ...         a.increment(1)
    ...         b.increment(1)
    ...         await mw.wait_all()
    ...     return sorted(mw.satisfied)
    >>> asyncio.run(demo())
    [0, 1]
    """

    __slots__ = ("_pairs", "_satisfied", "_subs", "_waiters", "_closed", "_token",
                 "_obs_label", "_obs_chan")

    def __init__(self, conditions: Iterable[Condition]) -> None:
        pairs: Sequence[Condition] = list(conditions)
        for counter, level in pairs:
            validate_level(level)
            if not callable(getattr(counter, "subscribe", None)):
                raise TypeError(f"{counter!r} does not support subscribe()")
        self._pairs = pairs
        self._satisfied: set[int] = set()
        self._subs: list = []
        # Parked waiters as (need, future) records, mirroring the
        # thread-side engine port: the wait completes once
        # `len(satisfied) >= need` (all = N, any = 1).  No lock — all
        # mutation happens synchronously on one event loop.
        self._waiters: list = []
        self._closed = False
        # Schema-v2 correlation id shared by this instance's mw_* events.
        self._token = _next_token()
        for index, (counter, level) in enumerate(pairs):
            subscription = counter.subscribe(level, self._make_callback(index))
            if subscription is None:
                self._satisfied.add(index)
            else:
                self._subs.append(subscription)

    def _make_callback(self, index: int):
        def fire() -> None:
            self._satisfied.add(index)
            n = len(self._satisfied)
            if self._waiters:
                ready = [record for record in self._waiters if record[0] <= n]
                if ready:
                    self._waiters = [r for r in self._waiters if r[0] > n]
                    for _, future in ready:
                        # A future cancelled by wait_for may still hold a
                        # record for one scheduling beat; skip it.
                        if not future.done():
                            future.set_result(None)

        return fire

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def satisfied(self) -> frozenset[int]:
        """Indices of the conditions known satisfied so far."""
        return frozenset(self._satisfied)

    async def wait_all(self, timeout: float | None = None) -> None:
        """Suspend until every condition has been satisfied."""
        await self._wait(len(self._pairs), timeout, "all")

    async def wait_any(self, timeout: float | None = None) -> frozenset[int]:
        """Suspend until at least one condition is satisfied; return the
        frozenset of indices satisfied at wake time (see module docstring
        for the determinism caveat)."""
        await self._wait(1, timeout, "any")
        return frozenset(self._satisfied)

    async def _wait(self, need: int, timeout: float | None, mode: str) -> None:
        timeout = validate_timeout(timeout)
        if self._closed:
            raise RuntimeError("AsyncMultiWait is closed")
        t_parked: float | None = None
        if _obs.enabled:
            _obs.on_mw_park(self, len(self._pairs), len(self._satisfied),
                            token=self._token)
            t_parked = _obs.clock()
        if len(self._satisfied) < need:
            loop = asyncio.get_running_loop()
            future = loop.create_future()
            record = (need, future)
            self._waiters.append(record)
            try:
                if timeout is None:
                    await future
                else:
                    try:
                        # Cancelling the future is side-effect free (the
                        # record is dropped below), so no shield is needed.
                        await asyncio.wait_for(future, timeout)
                    except asyncio.TimeoutError:
                        # The expiry beat may have delivered the final
                        # satisfaction; stability makes the re-check safe.
                        if len(self._satisfied) < need:
                            if _obs.enabled:
                                _obs.on_mw_timeout(
                                    self, len(self._pairs), len(self._satisfied),
                                    token=self._token)
                            raise CheckTimeout(
                                f"AsyncMultiWait.wait_{mode}: timed out after "
                                f"{timeout}s ({len(self._satisfied)}/"
                                f"{len(self._pairs)} satisfied)"
                            ) from None
            finally:
                # Completed waiters were deregistered by the callback;
                # timed-out or cancelled ones deregister here.
                try:
                    self._waiters.remove(record)
                except ValueError:
                    pass
        if _obs.enabled:
            wait_s = None if t_parked is None else _obs.clock() - t_parked
            _obs.on_mw_wake(self, len(self._satisfied), wait_s, token=self._token)

    def close(self) -> None:
        """Cancel unfired subscriptions; idempotent."""
        if self._closed:
            return
        self._closed = True
        subs, self._subs = self._subs, []
        for subscription in subs:
            subscription.cancel()

    def __enter__(self) -> "AsyncMultiWait":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
