"""The asyncio twin of :class:`repro.core.sharded.ShardedCounter`.

Under a single-threaded event loop there is no lock contention, so the
lock-striping half of the sharded design is moot — the counter reduces to
one shard.  What survives the translation is the *batching* half: an
:class:`AsyncShardedCounter` accumulates increments in a pending tally and
publishes into its inner :class:`~repro.aio.counter.AsyncCounter` only
when the batch threshold is reached, so the per-increment release scan
(and waiter bookkeeping) is paid once per ``batch`` increments.

The reconciliation rules mirror the thread version exactly: ``check``
drains before suspending, ``value``/``flush`` drain on demand, and while
any waiter is suspended every increment publishes immediately.  Because
the loop is cooperative there is no registration race to defend against —
a waiter's level is recorded synchronously before it awaits, and every
subsequent ``increment`` sees it.

Keeping the two classes API-identical means code written against the
sharded counter can move between the thread and coroutine runtimes
unchanged — the same §8 portability claim the plain counters demonstrate.
"""

from __future__ import annotations

from repro.aio.counter import AsyncCounter
from repro.core.sharded import ShardSnapshot
from repro.core.snapshot import CounterSnapshot
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs import registry as _obs_registry

__all__ = ["AsyncShardedCounter"]


class AsyncShardedCounter:
    """Batched-increment monotonic counter for coroutines.

    >>> import asyncio
    >>> async def demo():
    ...     c = AsyncShardedCounter(batch=4)
    ...     for _ in range(3):
    ...         c.increment(1)       # below batch: stays pending
    ...     return c.value           # reconciling read
    >>> asyncio.run(demo())
    3
    """

    __slots__ = ("_inner", "_pending", "_batch", "_name", "_obs_label", "_obs_chan", "__weakref__")

    def __init__(self, *, batch: int = 64, name: str | None = None, stats: bool = False) -> None:
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ValueError(f"batch must be a positive int, got {batch!r}")
        self._inner = AsyncCounter(name=name, stats=stats)
        self._pending = 0
        self._batch = batch
        self._name = name
        # One logical counter, one registry entry (see the thread twin).
        _obs_registry.deregister(self._inner)
        _obs_registry.register(self)

    @property
    def value(self) -> int:
        """The exact global value (reconciling: publishes pending first)."""
        self._drain()
        return self._inner.value

    @property
    def published(self) -> int:
        """The inner counter's value — a lower bound on the total."""
        return self._inner.value

    @property
    def pending(self) -> int:
        """The unpublished tally."""
        return self._pending

    def increment(self, amount: int = 1) -> int:
        """Add ``amount``; return a lower bound on the new global value.

        Publishes into the inner counter when the batch threshold is
        reached or any coroutine is suspended in ``check`` (so wakeups are
        never delayed by batching); otherwise the amount stays pending and
        the inner (stale, lower-bound) value is returned.
        """
        amount = validate_amount(amount)
        self._pending += amount
        if self._pending >= self._batch or self._inner._levels:
            return self._drain()
        return self._inner.value

    async def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend the calling coroutine until the global value reaches ``level``."""
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        # Published value is a monotone lower bound: if it already
        # satisfies the level, skip the reconciling drain.
        if self._inner.value < level:
            self._drain()
        await self._inner.check(level, timeout=timeout)

    def flush(self) -> int:
        """Publish the pending tally; return the exact value."""
        return self._drain()

    def reset(self) -> None:
        """Reset to zero; refuses while any coroutine is suspended."""
        self._drain()
        self._inner.reset()

    @property
    def stats(self):
        """The inner counter's stats (``increments`` counts publications)."""
        return self._inner.stats

    def snapshot(self) -> CounterSnapshot:
        """The inner counter's state (pending tally not included)."""
        return self._inner.snapshot()

    def shard_snapshot(self) -> ShardSnapshot:
        """Published + pending without draining (single logical shard).

        Cooperative, so the capture is exact here — but it keeps the
        published-before-pending order and the lower-bound contract of
        the thread twin so introspection code treats both identically.
        """
        return ShardSnapshot(published=self._inner.value, pending=(self._pending,))

    def _drain(self) -> int:
        pending, self._pending = self._pending, 0
        if pending:
            if _obs.enabled:
                _obs.on_flush(self, pending)
            return self._inner.increment(pending)
        return self._inner.value

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<AsyncShardedCounter{label} published={self._inner.value} "
            f"pending={self._pending} batch={self._batch}>"
        )
