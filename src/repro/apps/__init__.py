"""Example applications (paper §4 and §5 workloads).

* :mod:`~repro.apps.floyd_warshall` — §4's four shortest-path programs
  plus the Figure 1 matrices.
* :mod:`~repro.apps.heat` — §5.1's time-stepped boundary-exchange
  simulation, barrier vs ragged counters.
* :mod:`~repro.apps.accumulate` — §5.2's ordered accumulation, lock vs
  counter.
* :mod:`~repro.apps.paraffins` — §5.3's dataflow pipeline shape
  (integer-partition analogue of the Paraffins Problem).
* :mod:`~repro.apps.lcs` — 2-D wavefront dynamic programming.
* :mod:`~repro.apps.graphs` — seeded graph workload generators.
* :mod:`~repro.apps.sim_models` — virtual-time models of each workload
  for the benchmark harness.
* :mod:`~repro.apps.ratelimit` — the counter-backed sliding-window
  quota service (the tail-latency attribution workload).
"""

from repro.apps import (  # noqa: F401 - re-exported submodules
    accumulate,
    floyd_warshall,
    gauss_seidel,
    graphs,
    heat,
    lcs,
    paraffins,
    ratelimit,
    sim_models,
)

__all__ = [
    "floyd_warshall",
    "heat",
    "gauss_seidel",
    "accumulate",
    "paraffins",
    "lcs",
    "graphs",
    "sim_models",
    "ratelimit",
]
