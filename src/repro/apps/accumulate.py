"""Ordered accumulation of concurrent subresults (paper §5.2).

``N`` threads each compute an independent subresult; an ``Accumulate``
operation folds them into one result.  When the fold is not associative
— the paper's examples are list append and floating-point addition —
lock-based mutual exclusion yields schedule-dependent results, while a
counter check/increment pair yields the sequential order every time.

* :func:`accumulate_lock` — ``resultLock.Lock(); Accumulate; Unlock()``.
* :func:`accumulate_counter` — ``resultCount.Check(i); Accumulate;
  Increment(1)``: mutual exclusion *plus* sequential ordering.
* :func:`accumulate_sequential` — the plain loop (the oracle the counter
  version must equal, by §6 sequential equivalence).

Floating-point non-associativity is real but tiny for random inputs; to
make nondeterminism observable in tests and benchmarks,
:func:`ill_conditioned_terms` generates a series whose sum differs by
orders of magnitude across permutations (alternating huge/tiny terms
with catastrophic cancellation).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.api import CounterProtocol
from repro.determinism.equivalence import scheduling_jitter
from repro.patterns.ordered import OrderedRegion
from repro.structured.forloop import multithreaded_for
from repro.sync.errors import SyncError

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "accumulate_sequential",
    "accumulate_lock",
    "accumulate_counter",
    "float_sum",
    "list_append",
    "ill_conditioned_terms",
]


def float_sum(acc: float, item: float) -> float:
    """Floating-point addition — non-associative, the paper's example."""
    return acc + item


def list_append(acc: list, item: object) -> list:
    """List append — order-revealing, the paper's other example."""
    acc.append(item)
    return acc


def ill_conditioned_terms(n: int, *, seed: int = 0) -> list[float]:
    """Terms whose float sum is strongly permutation-dependent.

    Pairs of huge near-cancelling values interleaved with tiny ones: the
    tiny terms are absorbed or preserved depending on when the huge pair
    cancels, so almost every accumulation order gives a different sum.
    """
    rng = random.Random(seed)
    terms: list[float] = []
    for _ in range(max(1, n // 3)):
        big = rng.uniform(1e15, 1e16)
        terms += [big, rng.uniform(0.1, 1.0), -big]
    del terms[n:]
    while len(terms) < n:
        terms.append(rng.uniform(0.1, 1.0))
    return terms


def accumulate_sequential(
    items: Sequence[T],
    accumulate: Callable[[R, T], R],
    initial: R,
) -> R:
    """The fold in index order on one thread (the §6 sequential oracle)."""
    result = initial
    for item in items:
        result = accumulate(result, item)
    return result


def accumulate_lock(
    items: Sequence[T],
    accumulate: Callable[[R, T], R],
    initial: R,
    *,
    compute: Callable[[int, T], T] | None = None,
    jitter: float = 0.0,
) -> R:
    """§5.2's lock version: mutual exclusion, nondeterministic order.

    ``compute`` models the per-thread subresult computation (defaults to
    identity); ``jitter`` adds random pre-lock delay so the
    nondeterminism is actually exercised on a quiet machine.
    """
    import threading

    result_holder: list[R] = [initial]
    result_lock = threading.Lock()

    def worker(i: int) -> None:
        subresult = compute(i, items[i]) if compute is not None else items[i]
        if jitter:
            scheduling_jitter(jitter)
        with result_lock:
            result_holder[0] = accumulate(result_holder[0], subresult)

    multithreaded_for(worker, range(len(items)), name="accumulate-lock")
    return result_holder[0]


def accumulate_counter(
    items: Sequence[T],
    accumulate: Callable[[R, T], R],
    initial: R,
    *,
    compute: Callable[[int, T], T] | None = None,
    jitter: float = 0.0,
    counter: CounterProtocol | None = None,
    timeout: float | None = None,
) -> R:
    """§5.2's counter version: mutual exclusion AND sequential ordering.

    Thread ``i`` enters the critical section only once threads
    ``0..i-1`` have accumulated, so the result equals
    :func:`accumulate_sequential` on every run.
    """
    region = OrderedRegion(counter=counter) if counter is not None else OrderedRegion()
    result_holder: list[R] = [initial]

    def worker(i: int) -> None:
        subresult = compute(i, items[i]) if compute is not None else items[i]
        if jitter:
            scheduling_jitter(jitter)
        with region.turn(i, timeout=timeout):
            result_holder[0] = accumulate(result_holder[0], subresult)

    multithreaded_for(worker, range(len(items)), name="accumulate-counter")
    if region.completed != len(items):
        raise SyncError(
            f"ordered accumulation incomplete: {region.completed}/{len(items)}"
        )  # pragma: no cover - defensive
    return result_holder[0]


def distinct_float_sums(terms: Sequence[float], *, permutations: int = 20, seed: int = 0) -> int:
    """How many distinct values the float sum of ``terms`` takes over
    random permutations — a schedule-free lower bound on the lock
    version's nondeterminism."""
    rng = np.random.default_rng(seed)
    sums = set()
    order = np.arange(len(terms))
    for _ in range(permutations):
        rng.shuffle(order)
        total = 0.0
        for index in order:
            total += terms[index]
        sums.add(total)
    return len(sums)


__all__.append("distinct_float_sums")
