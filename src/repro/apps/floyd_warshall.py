"""All-pairs shortest paths: the paper's §4 motivating example.

Four implementations of Floyd-Warshall, mirroring the paper's listings:

* :func:`shortest_paths_sequential` — §4.2, the plain triple loop.
* :func:`shortest_paths_barrier` — §4.3, ``numThreads`` threads over row
  blocks with an N-way barrier per iteration.
* :func:`shortest_paths_events` — §4.4, the "more efficient" version:
  an array of N set/check events (the paper's condition variables) plus
  the ``kRow`` staging matrix, letting fast threads run iterations ahead.
* :func:`shortest_paths_counter` — §4.5, identical structure with the N
  events replaced by **one monotonic counter** checked at N levels.

plus :func:`shortest_paths_reference`, a fully vectorized numpy
Floyd-Warshall used as the test oracle, and the exact Figure 1 matrices.

Matrices are ``float64`` numpy arrays with ``numpy.inf`` for "no edge";
graphs must have zero diagonal and no negative cycles (checked).
Row-level inner loops are vectorized — threads coordinate per iteration
``k``, numpy does the arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter
from repro.structured.forloop import block_range, multithreaded_for
from repro.sync.barrier import CyclicBarrier
from repro.sync.event import Event

__all__ = [
    "INF",
    "figure1_edge",
    "figure1_path",
    "validate_edge_matrix",
    "shortest_paths_reference",
    "shortest_paths_sequential",
    "shortest_paths_barrier",
    "shortest_paths_events",
    "shortest_paths_counter",
]

INF = np.inf


def figure1_edge() -> np.ndarray:
    """The 3-vertex input (``edge``) matrix of the paper's Figure 1.

    Edges: 0→1 (1), 0→2 (2), 1→0 (4), 2→0 (2), 2→1 (−3); no 1→2 edge.
    """
    return np.array(
        [
            [0.0, 1.0, 2.0],
            [4.0, 0.0, INF],
            [2.0, -3.0, 0.0],
        ]
    )


def figure1_path() -> np.ndarray:
    """The corresponding output (``path``) matrix of Figure 1.

    E.g. the 0→1 shortest path routes 0→2→1 for 2 + (−3) = −1, and 1→2
    routes 1→0→2 for 4 + 2 = 6.
    """
    return np.array(
        [
            [0.0, -1.0, 2.0],
            [4.0, 0.0, 6.0],
            [1.0, -3.0, 0.0],
        ]
    )


def validate_edge_matrix(edge: np.ndarray) -> np.ndarray:
    """Check shape/diagonal and return a float64 working copy."""
    edge = np.asarray(edge, dtype=np.float64)
    if edge.ndim != 2 or edge.shape[0] != edge.shape[1]:
        raise ValueError(f"edge matrix must be square, got shape {edge.shape}")
    if edge.shape[0] == 0:
        raise ValueError("edge matrix must be non-empty")
    if not np.all(np.diag(edge) == 0.0):
        raise ValueError("self-edges must have weight zero (paper §4.1)")
    return edge.copy()


def _check_no_negative_cycle(path: np.ndarray) -> None:
    if np.any(np.diag(path) < 0.0):
        raise ValueError("graph contains a cycle of negative length (paper §4.1 forbids)")


def shortest_paths_reference(edge: np.ndarray) -> np.ndarray:
    """Vectorized single-threaded Floyd-Warshall (test oracle)."""
    path = validate_edge_matrix(edge)
    n = path.shape[0]
    for k in range(n):
        # path[i][j] = min(path[i][j], path[i][k] + path[k][j]) for all i, j.
        np.minimum(path, path[:, k : k + 1] + path[k : k + 1, :], out=path)
    _check_no_negative_cycle(path)
    return path


def shortest_paths_sequential(edge: np.ndarray) -> np.ndarray:
    """§4.2: the sequential algorithm, row updates vectorized."""
    path = validate_edge_matrix(edge)
    n = path.shape[0]
    for k in range(n):
        row_k = path[k, :].copy()
        for i in range(n):
            np.minimum(path[i, :], path[i, k] + row_k, out=path[i, :])
    _check_no_negative_cycle(path)
    return path


def shortest_paths_barrier(edge: np.ndarray, num_threads: int) -> np.ndarray:
    """§4.3: multithreaded Floyd-Warshall with an N-way barrier per iteration.

    Each thread owns a block of rows; all threads complete iteration ``k``
    before any begins ``k + 1``.  No ``kRow`` staging is needed: during
    iteration ``k`` nobody assigns to row ``k`` or column ``k``.
    """
    path = validate_edge_matrix(edge)
    n = path.shape[0]
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    num_threads = min(num_threads, n)
    barrier = CyclicBarrier(num_threads, name="fw")

    def worker(t: int) -> None:
        rows = block_range(t, n, num_threads)
        for k in range(n):
            row_k = path[k, :]
            for i in rows:
                np.minimum(path[i, :], path[i, k] + row_k, out=path[i, :])
            barrier.pass_()

    multithreaded_for(worker, range(num_threads), name="fw-barrier")
    _check_no_negative_cycle(path)
    return path


def shortest_paths_events(edge: np.ndarray, num_threads: int) -> np.ndarray:
    """§4.4: the ragged version with an array of N set/check events.

    ``k_done[k]`` is set once row ``k`` (staged in ``k_row[k]``) is final
    for iteration ``k``; each thread waits only on the event for its own
    next iteration, so fast threads run ahead of slow ones.
    """
    path = validate_edge_matrix(edge)
    n = path.shape[0]
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    num_threads = min(num_threads, n)
    k_done = [Event(name=f"kDone[{k}]") for k in range(n)]
    k_row = np.empty_like(path)
    k_row[0, :] = path[0, :]
    k_done[0].set()

    def worker(t: int) -> None:
        rows = block_range(t, n, num_threads)
        for k in range(n):
            k_done[k].check()
            row_k = k_row[k, :]
            for i in rows:
                np.minimum(path[i, :], path[i, k] + row_k, out=path[i, :])
                if i == k + 1:
                    k_row[k + 1, :] = path[k + 1, :]
                    k_done[k + 1].set()

    multithreaded_for(worker, range(num_threads), name="fw-events")
    _check_no_negative_cycle(path)
    return path


def shortest_paths_counter(
    edge: np.ndarray,
    num_threads: int,
    *,
    counter: CounterProtocol | None = None,
    level_tiled: bool = False,
) -> np.ndarray:
    """§4.5: the ragged version with ONE counter in place of N events.

    ``counter.value >= k`` means row ``k`` is staged; threads at different
    iterations suspend at different levels of the same counter.  Pass a
    traced counter to run the determinacy checker over the computation.

    ``level_tiled=True`` exploits monotonicity to elide checks wholesale:
    after each real ``check(k)`` the worker snapshots ``counter.value``
    — every level at or below that snapshot is staged *forever* (the
    value never decreases), so the following iterations up to the
    snapshot proceed with **zero** counter operations, not even the
    lock-free fast-path read.  Off by default because eliding calls also
    elides the per-``check`` events that traced counters record for the
    determinacy checker.
    """
    path = validate_edge_matrix(edge)
    n = path.shape[0]
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    num_threads = min(num_threads, n)
    k_count = counter if counter is not None else MonotonicCounter(name="kCount")
    k_row = np.empty_like(path)
    k_row[0, :] = path[0, :]

    def worker(t: int) -> None:
        rows = block_range(t, n, num_threads)
        # Levels strictly below `ready` are known staged (monotone value
        # snapshot), so their checks can be skipped entirely.
        ready = 0
        for k in range(n):
            if not level_tiled:
                k_count.check(k)
            elif k >= ready:
                k_count.check(k)
                ready = k_count.value + 1
            row_k = k_row[k, :]
            for i in rows:
                np.minimum(path[i, :], path[i, k] + row_k, out=path[i, :])
                if i == k + 1:
                    k_row[k + 1, :] = path[k + 1, :]
                    k_count.increment(1)

    multithreaded_for(worker, range(num_threads), name="fw-counter")
    _check_no_negative_cycle(path)
    return path
