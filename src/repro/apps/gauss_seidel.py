"""Red-black Gauss-Seidel relaxation — a 2-D §5.1 workload.

The paper notes that boundary-exchange requirements "occur in most
multithreaded simulations of physical systems in one or more
dimensions."  This module is the two-dimensional instance: solving the
Laplace equation on a grid by red-black Gauss-Seidel sweeps.  Each
half-sweep updates one checkerboard colour from the other, so a thread
owning a block of rows needs its neighbours' *previous half-sweep* edge
rows — the same pairwise dependency as the 1-D heat rod, with two
synchronization points per iteration.

Three implementations:

* :func:`gauss_seidel_sequential` — vectorized oracle;
* :func:`gauss_seidel_barrier` — full barrier after every half-sweep;
* :func:`gauss_seidel_ragged` — per-thread counters, neighbours-only
  waiting (the §5.1 protocol, one tick per half-sweep).

All three perform identical arithmetic in identical order (red cells
from blacks, then black cells from reds), so results are bitwise equal.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.ragged import RaggedBarrier
from repro.structured.forloop import block_range, multithreaded_for
from repro.sync.barrier import CyclicBarrier

__all__ = [
    "gauss_seidel_sequential",
    "gauss_seidel_barrier",
    "gauss_seidel_ragged",
    "laplace_residual",
]


def _validate(grid: np.ndarray, sweeps: int, num_threads: int | None) -> tuple[np.ndarray, int]:
    grid = np.asarray(grid, dtype=np.float64).copy()
    if grid.ndim != 2 or grid.shape[0] < 3 or grid.shape[1] < 3:
        raise ValueError(f"grid must be 2-D, at least 3x3, got shape {grid.shape}")
    if sweeps < 0:
        raise ValueError(f"sweeps must be >= 0, got {sweeps}")
    interior_rows = grid.shape[0] - 2
    if num_threads is None:
        num_threads = interior_rows
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    return grid, min(num_threads, interior_rows)


def _relax_rows(grid: np.ndarray, rows: range, colour: int) -> None:
    """One half-sweep over ``rows``: update cells with (i+j) % 2 == colour."""
    for i in rows:
        # First interior column j >= 1 with (i + j) % 2 == colour.
        start = 2 - ((colour + i) % 2)
        grid[i, start:-1:2] = 0.25 * (
            grid[i - 1, start:-1:2]
            + grid[i + 1, start:-1:2]
            + grid[i, start - 1 : -2 : 2]
            + grid[i, start + 1 :: 2]
        )


def gauss_seidel_sequential(grid: np.ndarray, sweeps: int) -> np.ndarray:
    """Red-black relaxation, single-threaded (the oracle)."""
    grid, _ = _validate(grid, sweeps, 1)
    interior = range(1, grid.shape[0] - 1)
    for _ in range(sweeps):
        for colour in (0, 1):
            _relax_rows(grid, interior, colour)
    return grid


def gauss_seidel_barrier(
    grid: np.ndarray, sweeps: int, *, num_threads: int | None = None
) -> np.ndarray:
    """Traditional version: all threads barrier after each half-sweep."""
    grid, threads = _validate(grid, sweeps, num_threads)
    interior_rows = grid.shape[0] - 2
    barrier = CyclicBarrier(threads, name="gs")

    def worker(t: int) -> None:
        block = block_range(t, interior_rows, threads)
        rows = range(block.start + 1, block.stop + 1)
        for _ in range(sweeps):
            for colour in (0, 1):
                _relax_rows(grid, rows, colour)
                barrier.pass_()

    multithreaded_for(worker, range(threads), name="gs-barrier")
    return grid


def gauss_seidel_ragged(
    grid: np.ndarray, sweeps: int, *, num_threads: int | None = None
) -> np.ndarray:
    """§5.1 protocol in 2-D: one counter per thread, one tick per
    half-sweep; thread p waits only for its two row-neighbours.

    Correctness argument: in half-sweep s (0-based, global index
    ``2*sweep + colour``), a thread reads its neighbours' edge rows as
    updated through half-sweep s-1 and writes only its own rows'
    colour-s cells, which no other thread reads until half-sweep s+1.
    Waiting for ``neighbour >= s`` before starting half-sweep s, and
    announcing after finishing it, therefore suffices — but unlike the
    1-D rod we must also prevent a neighbour from racing *ahead* by two
    half-sweeps and overwriting cells we still need; reading neighbours'
    progress ``<= s+1`` is guaranteed because the neighbour itself waits
    for us at its half-sweep s+2... which needs our tick s+1.  Net: the
    classic one-iteration-apart window, enforced with one counter tick
    per half-sweep on each side.
    """
    grid, threads = _validate(grid, sweeps, num_threads)
    interior_rows = grid.shape[0] - 2
    ragged = RaggedBarrier(threads + 2)
    total_ticks = 2 * sweeps
    ragged.preload(0, total_ticks + 2)        # boundary pseudo-threads are
    ragged.preload(threads + 1, total_ticks + 2)  # always "ahead"

    def worker(index: int) -> None:
        p = index + 1
        block = block_range(index, interior_rows, threads)
        rows = range(block.start + 1, block.stop + 1)
        for half_sweep in range(total_ticks):
            colour = half_sweep % 2
            # Neighbours must have finished the previous half-sweep (their
            # edge rows carry the values this half-sweep reads)...
            ragged.wait_for(p - 1, half_sweep)
            ragged.wait_for(p + 1, half_sweep)
            _relax_rows(grid, rows, colour)
            # ...and we announce ours, which also *bounds how far ahead*
            # the neighbours may run (they wait for this tick).
            ragged.advance(p)

    multithreaded_for(worker, range(threads), name="gs-ragged")
    return grid


def laplace_residual(grid: np.ndarray) -> float:
    """Max |cell − average of 4 neighbours| over the interior: 0 at the
    exact solution of the Laplace equation."""
    interior = grid[1:-1, 1:-1]
    stencil = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:])
    return float(np.abs(interior - stencil).max())
