"""Graph workload generators for the shortest-path experiments.

Seeded, reproducible inputs for E1/E3: dense random matrices, sparse
Erdős–Rényi digraphs (via networkx when available), and graphs with
negative edges but no negative cycles (the §4.1 contract, exercised by
Figure 1 itself).
"""

from __future__ import annotations

import numpy as np

from repro.apps.floyd_warshall import INF

__all__ = ["random_dense_graph", "random_sparse_graph", "random_negative_graph"]


def random_dense_graph(n: int, *, seed: int = 0, low: float = 1.0, high: float = 10.0) -> np.ndarray:
    """Complete digraph with uniform weights in [low, high], zero diagonal."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    edge = rng.uniform(low, high, (n, n))
    np.fill_diagonal(edge, 0.0)
    return edge


def random_sparse_graph(n: int, *, p: float = 0.2, seed: int = 0, high: float = 10.0) -> np.ndarray:
    """Erdős–Rényi G(n, p) digraph; absent edges are ``inf``.

    Uses networkx when importable (the richer generator), otherwise a
    numpy Bernoulli mask — identical distribution either way.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    try:
        import networkx as nx

        graph = nx.gnp_random_graph(n, p, seed=seed, directed=True)
        edge = np.full((n, n), INF)
        np.fill_diagonal(edge, 0.0)
        for u, v in graph.edges:
            edge[u, v] = rng.uniform(1.0, high)
        return edge
    except ImportError:  # pragma: no cover - networkx is installed here
        mask = rng.random((n, n)) < p
        edge = np.where(mask, rng.uniform(1.0, high, (n, n)), INF)
        np.fill_diagonal(edge, 0.0)
        return edge


def random_negative_graph(n: int, *, seed: int = 0, negative_fraction: float = 0.1) -> np.ndarray:
    """A graph with some negative edges but provably no negative cycles.

    Construction: assign each vertex a potential ``h(v)``; set the weight
    of edge (u, v) to ``w0(u, v) + h(u) - h(v)`` with ``w0 >= 0``.  Every
    cycle's potential terms telescope to zero, so cycle weights stay
    nonnegative while individual edges can be negative (a Johnson
    reweighting run backwards).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 10.0, (n, n))
    potential = rng.uniform(0.0, 10.0 * negative_fraction * n, n)
    edge = base + potential[:, None] - potential[None, :]
    np.fill_diagonal(edge, 0.0)
    return edge
