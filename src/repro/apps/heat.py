"""1-D time-stepped simulation with boundary exchange (paper §5.1).

Heat transfer along a rod: cell ``i`` at step ``t`` is a function of
cells ``i-1, i, i+1`` at step ``t-1``; the end cells are held constant.
Three implementations:

* :func:`heat_sequential` — vectorized oracle.
* :func:`heat_barrier` — the traditional version: every thread passes a
  full barrier twice per step (once before reading neighbour state, once
  before writing its own).
* :func:`heat_ragged` — the paper's counter version: an array of
  counters provides *pairwise* ragged-barrier synchronization; counter
  ``c[p] >= 2t-1`` means "thread p finished reading its neighbours in
  step t", ``>= 2t`` means "thread p completed step t".  Boundary
  pseudo-threads are preloaded with ``2*steps`` exactly as in the
  listing.

Both threaded versions accept ``num_threads``: each thread owns a
contiguous block of interior cells and synchronizes only at block edges
(``num_threads = N - 2`` degenerates to the paper's one-thread-per-cell
form).  The update rule is pluggable; the default is explicit diffusion
``c + alpha * (l - 2c + r)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.patterns.ragged import RaggedBarrier
from repro.structured.forloop import block_range, multithreaded_for
from repro.sync.barrier import CyclicBarrier

__all__ = [
    "default_update",
    "heat_sequential",
    "heat_barrier",
    "heat_ragged",
]

UpdateFn = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def default_update(
    left: np.ndarray, centre: np.ndarray, right: np.ndarray, *, alpha: float = 0.25
) -> np.ndarray:
    """Explicit diffusion step (stable for ``alpha <= 0.5``)."""
    return centre + alpha * (left - 2.0 * centre + right)


def _validate(initial: np.ndarray, steps: int, num_threads: int | None) -> tuple[np.ndarray, int]:
    state = np.asarray(initial, dtype=np.float64).copy()
    if state.ndim != 1 or state.shape[0] < 3:
        raise ValueError(f"initial state must be 1-D with >= 3 cells, got shape {state.shape}")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    interior = state.shape[0] - 2
    if num_threads is None:
        num_threads = interior
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    return state, min(num_threads, interior)


def heat_sequential(
    initial: np.ndarray, steps: int, update: UpdateFn = default_update
) -> np.ndarray:
    """Vectorized single-threaded reference."""
    state, _ = _validate(initial, steps, 1)
    for _ in range(steps):
        state[1:-1] = update(state[:-2], state[1:-1], state[2:])
    return state


def heat_barrier(
    initial: np.ndarray,
    steps: int,
    *,
    num_threads: int | None = None,
    update: UpdateFn = default_update,
) -> np.ndarray:
    """Traditional full-barrier version: all threads synchronize twice a step."""
    state, threads = _validate(initial, steps, num_threads)
    interior = state.shape[0] - 2
    barrier = CyclicBarrier(threads, name="heat")

    def worker(p: int) -> None:
        block = block_range(p, interior, threads)
        lo, hi = block.start + 1, block.stop + 1  # interior offset
        for _ in range(steps):
            barrier.pass_()
            left = state[lo - 1]
            right = state[hi]
            inner = state[lo:hi].copy()
            barrier.pass_()
            state[lo:hi] = update(
                np.concatenate(([left], inner[:-1])),
                inner,
                np.concatenate((inner[1:], [right])),
            )

    multithreaded_for(worker, range(threads), name="heat-barrier")
    return state


def heat_ragged(
    initial: np.ndarray,
    steps: int,
    *,
    num_threads: int | None = None,
    update: UpdateFn = default_update,
) -> np.ndarray:
    """The paper's ragged-barrier version over an array of counters.

    Thread ``p`` (1-based, with pseudo-threads 0 and P+1 preloaded for the
    constant boundary cells) runs, per step ``t``:

    1. wait for ``c[p-1] >= 2t-2`` AND ``c[p+1] >= 2t-2`` (one batched
       :meth:`~repro.patterns.ragged.RaggedBarrier.wait_for_all`), then
       read both edges — neighbours have *written* step t-1;
    2. ``c[p].increment(1)`` — "my reads are done" (value ``2t-1``);
    3. compute the new block locally;
    4. wait for ``c[p-1] >= 2t-1`` AND ``c[p+1] >= 2t-1`` (batched) —
       neighbours have *read* my step t-1 edge values;
    5. write the block, ``c[p].increment(1)`` (value ``2t``).

    Deferring the left-edge read until after both waits (the paper's
    listing interleaves wait/read per neighbour) is safe: the left
    neighbour cannot overwrite its step t-1 edge until it passes its own
    step-4 wait on ``c[p] >= 2t-1``, which this thread has not announced
    yet.
    """
    state, threads = _validate(initial, steps, num_threads)
    interior = state.shape[0] - 2
    ragged = RaggedBarrier(threads + 2)
    ragged.preload(0, 2 * steps)
    ragged.preload(threads + 1, 2 * steps)

    def worker(index: int) -> None:
        p = index + 1  # 1-based among the counters
        block = block_range(index, interior, threads)
        lo, hi = block.start + 1, block.stop + 1
        local = state[lo:hi].copy()
        for t in range(1, steps + 1):
            ragged.wait_for_all([(p - 1, 2 * t - 2), (p + 1, 2 * t - 2)])
            left = state[lo - 1]
            right = state[hi]
            ragged.advance(p)
            new_local = update(
                np.concatenate(([left], local[:-1])),
                local,
                np.concatenate((local[1:], [right])),
            )
            ragged.wait_for_all([(p - 1, 2 * t - 1), (p + 1, 2 * t - 1)])
            state[lo:hi] = new_local
            local = new_local
            ragged.advance(p)

    multithreaded_for(worker, range(threads), name="heat-ragged")
    return state
