"""Longest common subsequence by 2-D wavefront (counter dataflow).

A dynamic-programming grid with the classic (i-1, j), (i, j-1), and
(i-1, j-1) dependencies, parallelized with
:func:`repro.patterns.wavefront.wavefront_run`: one thread per row block,
one counter per thread, no barrier anywhere.  Demonstrates the paper's
dataflow style on a dependency structure richer than the 1-D examples.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.wavefront import wavefront_run

__all__ = ["lcs_length_sequential", "lcs_length_wavefront", "lcs_table"]


def lcs_table(a: str, b: str) -> np.ndarray:
    """The (len(a)+1) x (len(b)+1) DP table, sequentially (oracle)."""
    table = np.zeros((len(a) + 1, len(b) + 1), dtype=np.int64)
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return table


def lcs_length_sequential(a: str, b: str) -> int:
    """Length of the longest common subsequence of ``a`` and ``b``."""
    return int(lcs_table(a, b)[len(a), len(b)])


def lcs_length_wavefront(
    a: str, b: str, *, num_threads: int = 4, col_block: int = 8, sync_tile: int = 1
) -> int:
    """LCS length with the DP grid computed by a counter wavefront.

    Row ``i`` of the table is owned by one thread; the thread above must
    have finished a column block (announced on its counter) before the
    thread below computes the same columns — cell (i, j) then has all
    three of its dependencies.  ``sync_tile`` forwards to
    :func:`~repro.patterns.wavefront.wavefront_run`: handle that many
    column blocks per synchronization round (one coarser ``check`` plus
    one batched ``increment`` each).
    """
    if not a or not b:
        return 0
    table = np.zeros((len(a) + 1, len(b) + 1), dtype=np.int64)

    def cell(i: int, j: int) -> None:
        # Grid rows 0.. map to table rows 1.. (row/col 0 are the zero border).
        ti, tj = i + 1, j + 1
        if a[ti - 1] == b[tj - 1]:
            table[ti, tj] = table[ti - 1, tj - 1] + 1
        else:
            table[ti, tj] = max(table[ti - 1, tj], table[ti, tj - 1])

    wavefront_run(
        len(a),
        len(b),
        cell,
        num_threads=num_threads,
        col_block=col_block,
        sync_tile=sync_tile,
    )
    return int(table[len(a), len(b)])
