"""A Paraffins-style dataflow pipeline (paper §5.3's motivating workload).

The Paraffins Problem [paper ref 9] generates all paraffin molecules up
to a size: an array of molecules of size *k* is produced by one thread
and concurrently read by the threads generating larger molecules — the
single-writer multiple-reader broadcast pattern.

We reproduce the *synchronization structure* with a chemistry-free
analogue of the same recursive shape: **integer partitions**.  Stage
``k`` publishes every partition of ``k`` (parts in nonincreasing order),
built from the smaller stages' streams: a partition of ``k`` with
largest part ``m`` is ``(m,) + q`` for every partition ``q`` of
``k - m`` whose parts are ≤ ``m``.  Every stage is a single writer whose
stream is read concurrently by *all* later stages — stage streams are
re-readable, exactly like the paper's molecule arrays.

The pipeline is counter-synchronized end to end
(:class:`~repro.patterns.broadcast.ClosableBroadcast`), so by §6 it is
deterministic and sequentially equivalent — which the tests assert
against the classic partition-function recurrence.
"""

from __future__ import annotations

from functools import lru_cache

from repro.patterns.broadcast import ClosableBroadcast
from repro.structured.forloop import multithreaded_for

__all__ = ["dataflow_partitions", "partition_count"]


@lru_cache(maxsize=None)
def _count(n: int, max_part: int) -> int:
    if n == 0:
        return 1
    if max_part == 0:
        return 0
    return sum(_count(n - m, min(m, n - m)) for m in range(1, min(max_part, n) + 1))


def partition_count(n: int) -> int:
    """The partition function p(n) — oracle for the pipeline output."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return _count(n, n)


def dataflow_partitions(max_n: int) -> dict[int, list[tuple[int, ...]]]:
    """Generate all partitions of 0..max_n with one thread per stage.

    Stage ``k`` reads the streams of stages ``k-1 .. 0`` (each possibly
    mid-production) and publishes its own.  Returns
    ``{k: [partitions of k]}`` in a deterministic order.

    >>> result = dataflow_partitions(4)
    >>> result[4]
    [(1, 1, 1, 1), (2, 1, 1), (2, 2), (3, 1), (4,)]
    """
    if max_n < 0:
        raise ValueError(f"max_n must be >= 0, got {max_n}")
    stages: list[ClosableBroadcast[tuple[int, ...]]] = [
        ClosableBroadcast() for _ in range(max_n + 1)
    ]

    def run_stage(k: int) -> None:
        if k == 0:
            stages[0].publish(())
            stages[0].close()
            return
        for m in range(1, k + 1):
            # Partitions of k with largest part exactly m; the reader
            # filters the smaller stage's stream on "largest part <= m".
            for q in stages[k - m].read():
                if not q or q[0] <= m:
                    stages[k].publish((m, *q))
        stages[k].close()

    multithreaded_for(run_stage, range(max_n + 1), name="partitions")
    return {k: list(stages[k].read()) for k in range(max_n + 1)}
