"""A sliding-window rate limiter built from monotonic counters.

The "believable product" of ROADMAP item 4: a per-key quota service
whose synchronization is nothing but the paper's counters.  Each key
owns two monotone quantities:

* ``admitted`` — every request ever admitted for the key (a
  :class:`~repro.core.ShardedCounter` locally: admits are the hot path
  and shard batching keeps them cheap);
* ``retired`` — admissions that have *left* the sliding window (a plain
  :class:`~repro.core.MonotonicCounter` locally; the wait surface).

The window estimate is the difference: a **roll** samples ``admitted``
and, one window later, raises ``retired`` to that sample.  Because
``retired`` is always an admitted-count from *at least* ``window_s``
ago, ``admitted - retired`` over-estimates the true in-window count —
so admitting only while the estimate is under the limit can never admit
over quota, no matter how stale the marks are (stability doing
admission control: a stale lower bound on ``retired`` errs toward
rejecting, never over-admitting).  Mark density only affects how much
*unused* quota a burst leaves behind.

Blocked acquirers park on ``retired.check(retired + 1)``: the next roll
that retires anything releases them, and the park → increment → release
→ unpark chain is ordinary counter traffic — which is exactly why the
tail-latency attribution pipeline (:mod:`repro.obs.load` /
:mod:`repro.obs.slo`) can explain a slow admit with the same causal
machinery as any other wait.

Two backends:

* **local** (default) — in-process counters; the strict never-over-quota
  guarantee, exercised schedule-exhaustively by
  ``tests/testkit/test_ratelimit_interleave.py``.
* **service** (:class:`ServiceBackend`) — counters live in a PR-7
  :class:`~repro.dist.service.CounterService`; admits ride the client's
  batched ``inc`` frames (tagged per-request via ``corr`` riders) and
  *only the service host rolls* (:func:`serve_rolls` —
  ``raise_source`` is max-merge per source, so two rollers racing would
  retire the same admissions twice and over-admit).  Client decisions
  then use acknowledged lower bounds, giving a documented bounded
  overshoot of at most the unacknowledged in-flight admissions per
  client; the strict guarantee is the in-process one.

Keys are LRU-bounded (``max_keys``): the least-recently-touched entry is
evicted first, but never while it has parked waiters or pinned
acquirers — evicting a counter out from under a ``check`` would strand
the thread forever.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Iterable

from repro.core import MonotonicCounter, ShardedCounter
from repro.core import syncpoints as _sp
from repro.core.errors import CheckTimeout

__all__ = ["RateLimiter", "LocalBackend", "ServiceBackend", "serve_rolls"]


class LocalBackend:
    """In-process counters: strict sliding-window guarantee."""

    #: Local entries roll themselves (opportunistically and via the
    #: roller thread); service entries must not (see module docstring).
    rolls = True

    def admitted(self, name: str):
        return ShardedCounter(name=name)

    def retired(self, name: str):
        return MonotonicCounter(name=name)

    def admitted_value(self, counter) -> int:
        return counter.value  # drains shards: exact under the entry lock

    def retired_value(self, counter) -> int:
        return counter.value

    def bump(self, counter, corr: str | None) -> None:
        counter.increment(1)

    def wait(self, counter, level: int, timeout: float | None,
             corr: str | None) -> None:
        counter.check(level, timeout=timeout)

    def close(self, counter) -> None:
        pass


class ServiceBackend:
    """Counters hosted by a :class:`~repro.dist.service.CounterService`.

    Built over a thread-side endpoint
    (:func:`repro.dist.client.open_threadside`).  Admission reads are
    acknowledged lower bounds — ``admitted`` additionally floors at our
    own (possibly unflushed) contribution so a client at least counts
    its own admits; the service host must run :func:`serve_rolls` for
    this limiter's keys or blocking acquires will only ever time out.
    """

    rolls = False

    def __init__(self, endpoint) -> None:
        self._endpoint = endpoint

    def admitted(self, name: str):
        return self._endpoint.counter(name)

    def retired(self, name: str):
        return self._endpoint.counter(name)

    def admitted_value(self, counter) -> int:
        return max(counter.value, counter.dist_snapshot()["contribution"])

    def retired_value(self, counter) -> int:
        return counter.value

    def bump(self, counter, corr: str | None) -> None:
        counter.increment(1, corr=corr)

    def wait(self, counter, level: int, timeout: float | None,
             corr: str | None) -> None:
        counter.check(level, timeout=timeout, corr=corr)

    def close(self, counter) -> None:
        counter.close()


class _Entry:
    """One key's counters, marks ring, and admission lock."""

    __slots__ = ("key", "admitted", "retired", "lock", "marks",
                 "last_roll", "pins")

    def __init__(self, key: str, admitted, retired, now: float) -> None:
        self.key = key
        self.admitted = admitted
        self.retired = retired
        self.lock = threading.Lock()
        #: (ts, admitted_value) samples, oldest first.  Bounded: rolls
        #: prune everything older than the one mark still needed.
        self.marks: deque[tuple[float, int]] = deque()
        self.last_roll = now
        #: Threads holding a live reference (touch → decide → park).
        #: Non-zero means evict-unsafe: evicting would let the key be
        #: re-created with fresh counters while this entry still admits,
        #: splitting the window estimate and over-admitting.
        self.pins = 0


class RateLimiter:
    """Sliding-window quota per key over monotonic counters.

    Parameters
    ----------
    limit:
        Maximum admissions per key per ``window_s`` seconds.
    window_s:
        The sliding window length.
    name:
        Prefix for the per-key counter names (``{name}:{key}:admitted``
        etc.) — also the service-mode namespace shared with
        :func:`serve_rolls`.
    backend:
        A :class:`LocalBackend` (default) or :class:`ServiceBackend`.
    max_keys:
        LRU bound on live per-key entries.
    roll_interval:
        How often a key's window rolls (opportunistically on admits and
        via :meth:`start_roller`).  Defaults to ``window_s / 8`` — the
        mark density, i.e. how promptly expired admissions free quota.
    clock:
        Injectable time source (the determinism tests use virtual time).
    """

    def __init__(self, limit: int, window_s: float, *,
                 name: str = "ratelimit", backend=None, max_keys: int = 1024,
                 roll_interval: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ValueError(f"limit must be a positive int, got {limit!r}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys!r}")
        self.limit = limit
        self.window_s = window_s
        self.name = name
        self.backend = backend if backend is not None else LocalBackend()
        self.max_keys = max_keys
        self.roll_interval = (
            roll_interval if roll_interval is not None else window_s / 8.0
        )
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        # Lock order: _entries_lock, then entry.lock — never the reverse.
        self._entries_lock = threading.Lock()
        self._roller: threading.Thread | None = None
        self._roller_stop = threading.Event()
        self.evictions = 0

    # -------------------------------------------------------------- entries

    def _touch(self, key: str) -> _Entry:
        """LRU-touch (creating if new, evicting if over budget).

        The returned entry is **pinned**: the caller owes one
        ``entry.pins`` decrement (``_decide`` pays it on admit; the
        reject paths pay it after parking or giving up).  Without the
        pin, an eviction sweeping between this return and the decision
        could orphan the entry, and a re-created key would admit against
        fresh counters — over quota.
        """
        with self._entries_lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                with entry.lock:
                    entry.pins += 1
                return entry
            now = self._clock()
            entry = _Entry(
                key,
                self.backend.admitted(f"{self.name}:{key}:admitted"),
                self.backend.retired(f"{self.name}:{key}:retired"),
                now,
            )
            entry.marks.append((now, 0))
            entry.pins = 1  # not yet published: no lock needed
            self._entries[key] = entry
            evicted = []
            if len(self._entries) > self.max_keys:
                # Oldest-first sweep, skipping entries that a thread is
                # parked on (live waiters) or about to park on (pins).
                for old_key in list(self._entries):
                    if len(self._entries) <= self.max_keys:
                        break
                    if old_key == key:
                        continue
                    old = self._entries[old_key]
                    with old.lock:
                        busy = old.pins > 0 or bool(
                            old.retired.snapshot().nodes
                        )
                        if busy:
                            continue
                        if _sp.enabled:
                            _sp.fire("ratelimit.evict", self)
                        del self._entries[old_key]
                        evicted.append(old)
                        self.evictions += 1
        for old in evicted:
            self.backend.close(old.admitted)
            self.backend.close(old.retired)
        return entry

    def keys(self) -> list[str]:
        """Live keys, least-recently-used first."""
        with self._entries_lock:
            return list(self._entries)

    # -------------------------------------------------------------- rolling

    def _roll_locked(self, entry: _Entry, now: float) -> None:
        """Retire the window's tail (entry lock held by the caller)."""
        if not self.backend.rolls:
            return
        if _sp.enabled:
            _sp.fire("ratelimit.roll", self)
        entry.last_roll = now
        horizon = now - self.window_s
        target = None
        # The newest mark at or before the horizon is the tightest sound
        # retire target; everything older than it is no longer needed.
        while entry.marks and entry.marks[0][0] <= horizon:
            target = entry.marks.popleft()[1]
        if target is not None:
            entry.marks.appendleft((horizon, target))
            retired_v = self.backend.retired_value(entry.retired)
            if target > retired_v:
                entry.retired.increment(target - retired_v)
        admitted_v = self.backend.admitted_value(entry.admitted)
        if not entry.marks or entry.marks[-1][1] != admitted_v:
            entry.marks.append((now, admitted_v))

    def roll(self, key: str | None = None, now: float | None = None) -> None:
        """Roll one key's window (or every live key's)."""
        if now is None:
            now = self._clock()
        if key is not None:
            with self._entries_lock:
                entry = self._entries.get(key)
            if entry is not None:
                with entry.lock:
                    self._roll_locked(entry, now)
            return
        with self._entries_lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.lock:
                self._roll_locked(entry, now)

    def start_roller(self, interval: float | None = None) -> "RateLimiter":
        """Run :meth:`roll` for every key on a daemon thread."""
        if self._roller is not None:
            raise RuntimeError("roller already started")
        if interval is None:
            interval = self.roll_interval
        self._roller_stop.clear()

        def run() -> None:
            while not self._roller_stop.wait(interval):
                try:
                    self.roll()
                except Exception:
                    continue  # a roll must never kill the roller

        self._roller = threading.Thread(
            target=run, name=f"repro-ratelimit-roller:{self.name}", daemon=True
        )
        self._roller.start()
        return self

    def stop_roller(self) -> None:
        thread = self._roller
        if thread is None:
            return
        self._roller_stop.set()
        thread.join(timeout=5.0)
        self._roller = None

    def __enter__(self) -> "RateLimiter":
        return self.start_roller()

    def __exit__(self, *exc: object) -> None:
        self.stop_roller()

    # ------------------------------------------------------------ admission

    def _decide(self, entry: _Entry, corr: str | None,
                now: float) -> tuple[bool, int]:
        """One locked admit decision; returns (admitted?, retired level).

        The returned level is what a rejected caller should wait past:
        ``retired`` reaching ``level + 1`` means quota was freed after
        this decision was made.  The entry arrives pinned (``_touch``);
        an admit releases the pin here, a reject keeps it — the caller
        holds it through the park (or the give-up) so the eviction sweep
        never pulls the counters out from under a waiter.
        """
        if _sp.enabled:
            _sp.fire("ratelimit.lock", self)
        with entry.lock:
            if now - entry.last_roll >= self.roll_interval:
                self._roll_locked(entry, now)
            admitted_v = self.backend.admitted_value(entry.admitted)
            retired_v = self.backend.retired_value(entry.retired)
            if admitted_v - retired_v < self.limit:
                self.backend.bump(entry.admitted, corr)
                if not entry.marks or now > entry.marks[-1][0]:
                    entry.marks.append((now, admitted_v + 1))
                else:
                    # Same clock tick as the newest mark (coarse or
                    # injected clocks): raise it in place — the counter
                    # really had reached this value by that timestamp,
                    # so the roll may retire it a window later.
                    entry.marks[-1] = (entry.marks[-1][0], admitted_v + 1)
                entry.pins -= 1
                return True, retired_v
            return False, retired_v

    def try_acquire(self, key: str, *, corr: str | None = None) -> bool:
        """One non-blocking admit decision for ``key``.

        This is the gated fast path (``ratelimit_admit`` in the quick
        bench): with observability disabled it does no obs work at all —
        the only hooks are sync points, which cost one module-attr read
        each, identical to every other primitive in the repo.
        """
        entry = self._touch(key)
        ok, _ = self._decide(entry, corr, self._clock())
        if not ok:
            with entry.lock:
                entry.pins -= 1
        return ok

    def acquire(self, key: str, timeout: float | None = None, *,
                corr: str | None = None) -> bool:
        """Admit ``key``, blocking until quota frees or ``timeout``.

        A rejected attempt parks on ``retired.check(level + 1)`` — the
        next roll that retires anything wakes every parked acquirer to
        re-contend.  Returns ``False`` on timeout (never raises
        :class:`CheckTimeout`).
        """
        deadline = None if timeout is None else self._clock() + timeout
        entry = self._touch(key)
        while True:
            now = self._clock()
            ok, retired_v = self._decide(entry, corr, now)
            if ok:
                return True
            try:
                remaining = None if deadline is None else deadline - now
                if remaining is not None and remaining <= 0:
                    return False
                self.backend.wait(entry.retired, retired_v + 1,
                                  remaining, corr)
            except CheckTimeout:
                return False
            finally:
                with entry.lock:
                    entry.pins -= 1
            entry = self._touch(key)  # re-touch: we are active again

    # ------------------------------------------------------------ inspection

    def in_window(self, key: str) -> int:
        """The current window estimate for ``key`` (0 for unknown keys)."""
        with self._entries_lock:
            entry = self._entries.get(key)
        if entry is None:
            return 0
        with entry.lock:
            return (self.backend.admitted_value(entry.admitted)
                    - self.backend.retired_value(entry.retired))

    def snapshot(self) -> dict:
        """Per-key admission state (for dumps and tests)."""
        with self._entries_lock:
            entries = list(self._entries.items())
        out = {}
        for key, entry in entries:
            with entry.lock:
                admitted_v = self.backend.admitted_value(entry.admitted)
                retired_v = self.backend.retired_value(entry.retired)
                out[key] = {
                    "admitted": admitted_v,
                    "retired": retired_v,
                    "in_window": admitted_v - retired_v,
                    "marks": len(entry.marks),
                    "pins": entry.pins,
                }
        return out

    def close(self) -> None:
        """Stop the roller and release every entry's counters."""
        self.stop_roller()
        with self._entries_lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self.backend.close(entry.admitted)
            self.backend.close(entry.retired)

    def __repr__(self) -> str:
        with self._entries_lock:
            n = len(self._entries)
        return (f"<RateLimiter {self.name!r} limit={self.limit}/"
                f"{self.window_s}s keys={n}>")


async def serve_rolls(service, *, keys: Iterable[str], limit: int,
                      window_s: float, name: str = "ratelimit",
                      interval: float | None = None) -> None:
    """Roll a service-hosted limiter's windows, on the service host.

    Runs forever (cancel the task to stop).  Exactly one process may
    roll a key — ``raise_source("roll", ...)`` is max-merge for the
    single ``"roll"`` source, so one roller is idempotent and safe
    against its own retries, but two rollers sampling different marks
    would retire admissions twice.  The server-side ``retired`` raise
    flows through the GCounter's wait mirror into subscription pushes:
    that push (``push_deliver``) is the wire event a blocked client's
    tail exemplar blames.
    """
    import asyncio

    if interval is None:
        interval = window_s / 8.0
    keys = list(keys)
    marks: dict[str, deque[tuple[float, int]]] = {
        key: deque([(time.monotonic(), 0)]) for key in keys
    }
    while True:
        now = time.monotonic()
        horizon = now - window_s
        for key in keys:
            admitted = service.counter(f"{name}:{key}:admitted").value
            ring = marks[key]
            target = None
            while ring and ring[0][0] <= horizon:
                target = ring.popleft()[1]
            if target is not None:
                ring.appendleft((horizon, target))
                if target > 0:
                    service.counter(f"{name}:{key}:retired").raise_source(
                        "roll", target
                    )
            if not ring or ring[-1][1] != admitted:
                ring.append((now, admitted))
        await asyncio.sleep(interval)
