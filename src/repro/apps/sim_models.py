"""Virtual-time models of the paper's workloads (benchmark substrate).

Each function builds a :class:`~repro.simthread.Simulation` that models
one of the paper's programs — same threads, same synchronization
structure, with compute replaced by ``Compute(cost)`` — and returns the
:class:`~repro.simthread.SimResult`.  The makespan is then the critical
path of the synchronization structure, which is exactly the quantity the
paper's §4/§5 performance arguments are about (barrier bottleneck vs
ragged overlap), measured without GIL or timer noise.

Cost models: a base cost per unit of work plus multiplicative jitter
``U(1 - imbalance, 1 + imbalance)`` drawn from a seeded RNG, so "load
imbalance" is a single reproducible knob.  Synchronization operations
optionally cost ``op_cost`` processor time each, modelling the §7
constant-factor overhead (used by the E6 granularity sweep).
"""

from __future__ import annotations

import random

from repro.simthread.scheduler import Simulation, SimResult
from repro.simthread.syscalls import Compute
from repro.structured.forloop import block_range

__all__ = [
    "sim_floyd_warshall",
    "sim_heat",
    "sim_broadcast",
    "sim_ordered_accumulate",
]


def _jitter_fn(imbalance: float, seed: int):
    if not 0.0 <= imbalance < 1.0:
        raise ValueError(f"imbalance must be in [0, 1), got {imbalance}")
    rng = random.Random(seed)
    if imbalance == 0.0:
        return lambda: 1.0
    return lambda: rng.uniform(1.0 - imbalance, 1.0 + imbalance)


def sim_floyd_warshall(
    n: int,
    num_threads: int,
    variant: str,
    *,
    row_cost: float = 1.0,
    imbalance: float = 0.0,
    seed: int = 0,
    processors: int | None = None,
) -> SimResult:
    """§4 Floyd-Warshall synchronization structure in virtual time.

    ``variant``: ``"barrier"`` (§4.3), ``"events"`` (§4.4) or
    ``"counter"`` (§4.5).  Per iteration ``k``, each thread computes its
    row block (cost ``row_cost`` × jitter per row); the ragged variants
    announce row ``k+1`` the moment it is ready, the barrier variant
    synchronizes all threads.
    """
    if variant not in ("barrier", "events", "counter"):
        raise ValueError(f"unknown variant {variant!r}")
    if n < 1 or num_threads < 1:
        raise ValueError("n and num_threads must be >= 1")
    num_threads = min(num_threads, n)
    jitter = _jitter_fn(imbalance, seed)
    # Pre-draw per (thread, iteration, row) costs so every variant sees the
    # identical workload.
    rows_of = [list(block_range(t, n, num_threads)) for t in range(num_threads)]
    costs = [
        [[row_cost * jitter() for _ in rows_of[t]] for _ in range(n)]
        for t in range(num_threads)
    ]
    sim = Simulation(processors=processors)

    if variant == "barrier":
        barrier = sim.barrier(num_threads, "fw")

        def barrier_worker(t: int):
            for k in range(n):
                for cost in costs[t][k]:
                    yield Compute(cost)
                yield barrier.pass_()

        for t in range(num_threads):
            sim.spawn(barrier_worker(t), name=f"w{t}")
        return sim.run()

    if variant == "events":
        events = [sim.event(f"kDone[{k}]") for k in range(n)]
        events[0].is_set = True  # kDone[0].Set() before the loop

        def events_worker(t: int):
            for k in range(n):
                yield events[k].check()
                for offset, i in enumerate(rows_of[t]):
                    yield Compute(costs[t][k][offset])
                    if i == k + 1:
                        yield events[k + 1].set()

        for t in range(num_threads):
            sim.spawn(events_worker(t), name=f"w{t}")
        return sim.run()

    counter = sim.counter("kCount")

    def counter_worker(t: int):
        for k in range(n):
            yield counter.check(k)
            for offset, i in enumerate(rows_of[t]):
                yield Compute(costs[t][k][offset])
                if i == k + 1:
                    yield counter.increment(1)

    for t in range(num_threads):
        sim.spawn(counter_worker(t), name=f"w{t}")
    return sim.run()


def sim_heat(
    num_threads: int,
    steps: int,
    variant: str,
    *,
    step_cost: float = 1.0,
    read_cost: float = 0.01,
    imbalance: float = 0.0,
    seed: int = 0,
    processors: int | None = None,
) -> SimResult:
    """§5.1 boundary-exchange structure in virtual time.

    ``variant``: ``"barrier"`` (two full barriers per step) or
    ``"ragged"`` (the paper's counter protocol).  Per-step compute cost
    is ``step_cost`` × jitter per (thread, step).
    """
    if variant not in ("barrier", "ragged"):
        raise ValueError(f"unknown variant {variant!r}")
    if num_threads < 1 or steps < 0:
        raise ValueError("num_threads must be >= 1 and steps >= 0")
    jitter = _jitter_fn(imbalance, seed)
    costs = [[step_cost * jitter() for _ in range(steps)] for _ in range(num_threads)]
    sim = Simulation(processors=processors)

    if variant == "barrier":
        barrier = sim.barrier(num_threads, "heat")

        def barrier_worker(p: int):
            for t in range(steps):
                yield barrier.pass_()
                yield Compute(read_cost)
                yield barrier.pass_()
                yield Compute(costs[p][t])

        for p in range(num_threads):
            sim.spawn(barrier_worker(p), name=f"cell{p}")
        return sim.run()

    counters = [sim.counter(f"c[{p}]") for p in range(num_threads + 2)]
    counters[0].value = 2 * steps  # preloaded boundary pseudo-threads
    counters[num_threads + 1].value = 2 * steps

    def ragged_worker(index: int):
        p = index + 1
        for t in range(1, steps + 1):
            yield counters[p - 1].check(2 * t - 2)
            yield counters[p + 1].check(2 * t - 2)
            yield Compute(read_cost)
            yield counters[p].increment(1)
            yield Compute(costs[index][t - 1])
            yield counters[p - 1].check(2 * t - 1)
            yield counters[p + 1].check(2 * t - 1)
            yield counters[p].increment(1)

    for index in range(num_threads):
        sim.spawn(ragged_worker(index), name=f"cell{index}")
    return sim.run()


def sim_broadcast(
    n_items: int,
    num_readers: int,
    *,
    writer_block: int = 1,
    reader_block: int = 1,
    gen_cost: float = 1.0,
    use_cost: float = 1.0,
    op_cost: float = 0.2,
    imbalance: float = 0.0,
    seed: int = 0,
    processors: int | None = None,
) -> SimResult:
    """§5.3 single-writer multiple-reader broadcast in virtual time.

    One writer generates ``n_items`` (cost ``gen_cost`` each, announced
    every ``writer_block`` items); each reader consumes all items (cost
    ``use_cost`` each, synchronizing every ``reader_block`` items).  Each
    synchronization operation costs ``op_cost``, so the sweep over block
    sizes reproduces the paper's granularity trade-off.
    """
    if n_items < 0 or num_readers < 1:
        raise ValueError("n_items must be >= 0 and num_readers >= 1")
    if writer_block < 1 or reader_block < 1:
        raise ValueError("block sizes must be >= 1")
    jitter = _jitter_fn(imbalance, seed)
    sim = Simulation(processors=processors)
    counter = sim.counter("dataCount")

    def writer():
        pending = 0
        for _ in range(n_items):
            yield Compute(gen_cost * jitter())
            pending += 1
            if pending == writer_block:
                if op_cost:
                    yield Compute(op_cost)
                yield counter.increment(pending)
                pending = 0
        if pending:
            if op_cost:
                yield Compute(op_cost)
            yield counter.increment(pending)

    def reader(r: int):
        for i in range(n_items):
            if i % reader_block == 0:
                if op_cost:
                    yield Compute(op_cost)
                yield counter.check(min(i + reader_block, n_items))
            yield Compute(use_cost * jitter())

    sim.spawn(writer(), name="writer")
    for r in range(num_readers):
        sim.spawn(reader(r), name=f"reader{r}")
    return sim.run()


def sim_ordered_accumulate(
    n_threads: int,
    variant: str,
    *,
    work: float = 10.0,
    cs_cost: float = 1.0,
    imbalance: float = 0.5,
    seed: int = 0,
    policy: str = "fifo",
    processors: int | None = None,
) -> SimResult:
    """§5.2 accumulation structure: lock vs ordered counter, in virtual time.

    Each thread computes a subresult (cost ``work`` × jitter), then folds
    it in a critical section (cost ``cs_cost``).  The lock variant admits
    threads in arrival order; the counter variant in index order, which
    is the paper's "less concurrency for more determinacy" trade — the
    makespans quantify it.
    """
    if variant not in ("lock", "counter"):
        raise ValueError(f"unknown variant {variant!r}")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    jitter = _jitter_fn(imbalance, seed)
    works = [work * jitter() for _ in range(n_threads)]
    sim = Simulation(policy=policy, seed=seed, processors=processors)

    if variant == "lock":
        lock = sim.lock("resultLock")

        def lock_worker(i: int):
            yield Compute(works[i])
            yield lock.acquire()
            yield Compute(cs_cost)
            yield lock.release()

        for i in range(n_threads):
            sim.spawn(lock_worker(i), name=f"t{i}")
        return sim.run()

    counter = sim.counter("resultCount")

    def counter_worker(i: int):
        yield Compute(works[i])
        yield counter.check(i)
        yield Compute(cs_cost)
        yield counter.increment(1)

    for i in range(n_threads):
        sim.spawn(counter_worker(i), name=f"t{i}")
    return sim.run()
