"""Benchmark harness utilities: tables, timing, counter stress workloads.

``python -m repro.bench.counter_ops`` runs the counter-ops ops/sec series
and records ``BENCH_counter_ops.json`` (see :mod:`repro.bench.counter_ops`);
``python -m repro.bench.load_ops`` runs the quota-service load series and
records ``BENCH_load_ops.json`` (see :mod:`repro.bench.load_ops`).
"""

from repro.bench.tables import Table
from repro.bench.timing import Timing, measure
from repro.bench.workloads import SpreadResult, spread_waiters

__all__ = [
    "Table",
    "Timing",
    "measure",
    "SpreadResult",
    "spread_waiters",
    "run_counter_ops",
    "run_load_ops",
]


def __getattr__(name):
    # Lazy: an eager import here would make ``python -m repro.bench.counter_ops``
    # warn about the module already being in sys.modules before runpy executes it.
    if name == "run_counter_ops":
        from repro.bench.counter_ops import run_counter_ops

        return run_counter_ops
    if name == "run_load_ops":
        from repro.bench.load_ops import run_load_ops

        return run_load_ops
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
