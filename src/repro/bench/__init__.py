"""Benchmark harness utilities: tables, timing, counter stress workloads."""

from repro.bench.tables import Table
from repro.bench.timing import Timing, measure
from repro.bench.workloads import SpreadResult, spread_waiters

__all__ = ["Table", "Timing", "measure", "SpreadResult", "spread_waiters"]
