"""E-series counter-ops harness: ops/sec series with a machine-readable log.

Runs the hot-path benchmarks the perf work of this repo is judged by and
writes ``BENCH_counter_ops.json`` (at the current directory by default, the
repo root in CI) so successive PRs accumulate a recorded perf trajectory:

* ``immediate_check`` — ``check(level)`` with ``level`` already reached:
  the lock-free fast path, against the pre-optimization locked
  configuration (``fast_path=False, stats=True`` — the seed behavior) and
  every other implementation.
* ``uncontended_increment`` — single-thread ``increment(1)`` throughput
  (no waiters: the release-scan-skipping fast path).
* ``contended_increment`` — T producer threads hammering one counter:
  where :class:`~repro.core.sharded.ShardedCounter`'s striped batching
  pays off.
* ``fan_in_wakeup`` — park W threads over L levels, release with a stepped
  sweep (the E8b shape), end to end.

Usage::

    PYTHONPATH=src python -m repro.bench.counter_ops [--quick] [--out PATH]

``--quick`` shrinks every size so a CI smoke run finishes in seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from typing import Callable

from repro.bench.tables import Table
from repro.bench.timing import measure
from repro.bench.workloads import spread_waiters
from repro.core import BroadcastCounter, MonotonicCounter, ShardedCounter

__all__ = ["run_counter_ops", "main"]

SCHEMA = 1

#: The counter configurations every series is run against.  ``linked`` is
#: the optimized default; ``linked_locked`` reproduces the seed's behavior
#: (every check through the lock, stats bookkeeping always on) so the
#: fast-path speedup is measured on the same machine in the same run.
FACTORIES: dict[str, Callable[[], object]] = {
    "linked": lambda: MonotonicCounter(strategy="linked"),
    "linked_locked": lambda: MonotonicCounter(strategy="linked", fast_path=False, stats=True),
    "heap": lambda: MonotonicCounter(strategy="heap"),
    "broadcast": lambda: BroadcastCounter(),
    "sharded": lambda: ShardedCounter(),
}

#: Implementations that make sense for the blocking fan-in series.
FAN_IN = ("linked", "heap", "broadcast", "sharded")


def _sizes(quick: bool) -> dict[str, int]:
    if quick:
        return {
            "check_ops": 2_000,
            "increment_ops": 2_000,
            "contended_threads": 2,
            "contended_ops_per_thread": 500,
            "fan_in_waiters": 8,
            "fan_in_levels": 4,
            "repeats": 2,
        }
    return {
        "check_ops": 100_000,
        "increment_ops": 100_000,
        "contended_threads": 4,
        "contended_ops_per_thread": 25_000,
        "fan_in_waiters": 64,
        "fan_in_levels": 16,
        "repeats": 5,
    }


def _series_entry(ops: int, mean_s: float) -> dict[str, float]:
    return {"ops_per_sec": ops / mean_s if mean_s else float("inf"), "mean_s": mean_s}


def _bench_immediate_check(factory: Callable[[], object], ops: int, repeats: int) -> float:
    counter = factory()
    counter.increment(1)
    if hasattr(counter, "flush"):
        counter.flush()  # publish the batched increment so every check is immediate
    check = counter.check
    r = range(ops)

    def run() -> None:
        for _ in r:
            check(1)

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_uncontended_increment(factory: Callable[[], object], ops: int, repeats: int) -> float:
    r = range(ops)

    def run() -> None:
        # Fresh counter per run so the value (and any max_value headroom)
        # never carries across samples.
        increment = factory().increment
        for _ in r:
            increment(1)

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_contended_increment(
    factory: Callable[[], object], threads: int, ops_per_thread: int, repeats: int
) -> float:
    r = range(ops_per_thread)

    def run() -> None:
        counter = factory()
        start = threading.Barrier(threads + 1)

        def worker() -> None:
            increment = counter.increment
            start.wait()
            for _ in r:
                increment(1)

        pool = [threading.Thread(target=worker, daemon=True) for _ in range(threads)]
        for t in pool:
            t.start()
        start.wait()
        for t in pool:
            t.join()

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_fan_in(
    factory: Callable[[], object], waiters: int, levels: int, repeats: int
) -> float:
    return measure(
        lambda: spread_waiters(
            factory(), waiters=waiters, levels=levels, increment_steps=levels
        ),
        repeats=repeats,
        warmup=1,
    ).mean


def run_counter_ops(*, quick: bool = False) -> dict:
    """Run every series and return the JSON-ready result document."""
    sizes = _sizes(quick)
    repeats = sizes["repeats"]
    series: dict[str, dict[str, dict[str, float]]] = {}

    series["immediate_check"] = {
        name: _series_entry(
            sizes["check_ops"],
            _bench_immediate_check(factory, sizes["check_ops"], repeats),
        )
        for name, factory in FACTORIES.items()
    }
    series["uncontended_increment"] = {
        name: _series_entry(
            sizes["increment_ops"],
            _bench_uncontended_increment(factory, sizes["increment_ops"], repeats),
        )
        for name, factory in FACTORIES.items()
    }
    total_contended = sizes["contended_threads"] * sizes["contended_ops_per_thread"]
    series["contended_increment"] = {
        name: _series_entry(
            total_contended,
            _bench_contended_increment(
                FACTORIES[name],
                sizes["contended_threads"],
                sizes["contended_ops_per_thread"],
                repeats,
            ),
        )
        for name in ("linked", "heap", "broadcast", "sharded")
    }
    series["fan_in_wakeup"] = {
        name: _series_entry(
            sizes["fan_in_waiters"],
            _bench_fan_in(
                FACTORIES[name], sizes["fan_in_waiters"], sizes["fan_in_levels"], repeats
            ),
        )
        for name in FAN_IN
    }

    fast = series["immediate_check"]["linked"]["ops_per_sec"]
    locked = series["immediate_check"]["linked_locked"]["ops_per_sec"]
    return {
        "bench": "counter_ops",
        "schema": SCHEMA,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "config": sizes,
        "series": series,
        "derived": {
            "immediate_check_fast_path_speedup": fast / locked if locked else float("inf"),
        },
    }


def render(doc: dict) -> str:
    """A human-readable summary of one result document."""
    lines = []
    for series_name, entries in doc["series"].items():
        table = Table(
            f"counter_ops/{series_name} (ops/sec)",
            ["implementation", "ops/sec", "mean s"],
        )
        for impl, entry in entries.items():
            table.add_row(impl, entry["ops_per_sec"], entry["mean_s"])
        lines.append(table.render())
    speedup = doc["derived"]["immediate_check_fast_path_speedup"]
    lines.append(f"immediate-check fast path vs locked seed path: {speedup:.2f}x")
    return "\n\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.counter_ops", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for a CI smoke run"
    )
    parser.add_argument(
        "--out",
        default="BENCH_counter_ops.json",
        help="where to write the JSON log (default: ./BENCH_counter_ops.json)",
    )
    args = parser.parse_args(argv)
    doc = run_counter_ops(quick=args.quick)
    print(render(doc))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
