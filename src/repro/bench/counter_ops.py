"""E-series counter-ops harness: ops/sec series with a machine-readable log.

Runs the hot-path benchmarks the perf work of this repo is judged by and
writes ``BENCH_counter_ops.json`` (at the current directory by default, the
repo root in CI) so successive PRs accumulate a recorded perf trajectory:

* ``immediate_check`` — ``check(level)`` with ``level`` already reached:
  the lock-free fast path, against the pre-optimization locked
  configuration (``fast_path=False, stats=True`` — the seed behavior) and
  every other implementation.
* ``uncontended_increment`` — single-thread ``increment(1)`` throughput
  (no waiters: the release-scan-skipping fast path).
* ``contended_increment`` — T producer threads hammering one counter:
  where :class:`~repro.core.sharded.ShardedCounter`'s striped batching
  pays off.
* ``fan_in_wakeup`` — park W threads over L levels, release with a stepped
  sweep, re-park and release again for E episodes over one persistent
  thread pool (the E8b shape with the thread-spawn cost amortized away,
  so the number measures the park → release → wake path itself).
* ``handoff_pingpong`` — two threads in strict alternation, each
  incrementing its own counter and checking the other's, so every
  roundtrip crosses the wakeup path twice and neither side can run
  ahead.  ``linked`` is the build-dependent default policy (park-only
  under the GIL); ``linked_spin`` forces the spin-then-park policy.  On
  serial hosts (GIL build or one CPU) a spinner holds the interpreter
  away from the incrementer while a parked thread is woken promptly by
  the slot set, so ``SPIN_THEN_PARK`` *degrades its spin budget to
  zero* there (``park_on_serial_hosts``) and the two variants should
  measure the same; genuinely parallel hosts keep the spin and are
  expected to win with it.
* ``multiwait_join`` — one consumer joining N flow-controlled producers
  every round: subscription-based
  :class:`~repro.core.multiwait.MultiWait` versus the sequential check
  loop.  Sequential wins this one-shot-join shape (stability satisfies
  the remaining conditions while the consumer parks on the first, so it
  parks ~once and pays no per-round subscription setup) — recorded to
  keep the ``check_all`` strategy choice honest.

Every run *appends* one line to ``BENCH_counter_ops.history.jsonl``
(keyed by git SHA and timestamp) in addition to overwriting the latest
snapshot, so speedups and regressions across PRs stay inspectable, and
``--compare-to BASELINE.json`` turns the run into a regression gate.

Usage::

    PYTHONPATH=src python -m repro.bench.counter_ops [--quick] [--out PATH]
        [--history PATH | --no-history] [--label TEXT] [--timestamp TS]
        [--compare-to BASELINE.json] [--tolerance 0.3]

``--quick`` shrinks every size so a CI smoke run finishes in seconds.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time
from typing import Callable

from repro.bench.hostmeta import host_metadata
from repro.bench.tables import Table
from repro.bench.timing import measure
from repro.bench.workloads import spread_waiters
from repro.core import (
    SPIN_THEN_PARK,
    BroadcastCounter,
    MonotonicCounter,
    MultiWait,
    ShardedCounter,
)

__all__ = ["run_counter_ops", "compare", "main"]

SCHEMA = 2

#: The counter configurations every series is run against.  ``linked`` is
#: the optimized default (park-only under the GIL, spin-then-park on
#: free-threaded builds); ``linked_spin`` forces the adaptive
#: spin-then-park policy so both sides of the build-dependent default are
#: always measured; ``linked_locked`` reproduces the seed's behavior
#: (every check through the lock, stats bookkeeping always on) so the
#: fast-path speedup is measured on the same machine in the same run.
FACTORIES: dict[str, Callable[[], object]] = {
    "linked": lambda: MonotonicCounter(strategy="linked"),
    "linked_spin": lambda: MonotonicCounter(strategy="linked", policy=SPIN_THEN_PARK),
    "linked_locked": lambda: MonotonicCounter(strategy="linked", fast_path=False, stats=True),
    "heap": lambda: MonotonicCounter(strategy="heap"),
    "broadcast": lambda: BroadcastCounter(),
    "sharded": lambda: ShardedCounter(),
}

#: Implementations that make sense for the blocking fan-in series.
FAN_IN = ("linked", "linked_spin", "heap", "broadcast", "sharded")

#: Implementations raced in the ping-pong handoff series.
HANDOFF = ("linked", "linked_spin", "broadcast")

#: Series the --compare-to regression gate inspects.
GATED_SERIES = (
    "fan_in_wakeup",
    "immediate_check",
    "obs_overhead",
    "handoff_pingpong",
    "multiwait_join",
)


def _sizes(quick: bool) -> dict[str, int]:
    if quick:
        return {
            "check_ops": 2_000,
            "increment_ops": 2_000,
            "contended_threads": 2,
            "contended_ops_per_thread": 500,
            "fan_in_waiters": 8,
            "fan_in_levels": 4,
            "fan_in_episodes": 3,
            "handoff_roundtrips": 300,
            "multiwait_counters": 4,
            "multiwait_rounds": 50,
            "repeats": 2,
        }
    return {
        "check_ops": 100_000,
        "increment_ops": 100_000,
        "contended_threads": 4,
        "contended_ops_per_thread": 25_000,
        "fan_in_waiters": 64,
        "fan_in_levels": 16,
        "fan_in_episodes": 8,
        "handoff_roundtrips": 6_000,
        "multiwait_counters": 8,
        "multiwait_rounds": 500,
        "repeats": 5,
    }


def _series_entry(ops: int, mean_s: float) -> dict[str, float]:
    return {"ops_per_sec": ops / mean_s if mean_s else float("inf"), "mean_s": mean_s}


def _bench_immediate_check(factory: Callable[[], object], ops: int, repeats: int) -> float:
    counter = factory()
    counter.increment(1)
    if hasattr(counter, "flush"):
        counter.flush()  # publish the batched increment so every check is immediate
    check = counter.check
    r = range(ops)

    def run() -> None:
        for _ in r:
            check(1)

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_uncontended_increment(factory: Callable[[], object], ops: int, repeats: int) -> float:
    r = range(ops)

    def run() -> None:
        # Fresh counter per run so the value (and any max_value headroom)
        # never carries across samples.
        increment = factory().increment
        for _ in r:
            increment(1)

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_contended_increment(
    factory: Callable[[], object], threads: int, ops_per_thread: int, repeats: int
) -> float:
    r = range(ops_per_thread)

    def run() -> None:
        counter = factory()
        start = threading.Barrier(threads + 1)

        def worker() -> None:
            increment = counter.increment
            start.wait()
            for _ in r:
                increment(1)

        pool = [threading.Thread(target=worker, daemon=True) for _ in range(threads)]
        for t in pool:
            t.start()
        start.wait()
        for t in pool:
            t.join()

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_fan_in(
    factory: Callable[[], object], waiters: int, levels: int, episodes: int, repeats: int
) -> float:
    return measure(
        lambda: spread_waiters(
            factory(),
            waiters=waiters,
            levels=levels,
            increment_steps=levels,
            episodes=episodes,
        ),
        repeats=repeats,
        warmup=1,
    ).mean


def _bench_handoff(factory: Callable[[], object], roundtrips: int, repeats: int) -> float:
    """Strict ping-pong over two counters.

    Each side increments its own counter and then checks the other's at
    the same level, so neither side can run ahead: every roundtrip is
    two genuine cross-thread handoffs through the wait path.  (An
    earlier shape let the producer blast ahead of a chasing consumer —
    that rewards park-batching, not handoff latency.)
    """

    def run() -> None:
        ping, pong = factory(), factory()
        start = threading.Barrier(2)

        def partner() -> None:
            start.wait()
            for i in range(1, roundtrips + 1):
                ping.check(i)
                pong.increment(1)

        thread = threading.Thread(target=partner, daemon=True)
        thread.start()
        start.wait()
        for i in range(1, roundtrips + 1):
            ping.increment(1)
            pong.check(i)
        thread.join()

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_multiwait(
    n_counters: int, rounds: int, repeats: int, *, subscription: bool
) -> float:
    """One consumer joining N producers every round.

    Producers are flow-controlled by a ``done`` counter (each blocks
    until the consumer finishes the round it just fed), so the join is
    exercised every round instead of degenerating into N fast-path
    checks against a producer that raced ahead.
    """

    def run() -> None:
        counters = [MonotonicCounter() for _ in range(n_counters)]
        done = MonotonicCounter()
        start = threading.Barrier(n_counters + 1)

        def producer(counter) -> None:
            start.wait()
            for round_ in range(1, rounds + 1):
                counter.increment(1)
                done.check(round_)

        pool = [
            threading.Thread(target=producer, args=(counter,), daemon=True)
            for counter in counters
        ]
        for thread in pool:
            thread.start()
        start.wait()
        for round_ in range(1, rounds + 1):
            if subscription:
                with MultiWait([(counter, round_) for counter in counters]) as multi:
                    multi.wait_all()
            else:
                for counter in counters:
                    counter.check(round_)
            done.increment(1)
        for thread in pool:
            thread.join()

    return measure(run, repeats=repeats, warmup=1).mean


def run_counter_ops(*, quick: bool = False) -> dict:
    """Run every series and return the JSON-ready result document."""
    sizes = _sizes(quick)
    repeats = sizes["repeats"]
    series: dict[str, dict[str, dict[str, float]]] = {}

    series["immediate_check"] = {
        name: _series_entry(
            sizes["check_ops"],
            _bench_immediate_check(factory, sizes["check_ops"], repeats),
        )
        for name, factory in FACTORIES.items()
    }
    series["uncontended_increment"] = {
        name: _series_entry(
            sizes["increment_ops"],
            _bench_uncontended_increment(factory, sizes["increment_ops"], repeats),
        )
        for name, factory in FACTORIES.items()
    }
    total_contended = sizes["contended_threads"] * sizes["contended_ops_per_thread"]
    series["contended_increment"] = {
        name: _series_entry(
            total_contended,
            _bench_contended_increment(
                FACTORIES[name],
                sizes["contended_threads"],
                sizes["contended_ops_per_thread"],
                repeats,
            ),
        )
        for name in ("linked", "heap", "broadcast", "sharded")
    }
    fan_in_ops = sizes["fan_in_waiters"] * sizes["fan_in_episodes"]
    series["fan_in_wakeup"] = {
        name: _series_entry(
            fan_in_ops,
            _bench_fan_in(
                FACTORIES[name],
                sizes["fan_in_waiters"],
                sizes["fan_in_levels"],
                sizes["fan_in_episodes"],
                repeats,
            ),
        )
        for name in FAN_IN
    }
    series["handoff_pingpong"] = {
        name: _series_entry(
            sizes["handoff_roundtrips"],
            _bench_handoff(FACTORIES[name], sizes["handoff_roundtrips"], repeats),
        )
        for name in HANDOFF
    }
    multiwait_ops = sizes["multiwait_counters"] * sizes["multiwait_rounds"]
    series["multiwait_join"] = {
        variant: _series_entry(
            multiwait_ops,
            _bench_multiwait(
                sizes["multiwait_counters"],
                sizes["multiwait_rounds"],
                repeats,
                subscription=(variant == "subscription"),
            ),
        )
        for variant in ("subscription", "sequential")
    }

    # Observability overhead, measured both ways the zero-cost claim can
    # fail: the *disabled* fast path (must be indistinguishable from the
    # plain run — the seam is one module-attribute read and a false
    # branch, with no hook at all on the lock-free return) and the
    # *enabled* park path (the honest price of tracing + metrics, paid
    # only by operations that suspend).  Reuses the existing size keys so
    # the result document stays comparable with pre-obs baselines.
    import repro.obs as obs

    obs.disable()  # belt and braces: never inherit ambient enablement
    series["obs_overhead"] = {
        "immediate_disabled": _series_entry(
            sizes["check_ops"],
            _bench_immediate_check(FACTORIES["linked"], sizes["check_ops"], repeats),
        ),
        "handoff_disabled": _series_entry(
            sizes["handoff_roundtrips"],
            _bench_handoff(FACTORIES["linked"], sizes["handoff_roundtrips"], repeats),
        ),
    }
    obs.enable()
    try:
        series["obs_overhead"]["immediate_enabled"] = _series_entry(
            sizes["check_ops"],
            _bench_immediate_check(FACTORIES["linked"], sizes["check_ops"], repeats),
        )
        series["obs_overhead"]["handoff_enabled"] = _series_entry(
            sizes["handoff_roundtrips"],
            _bench_handoff(FACTORIES["linked"], sizes["handoff_roundtrips"], repeats),
        )
    finally:
        obs.disable()

    fast = series["immediate_check"]["linked"]["ops_per_sec"]
    locked = series["immediate_check"]["linked_locked"]["ops_per_sec"]
    spin = series["handoff_pingpong"]["linked_spin"]["ops_per_sec"]
    default = series["handoff_pingpong"]["linked"]["ops_per_sec"]
    subscription = series["multiwait_join"]["subscription"]["ops_per_sec"]
    sequential = series["multiwait_join"]["sequential"]["ops_per_sec"]
    obs_series = series["obs_overhead"]
    imm_off = obs_series["immediate_disabled"]["ops_per_sec"]
    imm_on = obs_series["immediate_enabled"]["ops_per_sec"]
    hand_off = obs_series["handoff_disabled"]["ops_per_sec"]
    hand_on = obs_series["handoff_enabled"]["ops_per_sec"]
    return {
        "bench": "counter_ops",
        "schema": SCHEMA,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **host_metadata(),
        "config": sizes,
        "series": series,
        "derived": {
            "immediate_check_fast_path_speedup": fast / locked if locked else float("inf"),
            # ≈ 1 on serial hosts (SPIN_THEN_PARK's budget degrades to
            # zero there — see WaitPolicy.park_on_serial_hosts), > 1
            # expected on free-threaded multi-CPU hosts.
            "handoff_spin_vs_default": spin / default if default else float("inf"),
            # < 1 in this one-shot-join shape (see module docstring) —
            # the reason check_all stays sequential.
            "multiwait_subscription_vs_sequential": (
                subscription / sequential if sequential else float("inf")
            ),
            # ~1.0 by construction (no hook on the lock-free fast path);
            # the CI gate pins the disabled series itself against the
            # merge-base at 2%.
            "obs_immediate_enabled_vs_disabled": imm_on / imm_off if imm_off else float("inf"),
            # < 1.0: the honest enabled tax on the park/wake path (events
            # + histogram bumps per suspension).
            "obs_handoff_enabled_vs_disabled": hand_on / hand_off if hand_off else float("inf"),
        },
    }


def git_describe() -> dict[str, object]:
    """Current commit SHA (with a ``-dirty`` marker) for the history key.

    Best-effort: outside a git checkout both fields degrade gracefully.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                capture_output=True, text=True, check=True, timeout=10,
            ).stdout.strip()
        )
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}
    return {"sha": sha, "dirty": dirty}


def append_history(doc: dict, path: str, *, label: str | None = None) -> dict:
    """Append one trajectory point for ``doc`` to the JSONL file at ``path``.

    The entry carries the full result document plus the git SHA it was
    produced at, so ``grep sha BENCH_counter_ops.history.jsonl`` (or any
    JSONL tooling) can reconstruct the per-PR perf trajectory.
    """
    entry = dict(git_describe())
    if label:
        entry["label"] = label
    entry.update(doc)
    with open(path, "a", encoding="utf-8") as fh:
        json.dump(entry, fh, sort_keys=True)
        fh.write("\n")
    return entry


def compare(
    doc: dict,
    baseline: dict,
    *,
    tolerance: float = 0.3,
    overrides: dict[str, float] | None = None,
) -> list[str]:
    """Regression-gate ``doc`` against ``baseline``; return failure messages.

    Checks every implementation of every series in :data:`GATED_SERIES`
    that both documents carry: new ops/sec below ``(1 - tolerance)`` of
    the baseline's is a regression.  ``overrides`` maps a series name to
    its own tolerance — how CI pins ``immediate_check`` (the disabled
    fast path the observability layer must not tax) at 2% while the
    noisier blocking series keep the default.  Raises
    :class:`ValueError` when the documents are not comparable (different
    sizes or quick flags — a faster run with smaller sizes is not a
    speedup).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    overrides = overrides or {}
    for series_name, value in overrides.items():
        if not 0 <= value < 1:
            raise ValueError(f"tolerance for {series_name} must be in [0, 1), got {value}")
    for key in ("bench", "quick", "config"):
        if doc.get(key) != baseline.get(key):
            raise ValueError(
                f"result and baseline are not comparable: {key} differs "
                f"({doc.get(key)!r} vs {baseline.get(key)!r})"
            )
    failures = []
    for series_name in GATED_SERIES:
        new_series = doc.get("series", {}).get(series_name, {})
        old_series = baseline.get("series", {}).get(series_name, {})
        series_tolerance = overrides.get(series_name, tolerance)
        for impl in sorted(set(new_series) & set(old_series)):
            new_ops = new_series[impl]["ops_per_sec"]
            old_ops = old_series[impl]["ops_per_sec"]
            floor = old_ops * (1.0 - series_tolerance)
            if new_ops < floor:
                failures.append(
                    f"{series_name}/{impl}: {new_ops:,.0f} ops/s is "
                    f"{1 - new_ops / old_ops:.0%} below baseline "
                    f"{old_ops:,.0f} (tolerance {series_tolerance:.0%})"
                )
    return failures


def render(doc: dict) -> str:
    """A human-readable summary of one result document."""
    lines = []
    for series_name, entries in doc["series"].items():
        table = Table(
            f"counter_ops/{series_name} (ops/sec)",
            ["implementation", "ops/sec", "mean s"],
        )
        for impl, entry in entries.items():
            table.add_row(impl, entry["ops_per_sec"], entry["mean_s"])
        lines.append(table.render())
    speedup = doc["derived"]["immediate_check_fast_path_speedup"]
    lines.append(f"immediate-check fast path vs locked seed path: {speedup:.2f}x")
    spin = doc["derived"].get("handoff_spin_vs_default")
    if spin is not None:
        lines.append(f"handoff spin-then-park vs default policy: {spin:.2f}x")
    join = doc["derived"].get("multiwait_subscription_vs_sequential")
    if join is not None:
        lines.append(f"multiwait subscription vs sequential join: {join:.2f}x")
    obs_imm = doc["derived"].get("obs_immediate_enabled_vs_disabled")
    if obs_imm is not None:
        lines.append(f"obs enabled vs disabled, immediate check: {obs_imm:.2f}x")
    obs_hand = doc["derived"].get("obs_handoff_enabled_vs_disabled")
    if obs_hand is not None:
        lines.append(f"obs enabled vs disabled, handoff ping-pong: {obs_hand:.2f}x")
    return "\n\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.counter_ops", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for a CI smoke run"
    )
    parser.add_argument(
        "--out",
        default="BENCH_counter_ops.json",
        help="where to write the JSON log (default: ./BENCH_counter_ops.json)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_counter_ops.history.jsonl",
        help="JSONL trajectory to append to (default: ./BENCH_counter_ops.history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true", help="skip the trajectory append"
    )
    parser.add_argument(
        "--label", default=None, help="free-form tag recorded in the history entry"
    )
    parser.add_argument(
        "--timestamp",
        default=None,
        help="override the recorded timestamp (e.g. to key a re-run to its PR)",
    )
    parser.add_argument(
        "--compare-to",
        default=None,
        metavar="BASELINE.json",
        help="regression-gate the run against a committed baseline snapshot",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional ops/sec drop for --compare-to (default 0.3)",
    )
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="SERIES=TOL",
        help="per-series tolerance override for --compare-to, e.g. "
        "immediate_check=0.02 (repeatable)",
    )
    args = parser.parse_args(argv)
    overrides: dict[str, float] = {}
    for spec in args.gate:
        series_name, sep, value = spec.partition("=")
        if not sep or not series_name:
            parser.error(f"--gate expects SERIES=TOL, got {spec!r}")
        try:
            overrides[series_name] = float(value)
        except ValueError:
            parser.error(f"--gate tolerance must be a float, got {spec!r}")
    doc = run_counter_ops(quick=args.quick)
    if args.timestamp is not None:
        doc["timestamp"] = args.timestamp
    print(render(doc))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    if not args.no_history:
        append_history(doc, args.history, label=args.label)
        print(f"appended trajectory point to {args.history}")
    if args.compare_to is not None:
        with open(args.compare_to, encoding="utf-8") as fh:
            baseline = json.load(fh)
        try:
            failures = compare(
                doc, baseline, tolerance=args.tolerance, overrides=overrides
            )
        except ValueError as exc:
            # An incomparable baseline (the run legitimately changed the
            # bench config/sizes) is not a regression — report and skip
            # the gate rather than failing on it.
            print(f"regression gate skipped: {exc}", file=sys.stderr)
            return 0
        if failures:
            print(f"\nREGRESSION vs {args.compare_to}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.compare_to} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
