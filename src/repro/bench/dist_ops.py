"""Benchmark the counter fabric: shm scans, process scaling, pipelining.

The distributed layer's perf claims are ratios, and this harness
measures both sides of each in the same run on the same host:

``shm_readonly_check``
    A cross-process ``check`` of an already-true condition on a
    :class:`~repro.dist.ShmCounter` is a read-only memoryview scan — no
    lock, no syscall.  The baseline is the conventional way to share a
    value between Python processes: a ``multiprocessing.Manager``
    proxy, where every read is a pickled round trip to the manager
    process.  Expected: the scan wins by well over an order of
    magnitude (the acceptance floor is 10x).

``shm_increment_scaling``
    Total increment throughput as 1, 2, 4 processes hammer one
    segment.  Each process writes only its own slot, so there is no
    write contention by construction — the series documents how close
    the fabric gets to linear (cache-line sharing between neighbor
    slots is the expected limiter).

``service_pipeline``
    The asyncio counter service driven two ways by one client: the
    pipelined path (plain ``increment()`` pooling into one
    absolute-value frame per flush window, default 1ms) against the
    per-increment-RPC path (one frame, one awaited ack, per call).
    Expected: pipelining wins by the ratio of window to round trip
    (the acceptance floor is 5x at a >=1ms window).

``dist_obs_disabled`` / ``dist_obs_enabled``
    The PR-9 zero-cost-when-off contract, measured on the dist hot
    paths: the shm satisfied-check scan and the pipelined client
    increment, once with observability off and once with tracing +
    metrics on.  The *disabled* series is regression-gated at the same
    2% noise band as ``counter_ops``'s ``immediate_check`` — the guard
    against a hook creeping onto the lock-free scan or the pipelined
    dict-write path.  The *enabled* series is reported (the
    ``obs_enabled_tax`` derived ratios), never gated: the tax is an
    honest number, not a promise.

Results land in ``BENCH_dist_ops.json`` (latest) and
``BENCH_dist_ops.history.jsonl`` (per-SHA trajectory), same layout and
CLI as :mod:`repro.bench.counter_ops`; ``--quick`` shrinks sizes for
the CI smoke run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import sys
import time

from repro.bench.counter_ops import append_history, git_describe
from repro.bench.hostmeta import host_metadata
from repro.bench.tables import Table
from repro.bench.timing import Timing, measure
from repro.dist.client import AsyncCounterClient
from repro.dist.service import CounterService
from repro.dist.shm import ShmCounter

__all__ = ["run_dist_ops", "compare", "main"]

SCHEMA = 1

#: Series whose ops/sec are regression-gated by :func:`compare`.
#: ``dist_obs_enabled`` is deliberately absent: the enabled-mode tax is
#: reported, only the disabled path is a contract.
GATED_SERIES = ("shm_readonly_check", "service_pipeline", "dist_obs_disabled")

_SIZES = {
    "check_ops": 20_000,       # shm scans per sample
    "manager_ops": 1_000,      # proxy reads per sample (each is an RPC)
    "increments_per_proc": 10_000,
    "process_counts": (1, 2, 4),
    "pipelined_ops": 20_000,   # client increments per sample
    "rpc_ops": 500,            # awaited acks per sample
    "repeats": 5,
    "flush_interval": 0.001,   # the >=1ms window of the acceptance bar
}

_QUICK_SIZES = {
    "check_ops": 2_000,
    "manager_ops": 100,
    "increments_per_proc": 1_000,
    "process_counts": (1, 2),
    "pipelined_ops": 2_000,
    "rpc_ops": 50,
    # Samples at quick sizes are sub-millisecond, so the gated series
    # (min-based, see _entry) need enough repeats that at least one
    # sample dodges shared-runner interference.
    "repeats": 5,
    "flush_interval": 0.001,
}


def _entry(timing: Timing, ops: int, *, stat: str = "mean") -> dict:
    # ``stat="min"`` bases ops/sec on the best sample instead of the
    # mean: interference on a shared host only ever ADDS time, so for
    # sub-millisecond samples (the obs on/off pairs at quick sizes) the
    # min is the honest estimate and the mean is hostage to one stolen
    # quantum.  The full sample list is kept either way.
    basis = timing.minimum if stat == "min" else timing.mean
    return {
        "ops": ops,
        "ops_per_sec": ops / basis if basis else float("inf"),
        "mean_s": timing.mean,
        "min_s": timing.minimum,
        "stdev_s": timing.stdev,
        "samples": list(timing.samples),
    }


# --------------------------------------------------------- shm read-only scan


def _measure_shm_scan(sizes: dict) -> Timing:
    ops = sizes["check_ops"]
    with ShmCounter.publish(slots=16) as counter:
        counter.increment(1000)

        def scan() -> None:
            check = counter.check
            for _ in range(ops):
                check(1000)  # already satisfied: pure read-only scan

        return measure(scan, repeats=sizes["repeats"])


def _bench_shm_check(sizes: dict) -> dict:
    shm_timing = _measure_shm_scan(sizes)
    manager_ops = sizes["manager_ops"]
    repeats = sizes["repeats"]
    with multiprocessing.get_context("fork").Manager() as manager:
        shared = manager.Value("l", 1000)

        def proxy_reads() -> None:
            for _ in range(manager_ops):
                if shared.value < 1000:  # pragma: no cover - never true
                    raise AssertionError("proxy value regressed")

        manager_timing = measure(proxy_reads, repeats=repeats)

    # Gated series (see GATED_SERIES): min-based, like the obs pairs.
    return {
        "shm": _entry(shm_timing, sizes["check_ops"], stat="min"),
        "manager_proxy": _entry(manager_timing, manager_ops, stat="min"),
    }


# ------------------------------------------------------- increment scaling


def _scaling_worker(name: str, count: int, barrier) -> None:
    with ShmCounter.attach(name) as counter:
        barrier.wait()
        increment = counter.increment
        for _ in range(count):
            increment()


def _bench_shm_scaling(sizes: dict) -> dict:
    per_proc = sizes["increments_per_proc"]
    ctx = multiprocessing.get_context("fork")
    series = {}
    for nprocs in sizes["process_counts"]:
        samples = []
        for _ in range(max(2, sizes["repeats"] - 2)):
            with ShmCounter.publish(slots=nprocs + 1) as counter:
                barrier = ctx.Barrier(nprocs + 1)
                workers = [
                    ctx.Process(
                        target=_scaling_worker,
                        args=(counter.name, per_proc, barrier),
                    )
                    for _ in range(nprocs)
                ]
                for worker in workers:
                    worker.start()
                barrier.wait()  # all attached and ready: time only the work
                start = time.perf_counter()
                counter.check(nprocs * per_proc, timeout=120)
                samples.append(time.perf_counter() - start)
                for worker in workers:
                    worker.join(30)
                    if worker.exitcode != 0:
                        raise RuntimeError(
                            f"scaling worker exited {worker.exitcode}"
                        )
        series[f"{nprocs}proc"] = _entry(
            Timing(samples=tuple(samples)), nprocs * per_proc
        )
    return series


# ------------------------------------------------------- service pipelining


async def _service_samples(sizes: dict) -> tuple[list[float], list[float]]:
    pipelined_ops = sizes["pipelined_ops"]
    rpc_ops = sizes["rpc_ops"]
    repeats = sizes["repeats"]
    pipelined, rpc = [], []
    async with CounterService(node_id="bench") as service:
        client = await AsyncCounterClient.connect(
            *service.address,
            source="bench",
            flush_interval=sizes["flush_interval"],
        )
        try:
            for rep in range(repeats + 1):  # +1 warmup
                start = time.perf_counter()
                for _ in range(pipelined_ops):
                    client.increment("pipelined")
                await client.flush()
                elapsed = time.perf_counter() - start
                if rep:
                    pipelined.append(elapsed)
            for rep in range(repeats + 1):
                start = time.perf_counter()
                for _ in range(rpc_ops):
                    await client.increment_rpc("rpc")
                elapsed = time.perf_counter() - start
                if rep:
                    rpc.append(elapsed)
        finally:
            await client.close()
    return pipelined, rpc


def _bench_service(sizes: dict) -> dict:
    pipelined, rpc = asyncio.run(_service_samples(sizes))
    # Gated series (see GATED_SERIES): min-based, like the obs pairs.
    return {
        "pipelined": _entry(
            Timing(samples=tuple(pipelined)), sizes["pipelined_ops"], stat="min"
        ),
        "per_increment_rpc": _entry(
            Timing(samples=tuple(rpc)), sizes["rpc_ops"], stat="min"
        ),
    }


# ------------------------------------------------- observability overhead


def _paired_shm_samples(sizes: dict) -> tuple[list[float], list[float]]:
    import repro.obs as obs

    ops = sizes["check_ops"]
    off: list[float] = []
    on: list[float] = []
    obs.disable()
    with ShmCounter.publish(slots=16) as counter:
        counter.increment(1000)
        check = counter.check

        def one() -> float:
            start = time.perf_counter()
            for _ in range(ops):
                check(1000)  # already satisfied: pure read-only scan
            return time.perf_counter() - start

        try:
            for _ in range(3):  # warmup, discarded (clock/cache ramp)
                one()
            for _ in range(sizes["repeats"]):
                obs.disable()
                off.append(one())
                obs.enable()
                on.append(one())
        finally:
            obs.disable()
    return off, on


async def _paired_pipelined_samples(
    sizes: dict,
) -> tuple[list[float], list[float]]:
    import repro.obs as obs

    ops = sizes["pipelined_ops"]
    off: list[float] = []
    on: list[float] = []
    obs.disable()
    async with CounterService(node_id="bench-obs") as service:
        client = await AsyncCounterClient.connect(
            *service.address,
            source="bench",
            flush_interval=sizes["flush_interval"],
        )

        async def one() -> float:
            start = time.perf_counter()
            for _ in range(ops):
                client.increment("pipelined")
            await client.flush()
            return time.perf_counter() - start

        try:
            for _ in range(3):  # warmup, discarded (clock/cache ramp)
                await one()
            for _ in range(sizes["repeats"]):
                obs.disable()
                off.append(await one())
                obs.enable()
                on.append(await one())
        finally:
            obs.disable()
            await client.close()
    return off, on


def _bench_obs_overhead(sizes: dict) -> tuple[dict, dict]:
    """The dist hot paths with observability off vs on, sampled paired.

    Each repeat takes one disabled sample and one enabled sample
    back-to-back on the same shm segment / service session, so slow
    environmental drift (CPU clock ramp, a noisy neighbour on a shared
    runner) lands on both series equally instead of making whichever
    pass ran second look faster.  A discarded warmup absorbs the
    one-time costs (first segment map, loop startup); everything exits
    through ``obs.disable()`` so a failed sample can never leak a
    process-global enable into later series.
    """
    shm_off, shm_on = _paired_shm_samples(sizes)
    pipe_off, pipe_on = asyncio.run(_paired_pipelined_samples(sizes))
    disabled = {
        "shm_check": _entry(
            Timing(samples=tuple(shm_off)), sizes["check_ops"], stat="min"
        ),
        "pipelined_inc": _entry(
            Timing(samples=tuple(pipe_off)), sizes["pipelined_ops"], stat="min"
        ),
    }
    enabled = {
        "shm_check": _entry(
            Timing(samples=tuple(shm_on)), sizes["check_ops"], stat="min"
        ),
        "pipelined_inc": _entry(
            Timing(samples=tuple(pipe_on)), sizes["pipelined_ops"], stat="min"
        ),
    }
    return disabled, enabled


# ----------------------------------------------------------------- harness


def run_dist_ops(*, quick: bool = False) -> dict:
    """Run every series; returns the result document."""
    sizes = dict(_QUICK_SIZES if quick else _SIZES)
    obs_disabled, obs_enabled = _bench_obs_overhead(sizes)
    series = {
        "shm_readonly_check": _bench_shm_check(sizes),
        "shm_increment_scaling": _bench_shm_scaling(sizes),
        "service_pipeline": _bench_service(sizes),
        "dist_obs_disabled": obs_disabled,
        "dist_obs_enabled": obs_enabled,
    }
    check = series["shm_readonly_check"]
    pipeline = series["service_pipeline"]
    scaling = series["shm_increment_scaling"]
    one_proc = scaling.get("1proc", {}).get("ops_per_sec", 0.0)
    sizes["process_counts"] = list(sizes["process_counts"])  # JSON-friendly
    return {
        "bench": "dist_ops",
        "schema": SCHEMA,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **host_metadata(),
        "config": sizes,
        "series": series,
        "derived": {
            # The acceptance bars of ROADMAP item 1: >=10x and >=5x.
            "shm_check_vs_manager_proxy": (
                check["shm"]["ops_per_sec"] / check["manager_proxy"]["ops_per_sec"]
                if check["manager_proxy"]["ops_per_sec"] else float("inf")
            ),
            "pipelined_vs_rpc": (
                pipeline["pipelined"]["ops_per_sec"]
                / pipeline["per_increment_rpc"]["ops_per_sec"]
                if pipeline["per_increment_rpc"]["ops_per_sec"] else float("inf")
            ),
            "scaling_efficiency": {
                name: (entry["ops_per_sec"] / one_proc if one_proc else float("inf"))
                for name, entry in scaling.items()
            },
            # Enabled-mode slowdown per dist hot path (1.0 = free).
            # Reported, never gated — only the disabled path is a
            # contract (see GATED_SERIES).  Both entries are min-based
            # (see _entry), so the ratio compares best-case against
            # best-case and shared-host interference cancels out.
            "obs_enabled_tax": {
                impl: (
                    obs_disabled[impl]["ops_per_sec"]
                    / obs_enabled[impl]["ops_per_sec"]
                    if obs_enabled[impl]["ops_per_sec"] else float("inf")
                )
                for impl in obs_disabled
            },
        },
    }


def compare(
    doc: dict,
    baseline: dict,
    *,
    tolerance: float = 0.3,
    overrides: dict[str, float] | None = None,
) -> list[str]:
    """Regression-gate ``doc`` against ``baseline``; return failure messages.

    Same contract as :func:`repro.bench.counter_ops.compare`, gating
    :data:`GATED_SERIES`.  The scaling series is reported but not gated
    (multi-process wall time on shared CI runners is too noisy to pin).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    overrides = overrides or {}
    for series_name, value in overrides.items():
        if not 0 <= value < 1:
            raise ValueError(f"tolerance for {series_name} must be in [0, 1), got {value}")
    for key in ("bench", "quick", "config"):
        if doc.get(key) != baseline.get(key):
            raise ValueError(
                f"result and baseline are not comparable: {key} differs "
                f"({doc.get(key)!r} vs {baseline.get(key)!r})"
            )
    failures = []
    for series_name in GATED_SERIES:
        new_series = doc.get("series", {}).get(series_name, {})
        old_series = baseline.get("series", {}).get(series_name, {})
        series_tolerance = overrides.get(series_name, tolerance)
        for impl in sorted(set(new_series) & set(old_series)):
            new_ops = new_series[impl]["ops_per_sec"]
            old_ops = old_series[impl]["ops_per_sec"]
            floor = old_ops * (1.0 - series_tolerance)
            if new_ops < floor:
                failures.append(
                    f"{series_name}/{impl}: {new_ops:,.0f} ops/s is "
                    f"{1 - new_ops / old_ops:.0%} below baseline "
                    f"{old_ops:,.0f} (tolerance {series_tolerance:.0%})"
                )
    return failures


def render(doc: dict) -> str:
    """A human-readable summary of one result document."""
    lines = []
    for series_name, entries in doc["series"].items():
        table = Table(
            f"dist_ops/{series_name} (ops/sec)",
            ["implementation", "ops/sec", "mean s"],
        )
        for impl, entry in entries.items():
            table.add_row(impl, entry["ops_per_sec"], entry["mean_s"])
        lines.append(table.render())
    derived = doc["derived"]
    lines.append(
        f"shm read-only check vs Manager proxy: "
        f"{derived['shm_check_vs_manager_proxy']:.1f}x (acceptance floor 10x)"
    )
    lines.append(
        f"pipelined vs per-increment RPC: "
        f"{derived['pipelined_vs_rpc']:.1f}x (acceptance floor 5x)"
    )
    efficiency = ", ".join(
        f"{name}={ratio:.2f}x"
        for name, ratio in sorted(derived["scaling_efficiency"].items())
    )
    lines.append(f"increment scaling vs 1 process: {efficiency}")
    if "obs_enabled_tax" in derived:
        tax = ", ".join(
            f"{impl}={ratio:.3f}x"
            for impl, ratio in sorted(derived["obs_enabled_tax"].items())
        )
        lines.append(
            f"obs enabled-mode tax (disabled/enabled ops, reported not gated): {tax}"
        )
    return "\n\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.dist_ops", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for a CI smoke run"
    )
    parser.add_argument(
        "--out",
        default="BENCH_dist_ops.json",
        help="where to write the JSON log (default: ./BENCH_dist_ops.json)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_dist_ops.history.jsonl",
        help="JSONL trajectory to append to (default: ./BENCH_dist_ops.history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true", help="skip the trajectory append"
    )
    parser.add_argument(
        "--label", default=None, help="free-form tag recorded in the history entry"
    )
    parser.add_argument(
        "--compare-to",
        default=None,
        metavar="BASELINE.json",
        help="regression-gate the run against a committed baseline snapshot",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional ops/sec drop before --compare-to fails",
    )
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="SERIES=TOL",
        help="per-series tolerance override for --compare-to (repeatable)",
    )
    args = parser.parse_args(argv)

    doc = run_dist_ops(quick=args.quick)
    print(render(doc))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    if args.history and not args.no_history:
        append_history(doc, args.history, label=args.label)
        print(f"appended history entry ({git_describe()['sha']}) to {args.history}")

    if args.compare_to:
        overrides = {}
        for item in args.gate:
            series_name, _, tol = item.partition("=")
            overrides[series_name] = float(tol)
        with open(args.compare_to, encoding="utf-8") as fh:
            baseline = json.load(fh)
        try:
            failures = compare(
                doc, baseline, tolerance=args.tolerance, overrides=overrides
            )
        except ValueError as exc:
            print(f"regression gate skipped: {exc}", file=sys.stderr)
            return 0
        if failures:
            print(f"\nREGRESSION vs {args.compare_to}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
