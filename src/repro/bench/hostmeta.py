"""Host metadata stamped into every benchmark result document.

A benchmark number is only interpretable next to the facts that decide
which code paths it exercised.  For this codebase the load-bearing one
is the *effective wait policy*: :data:`~repro.core.waitlist.SERIAL_HOST`
(GIL build, or one CPU) makes counters built with
``park_on_serial_hosts=True`` zero their effective spin budget, so the
same benchmark measures spin-then-park on one host and pure parking on
another.  History comparisons (``append_history`` / ``compare``) are
only meaningful between runs whose ``effective_policy`` blocks agree —
the CI gate runs baseline and candidate on the same runner for exactly
this reason.
"""

from __future__ import annotations

import os
import platform
import sys

from repro.core.waitlist import DEFAULT_WAIT_POLICY, SERIAL_HOST, _gil_enabled

__all__ = ["host_metadata"]


def host_metadata() -> dict:
    """Interpreter, host, and effective-wait-policy facts for a result doc."""
    policy = DEFAULT_WAIT_POLICY
    serial_degraded = policy.park_on_serial_hosts and SERIAL_HOST
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "gil_enabled": _gil_enabled(),
        "serial_host": SERIAL_HOST,
        "effective_policy": {
            "default": "PARK_ONLY" if policy.spin == 0 else "SPIN_THEN_PARK",
            "spin": policy.spin,
            "park_on_serial_hosts": policy.park_on_serial_hosts,
            # True when SERIAL_HOST zeroed the spin budget: the run
            # measured pure parking even though the policy says spin.
            "serial_degraded_to_park": serial_degraded,
            "effective_spin": 0 if serial_degraded else policy.spin,
        },
    }
