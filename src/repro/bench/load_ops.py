"""Load-ops harness: quota-service admit throughput and capacity table.

The benchmark half of the tail-attribution pipeline.  Runs the
counter-backed rate limiter (:mod:`repro.apps.ratelimit`) under the
open-loop generator (:mod:`repro.obs.load`) and writes
``BENCH_load_ops.json`` so successive PRs accumulate a recorded
trajectory, mirroring :mod:`repro.bench.counter_ops`:

* ``ratelimit_admit`` — obs-disabled ``try_acquire`` on the always-admit
  path (huge limit, one key): the hot decision loop the observability
  layer must not tax.  This is the **gated** series — CI pins it against
  the merge-base at 2%, the same contract the counter fast paths carry.
* ``ratelimit_admit_obs`` — the same loop with observability enabled:
  the honest price of corr stamping + syncpoint seams, recorded but not
  gated (it is allowed to cost).
* ``capacity`` — an offered-rate sweep of open-loop runs against a
  realistically-sized limiter: each step records achieved rate,
  admit rate, and exact p50/p99/p999 latency from intended send time.
  The derived ``capacity_knee`` is the highest offered rate the service
  still tracks (achieved ≥ 90% of offered) — the number the
  EXPERIMENTS capacity table plots.

Every run appends one line to ``BENCH_load_ops.history.jsonl`` (keyed by
git SHA and timestamp) in addition to overwriting the latest snapshot,
and ``--compare-to BASELINE.json`` turns the run into a regression gate.

Usage::

    PYTHONPATH=src python -m repro.bench.load_ops [--quick] [--out PATH]
        [--history PATH | --no-history] [--label TEXT] [--timestamp TS]
        [--compare-to BASELINE.json] [--tolerance 0.3] [--gate SERIES=TOL]

``--quick`` shrinks every size so a CI smoke run finishes in seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps.ratelimit import RateLimiter
from repro.bench.counter_ops import append_history, git_describe
from repro.bench.hostmeta import host_metadata
from repro.bench.tables import Table
from repro.bench.timing import measure
from repro.obs.load import run_load

__all__ = ["run_load_ops", "compare", "main"]

SCHEMA = 1

#: Series the --compare-to regression gate inspects.  Only the
#: obs-disabled admit path is gated: it is the zero-cost-when-off
#: contract extended to the application layer.  The enabled series and
#: the capacity sweep are trajectory data, not gates.
GATED_SERIES = ("ratelimit_admit",)


def _sizes(quick: bool) -> dict:
    if quick:
        return {
            "admit_ops": 2_000,
            "capacity_rates": [40, 120],
            "capacity_duration": 0.4,
            "capacity_limit": 20,
            "capacity_window": 0.25,
            "capacity_keys": 2,
            "capacity_workers": 4,
            "repeats": 2,
        }
    return {
        "admit_ops": 50_000,
        "capacity_rates": [100, 300, 1_000, 3_000],
        "capacity_duration": 2.0,
        "capacity_limit": 200,
        "capacity_window": 0.5,
        "capacity_keys": 4,
        "capacity_workers": 8,
        "repeats": 5,
    }


def _series_entry(ops: int, mean_s: float) -> dict[str, float]:
    return {"ops_per_sec": ops / mean_s if mean_s else float("inf"), "mean_s": mean_s}


def _bench_admit(ops: int, repeats: int) -> float:
    """Hot try_acquire loop on the always-admit path, one key.

    The limit is far above what the loop can consume inside one window,
    so every call takes the admit branch — the decision fast path whose
    obs-disabled cost the CI gate pins.  A fresh limiter per sample
    keeps the marks deque from carrying across repeats.
    """
    r = range(ops)

    def run() -> None:
        limiter = RateLimiter(10 * ops, 60.0, name="bench-admit")
        try:
            try_acquire = limiter.try_acquire
            for _ in r:
                try_acquire("user0")
        finally:
            limiter.close()

    return measure(run, repeats=repeats, warmup=1).mean


def _bench_capacity_step(rate: float, sizes: dict) -> dict:
    """One offered-rate step of the capacity sweep (obs off)."""
    limiter = RateLimiter(
        sizes["capacity_limit"],
        sizes["capacity_window"],
        name="bench-capacity",
        roll_interval=sizes["capacity_window"] / 8,
    )
    try:
        with limiter:  # background roller retires windows during the run
            result = run_load(
                limiter,
                rate=rate,
                duration=sizes["capacity_duration"],
                seed=0,
                keys=tuple(f"user{i}" for i in range(sizes["capacity_keys"])),
                mode="open",
                workers=sizes["capacity_workers"],
                timeout=sizes["capacity_window"],
            )
    finally:
        limiter.close()
    return {
        "offered": rate,
        "achieved": round(result.achieved_rate, 3),
        "requests": len(result.records),
        "admit_rate": round(result.admit_rate, 4),
        "p50": result.percentile(0.50),
        "p99": result.percentile(0.99),
        "p999": result.percentile(0.999),
    }


def run_load_ops(*, quick: bool = False) -> dict:
    """Run every series and return the JSON-ready result document."""
    import repro.obs as obs

    sizes = _sizes(quick)
    repeats = sizes["repeats"]
    series: dict = {}

    obs.disable()  # belt and braces: never inherit ambient enablement
    series["ratelimit_admit"] = {
        "local": _series_entry(
            sizes["admit_ops"], _bench_admit(sizes["admit_ops"], repeats)
        )
    }
    obs.enable()
    try:
        series["ratelimit_admit_obs"] = {
            "local": _series_entry(
                sizes["admit_ops"], _bench_admit(sizes["admit_ops"], repeats)
            )
        }
    finally:
        obs.disable()

    series["capacity"] = [
        _bench_capacity_step(rate, sizes) for rate in sizes["capacity_rates"]
    ]

    admit_off = series["ratelimit_admit"]["local"]["ops_per_sec"]
    admit_on = series["ratelimit_admit_obs"]["local"]["ops_per_sec"]
    knee = None
    for step in series["capacity"]:
        if step["offered"] and step["achieved"] >= 0.9 * step["offered"]:
            knee = step["offered"]
    return {
        "bench": "load_ops",
        "schema": SCHEMA,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **host_metadata(),
        "config": sizes,
        "series": series,
        "derived": {
            # ~1.0 by construction: with obs disabled the admit path has
            # no hooks, only dormant syncpoint seams.
            "admit_obs_enabled_vs_disabled": (
                admit_on / admit_off if admit_off else float("inf")
            ),
            # Highest offered rate the service still tracks (achieved ≥
            # 90% of offered) — None when even the first step saturates.
            "capacity_knee": knee,
        },
    }


def compare(
    doc: dict,
    baseline: dict,
    *,
    tolerance: float = 0.3,
    overrides: dict[str, float] | None = None,
) -> list[str]:
    """Regression-gate ``doc`` against ``baseline``; return failure messages.

    Same contract as :func:`repro.bench.counter_ops.compare`, over this
    bench's :data:`GATED_SERIES`: new ops/sec below ``(1 - tolerance)``
    of the baseline's is a regression, ``overrides`` maps a series name
    to its own tolerance, and incomparable documents (different sizes or
    quick flags) raise :class:`ValueError`.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    overrides = overrides or {}
    for series_name, value in overrides.items():
        if not 0 <= value < 1:
            raise ValueError(f"tolerance for {series_name} must be in [0, 1), got {value}")
    for key in ("bench", "quick", "config"):
        if doc.get(key) != baseline.get(key):
            raise ValueError(
                f"result and baseline are not comparable: {key} differs "
                f"({doc.get(key)!r} vs {baseline.get(key)!r})"
            )
    failures = []
    for series_name in GATED_SERIES:
        new_series = doc.get("series", {}).get(series_name, {})
        old_series = baseline.get("series", {}).get(series_name, {})
        series_tolerance = overrides.get(series_name, tolerance)
        for impl in sorted(set(new_series) & set(old_series)):
            new_ops = new_series[impl]["ops_per_sec"]
            old_ops = old_series[impl]["ops_per_sec"]
            floor = old_ops * (1.0 - series_tolerance)
            if new_ops < floor:
                failures.append(
                    f"{series_name}/{impl}: {new_ops:,.0f} ops/s is "
                    f"{1 - new_ops / old_ops:.0%} below baseline "
                    f"{old_ops:,.0f} (tolerance {series_tolerance:.0%})"
                )
    return failures


def render(doc: dict) -> str:
    """A human-readable summary of one result document."""
    lines = []
    for series_name in ("ratelimit_admit", "ratelimit_admit_obs"):
        table = Table(
            f"load_ops/{series_name} (ops/sec)",
            ["implementation", "ops/sec", "mean s"],
        )
        for impl, entry in doc["series"][series_name].items():
            table.add_row(impl, entry["ops_per_sec"], entry["mean_s"])
        lines.append(table.render())
    capacity = Table(
        "load_ops/capacity (open loop, latency from intended send)",
        ["offered/s", "achieved/s", "admit", "p50 s", "p99 s", "p999 s"],
    )
    for step in doc["series"]["capacity"]:
        capacity.add_row(
            step["offered"], step["achieved"], step["admit_rate"],
            step["p50"], step["p99"], step["p999"],
        )
    lines.append(capacity.render())
    tax = doc["derived"]["admit_obs_enabled_vs_disabled"]
    lines.append(f"admit path obs enabled vs disabled: {tax:.2f}x")
    knee = doc["derived"]["capacity_knee"]
    lines.append(
        f"capacity knee (achieved >= 90% of offered): "
        f"{knee if knee is not None else 'below first step'}"
    )
    return "\n\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.load_ops", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes for a CI smoke run"
    )
    parser.add_argument(
        "--out",
        default="BENCH_load_ops.json",
        help="where to write the JSON log (default: ./BENCH_load_ops.json)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_load_ops.history.jsonl",
        help="JSONL trajectory to append to (default: ./BENCH_load_ops.history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true", help="skip the trajectory append"
    )
    parser.add_argument(
        "--label", default=None, help="free-form tag recorded in the history entry"
    )
    parser.add_argument(
        "--timestamp",
        default=None,
        help="override the recorded timestamp (e.g. to key a re-run to its PR)",
    )
    parser.add_argument(
        "--compare-to",
        default=None,
        metavar="BASELINE.json",
        help="regression-gate the run against a committed baseline snapshot",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional ops/sec drop for --compare-to (default 0.3)",
    )
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="SERIES=TOL",
        help="per-series tolerance override for --compare-to, e.g. "
        "ratelimit_admit=0.02 (repeatable)",
    )
    args = parser.parse_args(argv)
    overrides: dict[str, float] = {}
    for spec in args.gate:
        series_name, sep, value = spec.partition("=")
        if not sep or not series_name:
            parser.error(f"--gate expects SERIES=TOL, got {spec!r}")
        try:
            overrides[series_name] = float(value)
        except ValueError:
            parser.error(f"--gate tolerance must be a float, got {spec!r}")
    doc = run_load_ops(quick=args.quick)
    if args.timestamp is not None:
        doc["timestamp"] = args.timestamp
    print(render(doc))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    if not args.no_history:
        append_history(doc, args.history, label=args.label)
        print(f"appended trajectory point to {args.history}")
    if args.compare_to is not None:
        with open(args.compare_to, encoding="utf-8") as fh:
            baseline = json.load(fh)
        try:
            failures = compare(
                doc, baseline, tolerance=args.tolerance, overrides=overrides
            )
        except ValueError as exc:
            print(f"regression gate skipped: {exc}", file=sys.stderr)
            return 0
        if failures:
            print(f"\nREGRESSION vs {args.compare_to}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.compare_to} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
