"""Plain-text result tables for the benchmark harness.

Every experiment's regenerator prints one of these — the same
rows/series the paper's evaluation discusses — so ``pytest benchmarks/
--benchmark-only -s`` doubles as the EXPERIMENTS.md data source.
"""

from __future__ import annotations

import io
from typing import Sequence

__all__ = ["Table"]


class Table:
    """A fixed-column text table with a title and optional caption."""

    def __init__(self, title: str, columns: Sequence[str], *, caption: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.caption = caption
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are stringified (floats get 3 decimals)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        """The table as aligned monospaced text."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        out.write(f"\n== {self.title} ==\n")
        if self.caption:
            out.write(f"{self.caption}\n")
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        out.write(header + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in self.rows:
            out.write("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """The table as CSV (header + rows)."""
        lines = [",".join(self.columns)]
        lines += [",".join(row) for row in self.rows]
        return "\n".join(lines) + "\n"

    def show(self) -> None:
        """Print the rendered table (benchmarks call this under ``-s``)."""
        print(self.render())

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"<Table {self.title!r} rows={len(self.rows)}>"
