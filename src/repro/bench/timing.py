"""Wall-clock measurement helpers for the real-thread benchmarks.

The guides' first rule — *no optimization without measuring* — applied:
repeated timed runs, summary statistics, and a confidence interval (via
scipy's t distribution when the sample supports one).  Virtual-time
experiments do not need any of this (they are exact); these helpers serve
the E8/E9 synchronization-overhead measurements on real threads.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["Timing", "measure"]


@dataclass(frozen=True, slots=True)
class Timing:
    """Summary of repeated wall-clock measurements (seconds)."""

    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if len(self.samples) > 1 else 0.0

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Two-sided CI for the mean (t distribution; degenerate for n=1)."""
        n = len(self.samples)
        if n < 2:
            return (self.mean, self.mean)
        try:
            from scipy import stats

            half = stats.t.ppf(0.5 + level / 2, n - 1) * self.stdev / math.sqrt(n)
        except ImportError:  # pragma: no cover - scipy is installed here
            half = 1.96 * self.stdev / math.sqrt(n)
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        low, high = self.confidence_interval()
        return f"{self.mean * 1e3:.3f} ms (95% CI [{low * 1e3:.3f}, {high * 1e3:.3f}], n={len(self.samples)})"


def measure(fn: Callable[[], object], *, repeats: int = 5, warmup: int = 1) -> Timing:
    """Time ``fn()`` ``repeats`` times after ``warmup`` unrecorded runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(samples=tuple(samples))
