"""Counter-stress workload generators for the E8 complexity benchmarks.

Section 7 claims storage and per-op cost proportional to the number of
*distinct waiting levels* L, not the number of waiting threads W.  These
helpers arrange W real threads over L distinct levels against any counter
implementation, releasing them with one sweep of increments, and report
the counter's own high-water statistics for verification.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.api import CounterProtocol

__all__ = ["SpreadResult", "spread_waiters"]


@dataclass(frozen=True, slots=True)
class SpreadResult:
    """Outcome of one spread-waiters run."""

    waiters: int
    levels: int
    episodes: int
    max_live_levels: int
    max_live_waiters: int


def spread_waiters(
    counter: CounterProtocol,
    *,
    waiters: int,
    levels: int,
    increment_steps: int = 1,
    episodes: int = 1,
    timeout: float = 30.0,
) -> SpreadResult:
    """Park ``waiters`` threads across ``levels`` distinct levels, release
    all, ``episodes`` times over with one persistent thread pool.

    In episode ``e`` (0-based), waiter ``w`` waits on level
    ``e * levels + (w % levels) + 1``; the main thread waits until every
    waiter is suspended, then raises the counter by ``levels`` in
    ``increment_steps`` equal increments, releasing the whole cohort,
    which immediately re-parks at the next episode's levels.  With
    ``episodes > 1`` the thread-spawn cost (which dominates a single
    park/release cycle wall-clock) is amortized, so the measurement
    isolates the park → release → wake path itself.  Returns the
    counter's high-water level/waiter statistics when the implementation
    exposes them (zeros otherwise).
    """
    if waiters < 1 or levels < 1 or levels > waiters:
        raise ValueError(f"need waiters >= levels >= 1, got {waiters}, {levels}")
    if increment_steps < 1:
        raise ValueError(f"increment_steps must be >= 1, got {increment_steps}")
    if episodes < 1:
        raise ValueError(f"episodes must be >= 1, got {episodes}")
    parked = threading.Semaphore(0)

    def wait(w: int) -> None:
        for episode in range(episodes):
            parked.release()
            counter.check(episode * levels + (w % levels) + 1, timeout=timeout)

    threads = [threading.Thread(target=wait, args=(w,)) for w in range(waiters)]
    for thread in threads:
        thread.start()
    for episode in range(episodes):
        for _ in range(waiters):
            parked.acquire()
        # Parked means "about to check"; give the checks a moment to
        # suspend.  Correctness does not depend on this (checks of
        # already-passed levels return immediately); only the high-water
        # stats — and the fairness of measuring the *wakeup* path rather
        # than fast-path returns — do.
        settle = 2.0 if timeout is None else min(timeout, 2.0)
        settle_deadline = time.monotonic() + settle
        while (
            _suspended_below(counter) < waiters
            and time.monotonic() < settle_deadline
        ):
            time.sleep(0)
        base, remainder = divmod(levels, increment_steps)
        for step in range(increment_steps):
            counter.increment(base + (1 if step < remainder else 0))
    for thread in threads:
        thread.join()
    stats = getattr(counter, "stats", None)
    return SpreadResult(
        waiters=waiters,
        levels=levels,
        episodes=episodes,
        max_live_levels=getattr(stats, "max_live_levels", 0),
        max_live_waiters=getattr(stats, "max_live_waiters", 0),
    )


def _suspended_below(counter: CounterProtocol) -> int:
    snapshot = getattr(counter, "snapshot", None)
    if snapshot is None:
        return 1 << 30  # cannot observe; skip the settle loop
    return snapshot().total_waiters
