"""Core package: the paper's contribution — monotonic counters.

Public surface:

* :class:`~repro.core.counter.MonotonicCounter` (alias ``Counter``) — the
  canonical implementation (§7: lock + ordered list of per-level condition
  variables).
* :class:`~repro.core.counter.BroadcastCounter` — naive single-queue
  baseline for ablation.
* :class:`~repro.core.sharded.ShardedCounter` — striped-increment variant
  for increment-heavy many-producer workloads.
* :class:`~repro.core.api.CounterProtocol` / ``AbstractCounter`` — the
  structural contract shared with the simulator and instrumented variants.
* Snapshots (:class:`~repro.core.snapshot.CounterSnapshot`) and stats
  (:class:`~repro.core.stats.CounterStats`) for observation.
* The error hierarchy under :class:`~repro.core.errors.CounterError`.
"""

from repro.core.api import AbstractCounter, CounterProtocol
from repro.core.counter import (
    BroadcastCounter,
    Counter,
    CounterSubscription,
    MonotonicCounter,
)
from repro.core.errors import (
    CheckTimeout,
    CounterError,
    CounterOverflowError,
    CounterValueError,
    ResetConcurrencyError,
)
from repro.core.multiwait import MultiWait, barrier_levels, check_all, checkpoint
from repro.core.sharded import ShardedCounter, ShardSnapshot
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.stats import NOOP_STATS, CounterStats, NoopStats
from repro.core.waitlist import DEFAULT_WAIT_POLICY, PARK_ONLY, SPIN_THEN_PARK, WaitPolicy

__all__ = [
    "AbstractCounter",
    "CounterProtocol",
    "MonotonicCounter",
    "BroadcastCounter",
    "ShardedCounter",
    "ShardSnapshot",
    "Counter",
    "CounterError",
    "CounterValueError",
    "CheckTimeout",
    "ResetConcurrencyError",
    "CounterOverflowError",
    "CounterSnapshot",
    "WaitNodeSnapshot",
    "CounterStats",
    "NoopStats",
    "NOOP_STATS",
    "MultiWait",
    "CounterSubscription",
    "WaitPolicy",
    "DEFAULT_WAIT_POLICY",
    "PARK_ONLY",
    "SPIN_THEN_PARK",
    "check_all",
    "checkpoint",
    "barrier_levels",
]
