"""The abstract counter interface.

A monotonic counter, per §2 of the paper, is anything with a nonnegative
integer ``value`` (initially 0), an atomic ``increment(amount)``, and a
blocking ``check(level)`` that suspends until ``value >= level``.  This
module pins that contract down as a :class:`typing.Protocol` plus an ABC so
that the real-thread implementations (:mod:`repro.core.counter`), the
simulator implementation (:mod:`repro.simthread`), and the instrumented
implementation (:mod:`repro.determinism`) are interchangeable in patterns
and applications.
"""

from __future__ import annotations

import abc
from typing import Protocol, runtime_checkable

__all__ = ["CounterProtocol", "AbstractCounter", "ShardedCounter"]


def __getattr__(name: str):
    # Re-exported lazily: sharded.py imports counter.py, which imports this
    # module, so an eager import here would be circular.
    if name == "ShardedCounter":
        from repro.core.sharded import ShardedCounter

        return ShardedCounter
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@runtime_checkable
class CounterProtocol(Protocol):
    """Structural type for counter-like objects.

    Anything offering ``value``, ``increment`` and ``check`` with these
    signatures can drive the pattern library in :mod:`repro.patterns`.
    """

    @property
    def value(self) -> int: ...

    def increment(self, amount: int = 1) -> int: ...

    def check(self, level: int, timeout: float | None = None) -> None: ...


class AbstractCounter(abc.ABC):
    """ABC with the shared contract documentation for concrete counters.

    Concrete subclasses must make ``increment`` atomic and ``check``
    race-free: a ``check(level)`` that starts after the counter has ever
    reached ``level`` must return without suspending, and one that suspends
    must be woken by the increment that first makes ``value >= level``.
    Monotonicity (no decrement anywhere) is what makes this achievable
    without a race window.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def value(self) -> int:
        """Current counter value.  Diagnostic only — never branch on it."""

    @abc.abstractmethod
    def increment(self, amount: int = 1) -> int:
        """Atomically add ``amount`` (>= 0) and return the new value.

        Wakes every thread suspended on a level that the new value reaches.
        """

    @abc.abstractmethod
    def check(self, level: int, timeout: float | None = None) -> None:
        """Block until ``value >= level``.

        ``timeout`` (seconds) is a practical extension over the paper's
        interface; expiry raises :class:`repro.core.errors.CheckTimeout`
        and leaves the counter unperturbed.
        """

    def __enter__(self) -> "AbstractCounter":  # convenience for `with` reuse
        return self

    def __exit__(self, *exc: object) -> None:
        return None
