"""Monotonic counter implementations over locks and condition variables.

This is the paper's §7 implementation, transliterated to
``threading.Lock`` / ``threading.Condition``:

* one mutual-exclusion lock per counter,
* a dynamically-varying ordered list of wait nodes, one node per distinct
  level on which at least one thread is suspended,
* each node owning its own condition variable (sharing the counter lock),
  a waiter count, and a *set* flag.

``check(level)`` with ``level <= value`` returns immediately — by default
from a lock-free read of the value, sound because the enabling condition
is *stable* (the value never decreases, so a stale satisfied read can
never be wrong later).  Otherwise it finds-or-inserts the node for
``level``, bumps its count, and waits on the node's condition.  ``increment(amount)`` bumps the value, unlinks every
node whose level the new value reaches, sets each node's flag and wakes all
its waiters.  The last waiter to leave a node "deallocates" it (drops the
final reference).  Storage and per-op time are O(L) in the number of
distinct waiting levels, never O(total waiters).

Three classes are exported:

* :class:`MonotonicCounter` — the canonical counter; pluggable waitlist
  strategy (``"linked"`` is the paper-literal list, ``"heap"`` a
  binary-heap variant with identical semantics).
* :class:`BroadcastCounter` — the *naive* baseline: one condition variable
  for everybody, ``notify_all`` on every increment.  Semantically
  equivalent but wakes O(total waiters) threads per increment; it exists so
  benchmark E8 can measure what §7's per-level queues actually buy.
"""

from __future__ import annotations

import threading
import time
from typing import Literal

from repro.core.api import AbstractCounter
from repro.core.errors import CheckTimeout, CounterOverflowError, ResetConcurrencyError
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.stats import NOOP_STATS, CounterStats
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.core.waitlist import HeapWaitList, LinkedWaitList, WaitList, WaitNode

__all__ = ["MonotonicCounter", "BroadcastCounter", "Counter"]

WaitListStrategy = Literal["linked", "heap"]


class MonotonicCounter(AbstractCounter):
    """The monotonic counter of Thornley & Chandy (IPPS 2000).

    Example
    -------
    >>> from repro.core.counter import MonotonicCounter
    >>> c = MonotonicCounter()
    >>> c.increment(3)
    3
    >>> c.check(2)   # 3 >= 2: returns immediately
    >>> c.value
    3

    Parameters
    ----------
    strategy:
        ``"linked"`` (default) uses the paper's ordered linked list of wait
        nodes; ``"heap"`` uses a binary heap.  Identical semantics.
    max_value:
        Optional upper bound on the value (mirrors the paper's
        ``unsigned int``); exceeding it raises
        :class:`~repro.core.errors.CounterOverflowError` and leaves the
        value unchanged.
    name:
        Optional label used in ``repr`` and error messages.
    stats:
        ``False`` (default) carries the shared
        :data:`~repro.core.stats.NOOP_STATS` null object and pays zero
        bookkeeping; ``True`` keeps full
        :class:`~repro.core.stats.CounterStats` tallies (benchmarks,
        tests).
    fast_path:
        ``True`` (default) lets an already-satisfied ``check`` return from
        an unsynchronized read of the value without ever touching the
        lock.  ``False`` forces every ``check`` through the lock — the
        pre-optimization behavior, kept selectable so the benchmark
        harness can measure what the fast path buys.
    """

    __slots__ = (
        "_lock",
        "_value",
        "_waiters",
        "_draining",
        "_max_value",
        "_name",
        "_stats_on",
        "_fast_path",
        "_live_levels",
        "_live_waiters",
        "stats",
    )

    def __init__(
        self,
        *,
        strategy: WaitListStrategy = "linked",
        max_value: int | None = None,
        name: str | None = None,
        stats: bool = False,
        fast_path: bool = True,
    ) -> None:
        self._lock = threading.Lock()
        self._value = 0
        # Nodes released by an increment whose waiters have not all resumed
        # yet — the "set" nodes of Figure 2 (e)/(f).  Kept only so that
        # snapshots can reproduce the figure; the last waiter out drops the
        # node (the paper's deallocation point).  Keyed by node identity so
        # removal is O(1) instead of an O(n) list scan.
        self._draining: dict[int, WaitNode] = {}
        if strategy == "linked":
            self._waiters: WaitList = LinkedWaitList(self._lock)
        elif strategy == "heap":
            self._waiters = HeapWaitList(self._lock)
        else:
            raise ValueError(f"unknown waitlist strategy: {strategy!r}")
        if max_value is not None and (not isinstance(max_value, int) or max_value < 0):
            raise ValueError(f"max_value must be a nonnegative int or None, got {max_value!r}")
        self._max_value = max_value
        self._name = name
        self._fast_path = bool(fast_path)
        # Live-level / live-waiter counts, maintained incrementally so the
        # suspend path's high-water bookkeeping is O(1) instead of the
        # former O(L) ``len(waiters)`` / ``sum(node.count ...)`` scans.
        self._live_levels = 0
        self._live_waiters = 0
        self._stats_on = bool(stats)
        #: Lifetime operation statistics (:class:`repro.core.stats.CounterStats`
        #: when ``stats=True``, else the shared all-zero null object).
        self.stats = CounterStats() if stats else NOOP_STATS

    # ------------------------------------------------------------------ API

    @property
    def value(self) -> int:
        """Current value.  Diagnostic only — synchronize with ``check``."""
        with self._lock:
            return self._value

    def increment(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and wake all newly-satisfied waiters."""
        amount = validate_amount(amount)
        with self._lock:
            new_value = self._value + amount
            if self._max_value is not None and new_value > self._max_value:
                raise CounterOverflowError(
                    f"{self!r}: increment({amount}) would exceed max_value={self._max_value}"
                )
            self._value = new_value
            if self._stats_on:
                self.stats.increments += 1
            # Uncontended fast path: with no live waiting level the release
            # scan cannot find anything, so skip it entirely.
            if amount and self._live_levels:
                for node in self._waiters.release_through(new_value):
                    self._live_levels -= 1
                    self._live_waiters -= node.count
                    if self._stats_on:
                        self.stats.nodes_released += 1
                        self.stats.threads_woken += node.count
                    node.signal()
                    if node.count:
                        self._draining[id(node)] = node
            return new_value

    def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend the calling thread until ``value >= level``."""
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        # Lock-free fast path.  Soundness rests on stability (§6): the value
        # only ever increases (there is no decrement, and reset() contractually
        # requires quiescence), and every write happens before the lock is
        # released.  So if this *unsynchronized, possibly stale* read already
        # shows value >= level, the condition held at some earlier moment and
        # — being stable — holds now and forever: returning without the lock
        # is safe.  A stale read can only err in the other direction, sending
        # us to the locked slow path, which re-tests under the lock.
        if self._fast_path and self._value >= level:
            if self._stats_on:
                # Racy bump by design: losing an occasional immediate-check
                # tally is preferable to re-serializing the fast path.
                self.stats.immediate_checks += 1
            return
        with self._lock:
            if self._value >= level:
                if self._stats_on:
                    self.stats.immediate_checks += 1
                return
            node = self._waiters.find_or_insert(level)
            if node.count == 0 and not node.signaled:
                self._live_levels += 1
                if self._stats_on:
                    self.stats.nodes_created += 1
            node.count += 1
            self._live_waiters += 1
            if self._stats_on:
                self.stats.suspended_checks += 1
                self.stats.note_levels(self._live_levels, self._live_waiters)
            try:
                if timeout is None:
                    while not node.signaled:
                        node.condition.wait()
                else:
                    deadline = time.monotonic() + timeout
                    while not node.signaled:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not node.condition.wait(remaining):
                            if node.signaled:
                                break
                            if self._stats_on:
                                self.stats.timeouts += 1
                            raise CheckTimeout(
                                f"{self!r}: check({level}) timed out after {timeout}s "
                                f"(value={self._value})"
                            )
            finally:
                node.count -= 1
                if node.signaled:
                    # Released by an increment, which already removed the
                    # node (and its waiters) from the live tallies.
                    if node.count == 0:
                        # Last waiter out of a released node deallocates it
                        # (Figure 2 (f) -> (g)).
                        self._draining.pop(id(node), None)
                else:
                    # Timed out (or interrupted) while still parked.
                    self._live_waiters -= 1
                    if node.count == 0 and self._waiters.discard_if_empty(node):
                        # Reclaimed the level's node so storage stays
                        # proportional to live levels.
                        self._live_levels -= 1

    def reset(self) -> None:
        """Reset the value to zero for reuse between algorithm phases.

        Per the paper's contract, ``reset`` must never run concurrently
        with other operations on the same counter; a reset while threads
        are suspended in ``check`` is detected and refused.
        """
        with self._lock:
            if len(self._waiters) != 0 or self._draining:
                raise ResetConcurrencyError(
                    f"{self!r}: reset() with {len(self._waiters)} waiting level(s) "
                    f"and {len(self._draining)} draining node(s); reset must not "
                    "be concurrent with other counter operations"
                )
            self._value = 0

    # -------------------------------------------------------- introspection

    def snapshot(self) -> CounterSnapshot:
        """Freeze value + wait-node chain (reproduces Figure 2 states).

        Includes *set* nodes whose woken waiters have not all resumed yet
        (Figure 2 (e)/(f)), ordered by level ahead of the live waiting
        list, which never overlaps them.
        """
        with self._lock:
            draining = sorted(self._draining.values(), key=lambda node: node.level)
            return CounterSnapshot(
                value=self._value,
                nodes=tuple(node.snapshot() for node in draining)
                + tuple(node.snapshot() for node in self._waiters),
            )

    @property
    def waiting_levels(self) -> tuple[int, ...]:
        """Distinct levels with suspended threads, ascending."""
        return self.snapshot().waiting_levels

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<MonotonicCounter{label} value={self._value}>"


class BroadcastCounter(AbstractCounter):
    """Naive counter: one shared condition variable, broadcast on increment.

    Semantically a monotonic counter, but every increment wakes **every**
    waiting thread so each can re-test its own level — O(total waiters)
    wakeups against the paper implementation's O(released waiters).  Kept
    as the ablation baseline for benchmark E8 and as the simplest-possible
    reference implementation for differential testing.
    """

    __slots__ = ("_cond", "_value", "_max_value", "_name", "_waiting", "_stats_on", "stats")

    def __init__(
        self,
        *,
        max_value: int | None = None,
        name: str | None = None,
        stats: bool = False,
    ) -> None:
        self._cond = threading.Condition()
        self._value = 0
        self._max_value = max_value
        self._name = name
        self._waiting = 0
        self._stats_on = bool(stats)
        self.stats = CounterStats() if stats else NOOP_STATS

    @property
    def value(self) -> int:
        with self._cond:
            return self._value

    def increment(self, amount: int = 1) -> int:
        amount = validate_amount(amount)
        with self._cond:
            new_value = self._value + amount
            if self._max_value is not None and new_value > self._max_value:
                raise CounterOverflowError(
                    f"{self!r}: increment({amount}) would exceed max_value={self._max_value}"
                )
            self._value = new_value
            if self._stats_on:
                self.stats.increments += 1
            if amount and self._waiting:
                if self._stats_on:
                    self.stats.threads_woken += self._waiting
                self._cond.notify_all()
            return new_value

    def check(self, level: int, timeout: float | None = None) -> None:
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        with self._cond:
            if self._value >= level:
                if self._stats_on:
                    self.stats.immediate_checks += 1
                return
            self._waiting += 1
            if self._stats_on:
                self.stats.suspended_checks += 1
                self.stats.note_levels(1, self._waiting)
            try:
                if timeout is None:
                    while self._value < level:
                        self._cond.wait()
                else:
                    deadline = time.monotonic() + timeout
                    while self._value < level:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if self._value >= level:
                                break
                            if self._stats_on:
                                self.stats.timeouts += 1
                            raise CheckTimeout(
                                f"{self!r}: check({level}) timed out after {timeout}s "
                                f"(value={self._value})"
                            )
            finally:
                self._waiting -= 1

    def reset(self) -> None:
        with self._cond:
            if self._waiting:
                raise ResetConcurrencyError(
                    f"{self!r}: reset() with {self._waiting} waiting thread(s)"
                )
            self._value = 0

    def snapshot(self) -> CounterSnapshot:
        # The broadcast counter has a single anonymous queue; we surface it
        # as one pseudo-node at the *smallest* level anyone could be waiting
        # for (unknown), reported as -1-free structure: no per-level info.
        with self._cond:
            nodes = (
                (WaitNodeSnapshot(level=self._value + 1, count=self._waiting),)
                if self._waiting
                else ()
            )
            return CounterSnapshot(value=self._value, nodes=nodes)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<BroadcastCounter{label} value={self._value}>"


#: Alias matching the paper's class name (``class Counter { ... }``, §2).
Counter = MonotonicCounter
