"""Monotonic counter implementations over locks and engine parking slots.

This is the paper's §7 implementation, transliterated to
``threading.Lock`` and the unified wakeup engine
(:mod:`repro.core.engine`):

* one mutual-exclusion lock per counter protecting the value and the
  wait-list structure,
* a dynamically-varying ordered list of wait nodes, one node per distinct
  level on which at least one thread is suspended,
* each node holding the parked threads' **per-thread parking slots**
  (futex-style reusable binary semaphores), a waiter count, and the
  *set* flag of Figure 2.

``check(level)`` with ``level <= value`` returns immediately — by default
from a lock-free read of the value, sound because the enabling condition
is *stable* (the value never decreases, so a stale satisfied read can
never be wrong later).  A check that misses may then *spin* briefly on
the same lock-free read (bounded, adaptive, free-threaded multi-CPU
hosts only by default — see :class:`~repro.core.waitlist.WaitPolicy`)
before it finds-or-inserts the node for ``level``, bumps its count, and
parks on its thread's engine slot (timed waits additionally arm one
entry on the shared timer wheel).  ``increment(amount)`` bumps the
value, unlinks every satisfied node **inside** the counter lock, then
wakes them in one coalesced pass **outside** it: one slot set per
waiter, each woken thread handed its already-satisfied node so it never
re-acquires the counter lock just to re-test.  The last waiter to leave
a node "deallocates" it (drops the final reference).  Storage and
per-op time are O(L) in the number of distinct waiting levels, never
O(total waiters).

Three classes are exported:

* :class:`MonotonicCounter` — the canonical counter; pluggable waitlist
  strategy (``"linked"`` is the paper-literal list, ``"heap"`` a
  binary-heap variant with identical semantics).
* :class:`BroadcastCounter` — the *naive* baseline: one condition variable
  for everybody, ``notify_all`` on every increment.  Semantically
  equivalent but wakes O(total waiters) threads per increment; it exists so
  benchmark E8 can measure what §7's per-level queues actually buy.

plus :class:`CounterSubscription`, the cancellation handle returned by the
``subscribe`` hook that :class:`repro.core.multiwait.MultiWait` builds on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Literal

from repro.core import syncpoints as _sp
from repro.core.api import AbstractCounter
from repro.core.engine import (
    WheelEntry,
    _thread_slots,
    current_slot,
    wheel as _shared_wheel,
)
from repro.obs import hooks as _obs
from repro.obs import registry as _obs_registry
from repro.core.errors import CheckTimeout, CounterOverflowError, ResetConcurrencyError
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.stats import NOOP_STATS, CounterStats
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.core.waitlist import (
    DEFAULT_WAIT_POLICY,
    SERIAL_HOST,
    HeapWaitList,
    LinkedWaitList,
    WaitList,
    WaitNode,
    WaitPolicy,
)

#: Every timed park arms the process-wide timer wheel (one sweeper for
#: all counters); the wheel — and its two hot methods — are bound once
#: so a timed park pays module-global loads, no attribute walks.
_WHEEL = _shared_wheel()
_wheel_add = _WHEEL.add
_wheel_cancel = _WHEEL.cancel

#: Staged parking: a timed ``check`` first parks on its raw slot for at
#: most this many seconds (one C-level timed acquire — the same cost as
#: an untimed park) and only *escalates* onto the wheel if it is still
#: waiting when the grace lapses.  Short-lived timed waits — the common
#: case in handoff-shaped workloads — therefore never pay the wheel's
#: entry allocation, arm, and cancel; lingering waits still get vectored
#: onto the single sweeper so k long timeouts cost one sleeping thread,
#: not k.  Tests shrink this to force the escalation path.
_TIMER_GRACE = 0.02

__all__ = ["MonotonicCounter", "BroadcastCounter", "Counter", "CounterSubscription"]

WaitListStrategy = Literal["linked", "heap"]


class CounterSubscription:
    """Handle for one level-reached notification registered on a counter.

    Returned by ``subscribe``; :meth:`cancel` deregisters the callback if
    it has not fired yet.  Idempotent.  Primarily consumed by
    :class:`repro.core.multiwait.MultiWait`.
    """

    __slots__ = ("_counter", "_node", "_callback", "_cancelled")

    def __init__(
        self, counter: "MonotonicCounter", node: WaitNode, callback: Callable[[], None]
    ) -> None:
        self._counter = counter
        self._node = node
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Deregister the callback (no-op if it already fired)."""
        if self._cancelled:
            return
        self._cancelled = True
        counter = self._counter
        node = self._node
        if _sp.enabled:
            _sp.fire("subscribe.cancel", counter)
        with counter._lock:
            if node.released:
                return  # fired (or firing) — nothing left to remove
            subscribers = node.subscribers
            if subscribers is None:
                return
            try:
                subscribers.remove(self._callback)
            except ValueError:
                return
            if (
                node.count == 0
                and not subscribers
                and counter._waiters.discard_if_empty(node)
            ):
                counter._live_levels -= 1


class MonotonicCounter(AbstractCounter):
    """The monotonic counter of Thornley & Chandy (IPPS 2000).

    Example
    -------
    >>> from repro.core.counter import MonotonicCounter
    >>> c = MonotonicCounter()
    >>> c.increment(3)
    3
    >>> c.check(2)   # 3 >= 2: returns immediately
    >>> c.value
    3

    Parameters
    ----------
    strategy:
        ``"linked"`` (default) uses the paper's ordered linked list of wait
        nodes; ``"heap"`` uses a binary heap.  Identical semantics.
    max_value:
        Optional upper bound on the value (mirrors the paper's
        ``unsigned int``); exceeding it raises
        :class:`~repro.core.errors.CounterOverflowError` and leaves the
        value unchanged.
    name:
        Optional label used in ``repr`` and error messages.
    stats:
        ``False`` (default) carries the shared
        :data:`~repro.core.stats.NOOP_STATS` null object and pays zero
        bookkeeping; ``True`` keeps full
        :class:`~repro.core.stats.CounterStats` tallies (benchmarks,
        tests).
    fast_path:
        ``True`` (default) lets an already-satisfied ``check`` return from
        an unsynchronized read of the value without ever touching the
        lock, and enables the policy's spin phase.  ``False`` forces every
        ``check`` through the lock — the pre-optimization behavior, kept
        selectable so the benchmark harness can measure what the fast
        path buys.
    policy:
        A :class:`~repro.core.waitlist.WaitPolicy` tuning the
        spin-then-park wait loop; defaults to the build-dependent
        :data:`~repro.core.waitlist.DEFAULT_WAIT_POLICY`
        (:data:`~repro.core.waitlist.PARK_ONLY` under the GIL,
        :data:`~repro.core.waitlist.SPIN_THEN_PARK` on free-threaded
        builds).
    """

    __slots__ = (
        "_lock",
        "_lock_acquire",
        "_lock_release",
        "_value",
        "_waiters",
        "_draining",
        "_drain_lock",
        "_max_value",
        "_name",
        "_stats_on",
        "_fast_path",
        "_policy",
        "_spin",
        "_live_levels",
        "_live_waiters",
        # Memoized observability label (repro.obs.registry.label writes it
        # on first use) so enabled-mode emission skips the string format.
        "_obs_label", "_obs_chan",
        "stats",
        # Weakly referenceable so the observability registry (watchdog,
        # dump_state) can track live counters without extending lifetimes.
        "__weakref__",
    )

    def __init__(
        self,
        *,
        strategy: WaitListStrategy = "linked",
        max_value: int | None = None,
        name: str | None = None,
        stats: bool = False,
        fast_path: bool = True,
        policy: WaitPolicy | None = None,
    ) -> None:
        self._lock = threading.Lock()
        # Bound methods of the raw lock for the two hot critical
        # sections (increment, parked check): a direct acquire/release
        # pair costs about a quarter of a ``with`` block, and those two
        # sections run once per operation.  Cold paths keep ``with
        # self._lock:`` for readability.
        self._lock_acquire = self._lock.acquire
        self._lock_release = self._lock.release
        self._value = 0
        # Nodes released by an increment whose waiters have not all resumed
        # yet — the "set" nodes of Figure 2 (e)/(f).  Kept only so that
        # snapshots can reproduce the figure; the last waiter out drops the
        # node (the paper's deallocation point).  Guarded by _drain_lock,
        # never the counter lock, so leaving waiters stay off the counter's
        # critical path; increment inserts while holding counter lock ->
        # _drain_lock (that nesting order, never the reverse).
        self._draining: dict[int, WaitNode] = {}
        self._drain_lock = threading.Lock()
        if strategy == "linked":
            self._waiters: WaitList = LinkedWaitList()
        elif strategy == "heap":
            self._waiters = HeapWaitList()
        else:
            raise ValueError(f"unknown waitlist strategy: {strategy!r}")
        if max_value is not None and (not isinstance(max_value, int) or max_value < 0):
            raise ValueError(f"max_value must be a nonnegative int or None, got {max_value!r}")
        self._max_value = max_value
        self._name = name
        self._fast_path = bool(fast_path)
        if policy is None:
            policy = DEFAULT_WAIT_POLICY
        elif not isinstance(policy, WaitPolicy):
            raise TypeError(f"policy must be a WaitPolicy, got {policy!r}")
        self._policy = policy
        # The adaptive spin budget.  Read and written without the lock by
        # design: it is a heuristic, and losing a race on its update can
        # only make a wait spin a little more or less than intended.
        # Policies that opt in (SPIN_THEN_PARK) degrade to park-only on
        # serial hosts, where a spinner can only ever delay the
        # incrementer it is waiting for.
        if policy.park_on_serial_hosts and SERIAL_HOST:
            self._spin = 0
        else:
            self._spin = policy.spin
        # Live-level / live-waiter counts, maintained incrementally so the
        # suspend path's high-water bookkeeping is O(1) instead of the
        # former O(L) ``len(waiters)`` / ``sum(node.count ...)`` scans.
        self._live_levels = 0
        self._live_waiters = 0
        self._stats_on = bool(stats)
        #: Lifetime operation statistics (:class:`repro.core.stats.CounterStats`
        #: when ``stats=True``, else the shared all-zero null object).
        self.stats = CounterStats() if stats else NOOP_STATS
        _obs_registry.register(self)

    # ------------------------------------------------------------------ API

    @property
    def value(self) -> int:
        """Current value.  Diagnostic only — synchronize with ``check``."""
        with self._lock:
            return self._value

    @property
    def policy(self) -> WaitPolicy:
        """The wait policy this counter suspends under."""
        return self._policy

    def increment(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and wake all newly-satisfied waiters.

        The wakeups are *coalesced*: satisfied nodes are unlinked (and the
        tallies settled) inside the counter lock, but the wake sweep —
        one engine-slot set per waiter — runs after the lock is
        dropped, so woken threads and later increments never convoy
        behind it.  No wakeup can be lost to that split: a node is
        marked ``released`` under the counter lock before the lock is
        dropped, and a slot set delivered before the waiter parks is
        consumed by the park itself (semaphore semantics; see
        docs/api.md and docs/engine.md for the full argument).
        """
        # Inline the validator's accept case (an exact nonnegative int,
        # excluding bool) so the overwhelmingly common call pays a type
        # check instead of a function call; anything else goes through
        # the full validator for the real diagnostic.
        if type(amount) is not int or amount < 0:
            amount = validate_amount(amount)
        released: list[WaitNode] | None = None
        # Snapshot the two seam flags once: each read is a module-dict +
        # attribute lookup, and this function consults them up to seven
        # times.  Both flags only flip between operations (test setup,
        # obs enable/disable), never meaningfully mid-call.
        sp_on = _sp.enabled
        obs_on = _obs.enabled
        if sp_on:
            _sp.fire("increment.lock", self)
        self._lock_acquire()
        try:
            new_value = self._value + amount
            if self._max_value is not None and new_value > self._max_value:
                raise CounterOverflowError(
                    f"{self!r}: increment({amount}) would exceed max_value={self._max_value}"
                )
            self._value = new_value
            if self._stats_on:
                self.stats.increments += 1
            # Uncontended fast path: with no live waiting level the release
            # scan cannot find anything, so skip it entirely.
            if amount and self._live_levels:
                released = self._waiters.release_through(new_value)
                if released:
                    if sp_on:
                        _sp.fire("increment.release", self)
                    draining = None
                    stats_on = self._stats_on
                    for node in released:
                        # `released` is the linearization point as seen
                        # under the counter lock (timeout adjudication,
                        # snapshot).  The paper's *set* flag, `signaled`,
                        # and the waiters' slot sets are published ONLY
                        # by signal() below, after this critical section:
                        # a parked thread resumes the moment its slot is
                        # set, so waking it here would let it observe the
                        # release — pop the drain countdown, even run the
                        # last-leaver _draining.pop — before the tallies
                        # and the _draining insert below have settled.
                        node.released = True
                        self._live_levels -= 1
                        self._live_waiters -= node.count
                        if stats_on:
                            self.stats.nodes_released += 1
                            self.stats.threads_woken += node.count
                        if node.count:
                            # Freeze the drain countdown *inside* the
                            # critical section: a timed waiter whose
                            # adjudication sees `released` under this
                            # lock may resume before the out-of-lock
                            # signal pass runs, and it pops from this
                            # list.  After this point node.waiters is
                            # immutable (no registration on a released
                            # node), so the copy is exact.
                            node.countdown = node.waiters[:]
                            if draining is None:
                                draining = [node]
                            else:
                                draining.append(node)
                    if draining:
                        # Must happen before any waiter can observe the
                        # release — guaranteed because waiters observe it
                        # either via signal() (which runs only after this
                        # critical section) or via `released` under the
                        # counter lock — so the last-leaver pop can never
                        # precede the insert.
                        if sp_on:
                            _sp.fire("increment.drain", self)
                        with self._drain_lock:
                            for node in draining:
                                self._draining[id(node)] = node
        finally:
            self._lock_release()
        if released:
            if sp_on:
                _sp.fire("increment.unlock", self)
            obs_ctx = None
            if obs_on:
                # Pre-signal half: one clock() read stamps every node's
                # released_ts (so woken threads can measure the wakeup
                # path) and pre-allocates the event seqs.  Constructing
                # the increment/release Events is deferred past the
                # signal pass below — the handoff window between release
                # decision and notify stays as short as disabled mode's.
                obs_ctx = _obs.on_release_stamp(released)
            # The coalesced wake pass: counter lock long gone, one slot
            # set per waiter ("set N slots"), subscribers fired after.
            for node in released:
                if sp_on:
                    _sp.fire("increment.signal", self)
                if obs_on and node.subscribers:
                    _obs.on_sub_fire(self, node.level, len(node.subscribers),
                                     token=node.token)
                node.signal()
            if obs_ctx is not None:
                _obs.on_increment_released(self, amount, new_value, obs_ctx)
        elif obs_on:
            _obs.on_increment(self, amount, new_value)
        return new_value

    def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend the calling thread until ``value >= level``.

        The wait is *spin-then-park*: after the lock-free fast path
        misses, a bounded number of further lock-free re-reads (the
        policy's spin budget — zero under the default GIL-build policy
        and on serial hosts) run before the thread registers a wait
        node and parks on its per-thread engine slot.
        """
        # Same inline-accept trick as increment(): the fast path below is
        # the hottest statement in the package and must not pay two
        # validator calls to reach it.
        if type(level) is not int or level < 0:
            level = validate_level(level)
        if timeout is not None and (type(timeout) is not float or timeout < 0.0):
            timeout = validate_timeout(timeout)
        deadline: float | None = None
        # Lock-free fast path.  Soundness rests on stability (§6): the value
        # only ever increases (there is no decrement, and reset() contractually
        # requires quiescence), and every write happens before the lock is
        # released.  So if this *unsynchronized, possibly stale* read already
        # shows value >= level, the condition held at some earlier moment and
        # — being stable — holds now and forever: returning without the lock
        # is safe.  A stale read can only err in the other direction, sending
        # us to the spin phase and then the locked slow path, which re-tests
        # under the lock.
        if self._fast_path:
            if self._value >= level:
                if self._stats_on:
                    # Racy bump by design: losing an occasional immediate-check
                    # tally is preferable to re-serializing the fast path.
                    self.stats.immediate_checks += 1
                return
            budget = self._spin
            if budget and timeout != 0.0:
                if timeout is not None:
                    deadline = time.monotonic() + timeout
                if self._spin_wait(level, budget):
                    return
                if _obs.enabled:
                    # Off the spin loop itself — only the fall-through to
                    # the slow path pays the (branch-only) emission.
                    _obs.on_spin_exhausted(self, level, budget)
                if deadline is not None:
                    timeout = deadline - time.monotonic()
                    if timeout < 0.0:
                        timeout = 0.0
        # The engine handle this wait parks on: always the thread's
        # reusable slot — timed waits park on it too (staged parking;
        # see _park), swapping in a claim-guarded WheelEntry only if
        # they outlive the grace.  The thread-local read is inlined
        # (current_slot()'s own fast path); the function is only called
        # to allocate on first use.
        try:
            waiter = _thread_slots.slot
        except AttributeError:
            waiter = current_slot()
        if _sp.enabled:
            _sp.fire("check.lock", self)
        self._lock_acquire()
        try:
            if self._value >= level:
                if self._stats_on:
                    self.stats.immediate_checks += 1
                return
            node = self._waiters.find_or_insert(level)
            if node.count == 0 and not node.subscribers:
                self._live_levels += 1
                if self._stats_on:
                    self.stats.nodes_created += 1
            node.count += 1
            node.waiters.append(waiter)
            self._live_waiters += 1
            if self._stats_on:
                self.stats.suspended_checks += 1
                self.stats.note_levels(self._live_levels, self._live_waiters)
        finally:
            self._lock_release()
        # Counter lock dropped: park on the engine slot.  The release
        # that satisfies this level already holds the waiter handle (it
        # was handed the whole node under the counter lock), so neither
        # side touches the counter lock again on the normal wake path.
        t_parked: float | None = None
        if _obs.enabled:
            # Racy reads of value/levels/waiters: diagnostic payload only.
            # on_park returns the timestamp it stamped on the event, reused
            # as the park time so the slow path reads the clock once here.
            t_parked = _obs.on_park(self, level, self._value, self._live_levels,
                                    self._live_waiters, node.token)
        self._park(node, waiter, level, timeout, deadline, t_parked)

    def _spin_wait(self, level: int, budget: int) -> bool:
        """Bounded lock-free re-reads of the value; True if satisfied."""
        policy = self._policy
        yield_every = policy.yield_every
        countdown = yield_every
        for _ in range(budget):
            if self._value >= level:
                if policy.adaptive:
                    # Reward: the spin avoided a park — spend longer next time.
                    grown = budget << 1
                    self._spin = policy.spin_max if grown > policy.spin_max else grown
                if self._stats_on:
                    self.stats.spin_checks += 1
                return True
            if yield_every:
                countdown -= 1
                if countdown == 0:
                    countdown = yield_every
                    # Yield the GIL so the incrementer we are waiting on
                    # can actually run.
                    time.sleep(0)
        if policy.adaptive:
            shrunk = budget >> 1
            self._spin = policy.spin_min if shrunk < policy.spin_min else shrunk
        return False

    def _park(
        self,
        node: WaitNode,
        waiter,
        level: int,
        timeout: float | None,
        deadline: float | None,
        t_parked: float | None = None,
    ) -> None:
        """Park on the engine until the release sets our slot or a
        timeout verdict is reached.

        ``waiter`` is the handle registered in ``node.waiters`` under
        the counter lock — always the thread's :class:`ParkingSlot`.
        Timed waits park in two stages: first a bounded *grace* wait on
        the slot itself (a single C timed acquire, the same cost as the
        untimed park), during which the release pass is the only
        possible setter; only a wait still parked when the grace lapses
        escalates, swapping its registered handle for a claim-guarded
        :class:`WheelEntry` under the counter lock and arming the
        process-wide wheel for the remainder.  The swap is atomic with
        respect to the release (``release_through`` unlinks nodes under
        the same lock), so at every instant the node holds exactly one
        handle for this waiter and exactly one set is ever delivered to
        the slot per park round (see ``docs/engine.md``).
        """
        if _sp.enabled:
            _sp.fire("park.enter", self)
        if timeout is None:
            slot = waiter
            slot.block()
            # In normal operation the only possible set is the release
            # pass's; the re-check guards against a stray set (e.g. a
            # wait round abandoned to an async exception) being
            # mistaken for it.  signaled is written before the slot
            # set, so the genuine wakeup always passes.
            while not node.signaled:
                slot.block()
            # _finish_wake, inlined: the untimed resume is the hottest
            # wake path in the package and every frame on it is serial
            # handoff latency.  Keep in lockstep with _finish_wake.
            if _obs.enabled:
                _obs.on_wake(self, node, level, t_parked)
            countdown = node.countdown
            countdown.pop()
            if not countdown:
                if _sp.enabled:
                    _sp.fire("park.drain", self)
                self._draining.pop(id(node), None)
            return
        slot = waiter
        if timeout != 0.0:
            # Stage one: park on the raw slot for min(timeout, grace).
            # slot.block is the lock's bound acquire, so this is the
            # untimed park plus a timeout argument — no wheel traffic.
            grace = _TIMER_GRACE
            if slot.block(True, timeout if timeout < grace else grace):
                while not node.signaled:  # stray set; see above
                    slot.block()
                # _finish_wake, inlined — same rationale as the untimed
                # branch: a released timed wait is a hot resume too.
                if _obs.enabled:
                    _obs.on_wake(self, node, level, t_parked)
                countdown = node.countdown
                countdown.pop()
                if not countdown:
                    if _sp.enabled:
                        _sp.fire("park.drain", self)
                    self._draining.pop(id(node), None)
                return
            if timeout >= grace:
                # Stage two: the wait outlived the grace — vector the
                # remainder onto the wheel.  Under the counter lock the
                # release either already happened (fall through to
                # adjudication, which consumes its pending set) or has
                # not started its signal pass for this node, in which
                # case swapping the registered handle for a WheelEntry
                # funnels both future wakers through the entry's claim.
                entry = None
                self._lock_acquire()
                try:
                    if not node.released:
                        now = time.monotonic()
                        if deadline is None:
                            # Anchored at grace expiry rather than at
                            # check() entry: the armed deadline can only
                            # be *later* than the true one, so timeouts
                            # may land late (like any OS timed wait) but
                            # never early.  Spares the hot timed path a
                            # clock read it usually never needs.
                            deadline = now + (timeout - grace)
                        if deadline > now:
                            entry = WheelEntry(slot, deadline)
                            handles = node.waiters
                            handles[handles.index(slot)] = entry
                finally:
                    self._lock_release()
                if entry is not None:
                    _wheel_add(entry)
                    slot.block()
                    while entry.why is None:  # stray set; see above
                        slot.block()
                    if entry.why == "release":
                        _wheel_cancel(entry)
                        # _finish_wake, inlined — as above.
                        if _obs.enabled:
                            _obs.on_wake(self, node, level, t_parked)
                        countdown = node.countdown
                        countdown.pop()
                        if not countdown:
                            if _sp.enabled:
                                _sp.fire("park.drain", self)
                            self._draining.pop(id(node), None)
                        return
                    # The timer won the claim: provisional verdict only.
                    if _sp.enabled:
                        _sp.fire("park.verdict", self)
                    self._adjudicate_timeout(node, entry, level, timeout, t_parked)
                    return
        # Timeout verdict in slot mode: the grace wait expired with the
        # whole budget spent (timeout < grace), the deadline had already
        # lapsed at escalation, an instant probe (timeout == 0.0, also
        # a spin phase that burned the whole budget — the spin
        # fall-through clamps the remainder to exactly 0.0), or the
        # release landed during the grace (adjudication sees it and
        # consumes the pending set).  Never arms the wheel; the verdict
        # is provisional until adjudicated under the counter lock.
        if _sp.enabled:
            _sp.fire("park.verdict", self)
        self._adjudicate_timeout(node, slot, level, timeout, t_parked)

    def _adjudicate_timeout(
        self,
        node: WaitNode,
        entry,
        level: int,
        timeout: float | None,
        t_parked: float | None = None,
    ) -> None:
        """Decide a timeout verdict: genuine timeout or concurrent release.

        ``entry`` is the waiter's registered handle — its raw
        :class:`ParkingSlot` when the verdict came from a slot-mode
        grace wait (or instant probe), its :class:`WheelEntry` when the
        wheel sweeper won the claim.  ``released`` is only ever set
        inside an increment's critical section, so holding the counter
        lock gives a definitive answer — either the increment that
        reaches this level has already run (the check succeeded; no
        timeout) or it has not (genuine timeout; deregister).  A wakeup
        can therefore never be lost *and* a satisfying increment can
        never be reported as a timeout.  Factored out of :meth:`_park`
        as the deterministic seam the scripted race tests drive (they
        inject an increment between the timeout verdict and this
        adjudication).
        """
        if _sp.enabled:
            _sp.fire("park.adjudicate", self)
        expired_value: int | None = None
        with self._lock:
            if not node.released:
                node.count -= 1
                self._live_waiters -= 1
                try:
                    # Deregister the handle too (slot or spent entry):
                    # with the node still unreleased under this lock, no
                    # release can have set our slot, and after removal
                    # none ever will — but leaving the handle would grow
                    # the node's waiter list.
                    node.waiters.remove(entry)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if (
                    node.count == 0
                    and not node.subscribers
                    and self._waiters.discard_if_empty(node)
                ):
                    # Reclaimed the level's node so storage stays
                    # proportional to live levels.
                    self._live_levels -= 1
                if self._stats_on:
                    self.stats.timeouts += 1
                expired_value = self._value
        if expired_value is not None:
            # Genuine timeout, fully deregistered above; the emission and
            # the raise both happen with no lock held.
            if _obs.enabled:
                waited = None if t_parked is None else _obs.clock() - t_parked
                _obs.on_timeout(self, level, expired_value, waited, token=node.token)
            raise CheckTimeout(
                f"{self!r}: check({level}) timed out after {timeout}s "
                f"(value={expired_value})"
            )
        # Released concurrently with the expiry: the check succeeded.
        if type(entry) is not WheelEntry:
            # Slot-mode: no claim stands between us and the release, so
            # its set is banked (or in flight) on our slot — consume it
            # so the slot stays armed for the thread's next park.
            entry.block()
            while not node.signaled:  # stray set; see _park
                entry.block()
        # Wheel-mode needs no consuming: the release lost the entry's
        # claim, so our slot was never set.
        self._finish_wake(node, level, t_parked)

    def _finish_wake(self, node: WaitNode, level: int, t_parked: float | None) -> None:
        """Success-path bookkeeping after a wake (or adjudicated release).

        Lock-free: the countdown list was frozen inside the releasing
        increment's critical section, every resuming waiter pops exactly
        one token (``list.pop`` is atomic), and the popper that empties
        it drops the draining entry (atomic ``dict.pop``; the insert
        happened inside the same critical section, so it can never be
        outrun).  The old path's per-node lock handoff and last-leaver
        ``_drain_lock`` acquisition are both gone.
        """
        if _obs.enabled:
            _obs.on_wake(self, node, level, t_parked)
        countdown = node.countdown
        countdown.pop()
        if not countdown:
            if _sp.enabled:
                _sp.fire("park.drain", self)
            self._draining.pop(id(node), None)

    def subscribe(
        self, level: int, callback: Callable[[], None]
    ) -> CounterSubscription | None:
        """Register ``callback`` to fire once when ``value >= level``.

        Returns ``None`` — without invoking the callback — when the level
        is already satisfied, else a :class:`CounterSubscription` whose
        ``cancel()`` deregisters it.  The callback runs in the
        incrementing thread, outside the counter lock; it must be quick,
        must not raise, and must not call back into this counter.  This
        is the hook :class:`repro.core.multiwait.MultiWait` is built on.
        """
        level = validate_level(level)
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if self._fast_path and self._value >= level:
            return None
        if _sp.enabled:
            _sp.fire("subscribe.lock", self)
        with self._lock:
            if self._value >= level:
                return None
            node = self._waiters.find_or_insert(level)
            if node.count == 0 and not node.subscribers:
                self._live_levels += 1
                if self._stats_on:
                    self.stats.nodes_created += 1
            if node.subscribers is None:
                node.subscribers = []
            node.subscribers.append(callback)
        return CounterSubscription(self, node, callback)

    def reset(self) -> None:
        """Reset the value to zero for reuse between algorithm phases.

        Per the paper's contract, ``reset`` must never run concurrently
        with other operations on the same counter; a reset while threads
        are suspended in ``check`` (or subscriptions are outstanding) is
        detected and refused.
        """
        with self._lock:
            with self._drain_lock:
                draining = len(self._draining)
            if len(self._waiters) != 0 or draining:
                raise ResetConcurrencyError(
                    f"{self!r}: reset() with {len(self._waiters)} waiting level(s) "
                    f"and {draining} draining node(s); reset must not "
                    "be concurrent with other counter operations"
                )
            self._value = 0

    # -------------------------------------------------------- introspection

    def snapshot(self) -> CounterSnapshot:
        """Freeze value + wait-node chain (reproduces Figure 2 states).

        Includes *set* nodes whose woken waiters have not all resumed yet
        (Figure 2 (e)/(f)), ordered by level ahead of the live waiting
        list, which never overlaps them.
        """
        with self._lock:
            with self._drain_lock:
                # Materialize the node list inside the drain lock (which
                # orders us after any in-flight increment's insert), but
                # NOT the snapshots: resuming waiters pop the draining
                # dict lock-free, so iteration must run over a detached
                # list.  A drained node whose last waiter already popped
                # its countdown token is logically deallocated — hide
                # it.  Capture and filter in one pass: the countdown
                # shrinks concurrently, so a node passing an `if` could
                # still be captured empty a moment later.
                nodes = list(self._draining.values())
            draining = sorted(
                (snap for node in nodes if (snap := node.snapshot()).count),
                key=lambda snap: snap.level,
            )
            return CounterSnapshot(
                value=self._value,
                nodes=tuple(draining)
                + tuple(node.snapshot() for node in self._waiters),
            )

    @property
    def waiting_levels(self) -> tuple[int, ...]:
        """Distinct levels with suspended threads, ascending."""
        return self.snapshot().waiting_levels

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<MonotonicCounter{label} value={self._value}>"


class _BroadcastSubscription:
    """Cancellation handle for a :class:`BroadcastCounter` subscription."""

    __slots__ = ("_counter", "_level", "_callback", "_cancelled")

    def __init__(
        self, counter: "BroadcastCounter", level: int, callback: Callable[[], None]
    ) -> None:
        self._counter = counter
        self._level = level
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        counter = self._counter
        with counter._cond:
            callbacks = counter._subs.get(self._level)
            if not callbacks:
                return
            try:
                callbacks.remove(self._callback)
            except ValueError:
                return
            if not callbacks:
                del counter._subs[self._level]


class BroadcastCounter(AbstractCounter):
    """Naive counter: one shared condition variable, broadcast on increment.

    Semantically a monotonic counter, but every increment wakes **every**
    waiting thread so each can re-test its own level — O(total waiters)
    wakeups against the paper implementation's O(released waiters).  Kept
    as the ablation baseline for benchmark E8 and as the simplest-possible
    reference implementation for differential testing.  It does share the
    lock-free satisfied-``check`` fast path (the stability argument is
    implementation-independent) and supports ``subscribe`` so
    :class:`~repro.core.multiwait.MultiWait` can span implementations.
    """

    __slots__ = (
        "_cond",
        "_value",
        "_max_value",
        "_name",
        "_waiting",
        "_subs",
        "_stats_on",
        "_fast_path",
        "_obs_label", "_obs_chan",
        "stats",
        "__weakref__",
    )

    def __init__(
        self,
        *,
        max_value: int | None = None,
        name: str | None = None,
        stats: bool = False,
        fast_path: bool = True,
    ) -> None:
        self._cond = threading.Condition()
        self._value = 0
        self._max_value = max_value
        self._name = name
        self._waiting = 0
        self._subs: dict[int, list[Callable[[], None]]] = {}
        self._stats_on = bool(stats)
        self._fast_path = bool(fast_path)
        self.stats = CounterStats() if stats else NOOP_STATS
        _obs_registry.register(self)

    @property
    def value(self) -> int:
        with self._cond:
            return self._value

    def increment(self, amount: int = 1) -> int:
        amount = validate_amount(amount)
        fired: list[Callable[[], None]] | None = None
        with self._cond:
            new_value = self._value + amount
            if self._max_value is not None and new_value > self._max_value:
                raise CounterOverflowError(
                    f"{self!r}: increment({amount}) would exceed max_value={self._max_value}"
                )
            self._value = new_value
            if self._stats_on:
                self.stats.increments += 1
            if amount:
                if self._waiting:
                    if self._stats_on:
                        self.stats.threads_woken += self._waiting
                    self._cond.notify_all()
                if self._subs:
                    satisfied = [lv for lv in self._subs if lv <= new_value]
                    if satisfied:
                        fired = []
                        for lv in satisfied:
                            fired.extend(self._subs.pop(lv))
        if _obs.enabled:
            _obs.on_increment(self, amount, new_value)
        if fired:
            # Outside the lock, like the per-level counter's wake pass.
            for callback in fired:
                callback()
        return new_value

    def check(self, level: int, timeout: float | None = None) -> None:
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        # Same lock-free satisfied fast path as MonotonicCounter, same
        # stability-based soundness argument (docs/api.md).
        if self._fast_path and self._value >= level:
            if self._stats_on:
                self.stats.immediate_checks += 1
            return
        with self._cond:
            if self._value >= level:
                if self._stats_on:
                    self.stats.immediate_checks += 1
                return
            self._waiting += 1
            if self._stats_on:
                self.stats.suspended_checks += 1
                self.stats.note_levels(1, self._waiting)
            # Obs emissions here run under the single shared condition's
            # lock — unavoidable for this baseline (its whole wait lives
            # inside the lock), and part of why it is the *baseline*.
            t_parked: float | None = None
            if _obs.enabled:
                t_parked = _obs.on_park(self, level, self._value, 1, self._waiting)
            try:
                if timeout is None:
                    while self._value < level:
                        self._cond.wait()
                else:
                    deadline = time.monotonic() + timeout
                    while self._value < level:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if self._value >= level:
                                break
                            if self._stats_on:
                                self.stats.timeouts += 1
                            if _obs.enabled:
                                waited = (
                                    None if t_parked is None else _obs.clock() - t_parked
                                )
                                _obs.on_timeout(self, level, self._value, waited)
                            raise CheckTimeout(
                                f"{self!r}: check({level}) timed out after {timeout}s "
                                f"(value={self._value})"
                            )
                if _obs.enabled:
                    now = _obs.clock()
                    wait_s = None if t_parked is None else now - t_parked
                    _obs.on_unpark(self, level, wait_s, None, ts=now)
            finally:
                self._waiting -= 1

    def subscribe(
        self, level: int, callback: Callable[[], None]
    ) -> _BroadcastSubscription | None:
        """Register ``callback`` to fire once when ``value >= level``.

        Same contract as :meth:`MonotonicCounter.subscribe`.
        """
        level = validate_level(level)
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if self._fast_path and self._value >= level:
            return None
        with self._cond:
            if self._value >= level:
                return None
            self._subs.setdefault(level, []).append(callback)
        return _BroadcastSubscription(self, level, callback)

    def reset(self) -> None:
        with self._cond:
            if self._waiting or self._subs:
                raise ResetConcurrencyError(
                    f"{self!r}: reset() with {self._waiting} waiting thread(s) "
                    f"and {len(self._subs)} subscribed level(s)"
                )
            self._value = 0

    def snapshot(self) -> CounterSnapshot:
        # The broadcast counter has a single anonymous queue; we surface it
        # as one pseudo-node at the *smallest* level anyone could be waiting
        # for (unknown), reported as -1-free structure: no per-level info.
        with self._cond:
            nodes = (
                (WaitNodeSnapshot(level=self._value + 1, count=self._waiting),)
                if self._waiting
                else ()
            )
            return CounterSnapshot(value=self._value, nodes=nodes)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<BroadcastCounter{label} value={self._value}>"


#: Alias matching the paper's class name (``class Counter { ... }``, §2).
Counter = MonotonicCounter
