"""The unified wakeup engine: parking slots, a timer wheel, one contract.

Before this module existed the repo had three divergent wakeup paths:
the counter's per-node ``threading.Condition`` release, MultiWait's
private condition variable, and the asyncio bridge's mirrored-counter
double park.  Each paid its own machinery per wait — a fresh
``Condition`` (an allocation plus a lock handoff) per wait node, a
per-instance condvar per MultiWait, a second counter per bridge.  This
module replaces all of them with two primitives:

:class:`ParkingSlot`
    A futex-style reusable binary semaphore, **one per thread**
    (:func:`current_slot`, thread-local, allocated once).  Parking is
    ``slot.wait()`` — an acquire of a raw lock the slot keeps *armed*
    (held) between waits; waking is ``slot.set()`` — a release of that
    lock.  A set that lands before the wait is never lost (semaphore
    semantics), which is exactly the property the old protocol bought
    with the node's private condvar and the ``signaled`` re-test.  A
    coalesced release becomes "set N slots": no per-level lock is taken
    on the wakeup path at all.

:class:`TimerWheel`
    A hashed wheel of absolute deadlines shared by **every** timed wait
    in the process (``check(timeout=)``, ``MultiWait.wait_*``), swept by
    a single lazily-spawned daemon thread that parks on its own slot
    until the earliest deadline and exits after a short idle linger.
    Each timed wait contributes one :class:`WheelEntry`.

The invariant that makes slot reuse sound is **exactly-one-set-per-
park**: for every round a thread parks, at most one ``set`` is ever
delivered to its slot, and the round consumes it.  Untimed waits get
this for free (only the release pass may set).  Timed waits have two
potential wakers — the release pass and the sweeper — so the entry
carries a one-shot **claim** (a raw lock acquired non-blockingly):
whichever side wins the claim performs the set and records ``why``; the
loser does nothing.  The waiter branches on ``why`` after waking, and on
a timer verdict still adjudicates against ``node.released`` under the
counter lock, so the no-lost-wakeup guarantee is unchanged (see
``docs/engine.md`` for the full mapping of the two-flag protocol onto
slots).

Asyncio waiters do not park on slots: the aio side's "slot" is a loop
future completed via ``loop.call_soon_threadsafe`` (see
``repro.aio.bridge.CounterBridge.check``), the engine's third leg.
"""

from __future__ import annotations

import threading
import time
import weakref
from heapq import heappop, heappush
from typing import Iterator

from repro.core import syncpoints as _sp

__all__ = [
    "ParkingSlot",
    "WheelEntry",
    "TimerWheel",
    "Doorbell",
    "current_slot",
    "live_slot_count",
    "wheel",
]

_allocate_lock = threading.Lock
_clock = time.monotonic


class ParkingSlot:
    """A reusable one-thread parking spot: an *armed* raw lock.

    The lock is held ("armed") whenever the owner is not being woken:
    ``wait()`` blocks acquiring it and — because a successful acquire
    leaves the lock held again — re-arms the slot on the way out, so one
    slot serves every wait its thread ever performs.  ``set()`` releases
    the lock, unblocking the waiter (or, if it has not called ``wait()``
    yet, pre-paying the wait: the semaphore shape is what makes a
    set-before-wait impossible to lose).

    Setting an unarmed slot raises ``RuntimeError`` (release of an
    unlocked lock) — a double set is a *loud* protocol violation, never
    a silent lost or spurious wakeup.  The engine's claim discipline
    guarantees at most one set per park round; the hammer in
    ``tests/core/test_engine.py`` leans on slots crashing to prove it.

    The mutating operations are *bound C methods*, not Python wrappers:

    ``set()``
        Wake the parked (or about-to-park) owner; one per park round.
    ``release_wake()``
        The same operation under the name the release pass uses —
        polymorphic with :class:`WheelEntry`, so an untimed waiter can
        sit directly in ``node.waiters`` and the coalesced wake sweep
        ("set N slots") pays one C call per waiter, no frame.
    ``block()``
        ``wait()`` with no timeout, minus the wrapper frame — the
        spelling the hot untimed park paths use.

    All three are assigned in ``__init__`` (they are the raw lock's own
    ``release``/``acquire``), which is why they live in ``__slots__``
    rather than as ``def``s.
    """

    __slots__ = ("_lock", "set", "release_wake", "block", "__weakref__")

    def __init__(self) -> None:
        lock = _allocate_lock()
        lock.acquire()  # born armed
        self._lock = lock
        self.set = self.release_wake = lock.release
        self.block = lock.acquire
        # Once per slot lifetime (one slot per thread, plus the handful
        # of dedicated sweeper/doorbell slots) — nowhere near any wait
        # path, so the registry costs nothing per park.
        _live_slots.add(self)

    def wait(self, timeout: float | None = None) -> bool:
        """Park until ``set()`` (or ``timeout``); True if set arrived.

        Returning re-arms the slot either way: on a wakeup the acquire
        itself re-arms; on a timeout the lock was never released.
        """
        if timeout is None:
            self._lock.acquire()
            return True
        return self._lock.acquire(True, timeout)

    @property
    def armed(self) -> bool:
        """True while no set is pending (diagnostic; racy by nature)."""
        return self._lock.locked()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParkingSlot {'armed' if self.armed else 'set-pending'}>"


#: Every live slot, held weakly: a thread's slot dies with its
#: thread-local, so the count tracks live parking capacity, not history.
_live_slots: "weakref.WeakSet[ParkingSlot]" = weakref.WeakSet()


def live_slot_count() -> int:
    """Parking slots currently alive (diagnostic, for ``dump_state``).

    One per thread that ever parked, plus dedicated slots (timer-wheel
    sweeper, doorbells); weakly tracked, so exited threads fall out.
    """
    return len(_live_slots)


_thread_slots = threading.local()


def current_slot() -> ParkingSlot:
    """The calling thread's parking slot, allocated on first use.

    One slot per thread for the life of the thread — this is the
    allocation the old per-wait ``Condition`` paid on *every* parked
    check, performed exactly once here.
    """
    try:
        return _thread_slots.slot
    except AttributeError:
        slot = _thread_slots.slot = ParkingSlot()
        return slot


class Doorbell:
    """Idempotent many-ringer, one-waiter notification over a slot.

    A :class:`ParkingSlot` enforces *exactly one set per park round* and
    crashes loudly on a double set — the right contract for the counter
    protocol, where the claim discipline guarantees a single waker, but
    the wrong one for ambient "something changed" notifications where
    any number of producers may ring concurrently (the shared-memory
    counter fabric's per-process watcher, :mod:`repro.dist.shm`).  A
    doorbell wraps a dedicated slot (never the thread's
    :func:`current_slot` — stray sets must not leak into counter parks)
    behind a one-shot pending token so that any number of ``ring()``
    calls collapse into at most one outstanding set:

    * ``ring()`` pops the token (atomic ``list.pop``, the same
      arbitration :class:`WheelEntry` uses) and only the winner sets the
      slot; later rings are no-ops until the waiter consumes the set.
    * ``wait()`` re-arms the token only after consuming a set, so the
      state machine is exactly {armed, set-outstanding} and a second
      outstanding set is impossible.  A ring that lands between a
      timeout and the next wait is *banked* by the slot and consumed
      immediately — a spurious wake, which poll loops re-check away.

    Rings are therefore level-triggered edges, not counted events:
    callers must re-examine their condition after every wake.
    """

    __slots__ = ("_slot", "_pending")

    def __init__(self) -> None:
        self._slot = ParkingSlot()
        self._pending = [None]  # armed: the next ring may claim it

    def ring(self) -> bool:
        """Wake the waiter (at most one set outstanding); True if this
        call delivered the set, False if one was already pending."""
        if _sp.enabled:
            _sp.fire("doorbell.ring", self)
        try:
            self._pending.pop()
        except IndexError:
            return False
        if _sp.enabled:
            _sp.fire("doorbell.deliver", self)
        self._slot.set()
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Park until rung (or ``timeout``); True if a ring arrived.

        Only ever call from the single owning waiter thread.  On a
        timeout the token is deliberately *not* re-armed: a concurrent
        ring may have claimed it with its set still in flight, and that
        set must be consumed (it will be, banked, by the next wait)
        before a new ring is allowed to deliver another.
        """
        if _sp.enabled:
            _sp.fire("doorbell.wait", self)
        if self._slot.wait(timeout):
            self._pending.append(None)  # consumed the one set; re-arm
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "armed" if self._pending else "set-pending"
        return f"<Doorbell {state}>"


class WheelEntry:
    """One timed wait: a slot, an absolute deadline, and the claim.

    ``claim(why)`` is the arbitration point between the two possible
    wakers — the release pass (via :meth:`release_wake`) and the wheel's
    sweeper (via :meth:`fire_timeout`).  The claim is a one-element
    token list popped non-blockingly: ``list.pop`` is a single C call
    that exactly one caller can win (atomic under the GIL, and under the
    per-object lock on free-threaded builds), so one side records
    ``why`` (``"release"`` or ``"timeout"``) and delivers the slot's
    single set.  The loser's wake is dropped *before* touching the slot,
    which is what keeps the slot's one-set-per-park invariant intact
    across reuse.  A token list costs a quarter of the raw lock this
    used as its first shape — and an entry is born and claimed on every
    single timed park, so the allocation is squarely on the hot path.

    ``why`` is written by the claim winner before the set and read by
    the waiter after its wait returns; the set's release/acquire pairing
    orders the two, so the waiter always observes its verdict.
    """

    __slots__ = ("slot", "deadline", "why", "_token", "_bucket")

    def __init__(self, slot: ParkingSlot, deadline: float) -> None:
        self.slot = slot
        self.deadline = deadline
        self.why: str | None = None
        self._token = [None]
        self._bucket: int | None = None

    def claim(self, why: str) -> bool:
        """Try to become the entry's single waker; True on the win."""
        try:
            self._token.pop()
        except IndexError:
            return False
        self.why = why
        return True

    def release_wake(self) -> None:
        """Release-pass side: wake the waiter unless the timer beat us.

        The claim is open-coded (here and in :meth:`fire_timeout`)
        rather than delegated to :meth:`claim`: the release pass calls
        this once per timed waiter inside the coalesced wake sweep, and
        the nested frame was measurable there.
        """
        if _sp.enabled:
            _sp.fire("wheel.release", self)
        try:
            self._token.pop()
        except IndexError:
            return
        self.why = "release"
        self.slot.set()

    def fire_timeout(self) -> None:
        """Sweeper side: deliver the timeout unless a release beat us.

        Usually called from the wheel's sweeper daemon (which no test
        harness owns, so its sync point passes through); tests drive
        the claim race by calling it from a gated worker directly.
        """
        if _sp.enabled:
            _sp.fire("wheel.timeout", self)
        try:
            self._token.pop()
        except IndexError:
            return
        self.why = "timeout"
        self.slot.set()

    @property
    def claimed(self) -> bool:
        """True once either side has won the claim (diagnostic)."""
        return not self._token

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WheelEntry deadline={self.deadline:.6f} why={self.why!r}>"


class TimerWheel:
    """Hashed timer wheel: every timed wait, one deadline structure.

    Entries hash into ``buckets`` by deadline tick (``deadline // span``
    modulo the bucket count), so ``add`` and ``cancel`` are O(1) under
    the wheel lock and a sweep touches only the buckets whose tick range
    has come due (far-future entries colliding into a swept bucket are
    skipped by their per-entry deadline).  An auxiliary min-heap of raw
    deadlines tells the sweeper how long to sleep; cancelled deadlines
    are left in the heap and discarded lazily when they surface (a
    phantom head costs one spurious sweep, never a missed one).

    The sweeper is a single daemon thread, spawned on the first ``add``
    and re-spawned on demand after it exits: once the wheel has been
    empty for ``IDLE_LINGER`` seconds the thread returns rather than
    sleeping forever, so test processes do not accumulate parked
    sweepers.  It parks on its own :class:`ParkingSlot`; ``add`` with an
    earlier-than-known deadline sets that slot (idempotent-notify under
    the wheel lock) so a long sleep is cut short.

    ``fire_timeout`` on due entries runs *outside* the wheel lock — the
    sweeper must never hold the lock while delivering sets, or a burst
    of timeouts would convoy adds behind it.
    """

    SPAN = 0.002
    BUCKETS = 128
    IDLE_LINGER = 0.25

    __slots__ = (
        "_lock",
        "_acquire",
        "_release",
        "_span",
        "_inv_span",
        "_buckets",
        "_nbuckets",
        "_count",
        "_deadlines",
        "_sweeper",
        "_sleeping",
        "_slot",
        "_last_tick",
    )

    def __init__(self, span: float = SPAN, buckets: int = BUCKETS) -> None:
        if span <= 0.0:
            raise ValueError(f"span must be positive, got {span!r}")
        if not isinstance(buckets, int) or isinstance(buckets, bool) or buckets < 1:
            raise ValueError(f"buckets must be a positive int, got {buckets!r}")
        self._lock = threading.Lock()
        # add/cancel run once per timed park each; calling the bound
        # acquire/release directly costs about a quarter of a ``with``
        # block on the raw lock, so the two hot entry points use these.
        self._acquire = self._lock.acquire
        self._release = self._lock.release
        self._span = span
        self._inv_span = 1.0 / span
        self._buckets: list[set[WheelEntry]] = [set() for _ in range(buckets)]
        self._nbuckets = buckets
        self._count = 0
        self._deadlines: list[float] = []
        self._sweeper: threading.Thread | None = None
        self._sleeping = False
        self._slot = ParkingSlot()
        self._last_tick = int(_clock() / span)

    def add(self, entry: WheelEntry) -> None:
        """Arm ``entry``; wakes (or spawns) the sweeper as needed."""
        deadline = entry.deadline
        index = int(deadline * self._inv_span) % self._nbuckets
        entry._bucket = index
        self._acquire()
        try:
            self._buckets[index].add(entry)
            self._count += 1
            heap = self._deadlines
            heappush(heap, deadline)
            if self._sweeper is None:
                sweeper = threading.Thread(
                    target=self._sweep, name="repro-timer-wheel", daemon=True
                )
                self._sweeper = sweeper
                sweeper.start()
            elif self._sleeping and deadline <= heap[0]:
                # The sweeper may be sleeping toward a later deadline;
                # cut the sleep short.  Set under the wheel lock so the
                # sweeper's post-wait bookkeeping (which re-takes the
                # lock) always finds the set already delivered.
                self._sleeping = False
                self._slot.set()
        finally:
            self._release()

    def cancel(self, entry: WheelEntry) -> None:
        """Disarm ``entry`` (release won); idempotent, O(1).

        The heap keeps the stale deadline — discarded lazily by the
        sweeper — but the *entry* is gone: after ``cancel`` returns, no
        sweep can ever observe it, so a satisfied wait leaves no armed
        deadline behind.
        """
        index = entry._bucket
        if index is None:
            return
        entry._bucket = None
        self._acquire()
        try:
            bucket = self._buckets[index]
            if entry in bucket:
                bucket.discard(entry)
                self._count -= 1
        finally:
            self._release()

    def armed_count(self) -> int:
        """Entries currently armed (for tests and introspection)."""
        with self._lock:
            return self._count

    def entries(self) -> Iterator[WheelEntry]:
        """Snapshot of the armed entries (introspection only)."""
        with self._lock:
            snapshot = [entry for bucket in self._buckets for entry in bucket]
        return iter(snapshot)

    @property
    def sweeping(self) -> bool:
        """True while a sweeper thread is alive (diagnostic)."""
        return self._sweeper is not None

    def snapshot(self) -> dict:
        """JSON-ready wheel internals (for ``dump_state`` / debugging).

        ``armed`` is the live entry count, ``pending`` the soonest
        entries as ``{deadline_in_s, why}`` relative to now (capped at
        32 — a dump is a glance, not a download), ``sweeping`` whether
        the sweeper thread currently exists.
        """
        now = _clock()
        entries = sorted(self.entries(), key=lambda e: e.deadline)
        return {
            "armed": self.armed_count(),
            "sweeping": self.sweeping,
            "span_s": self._span,
            "buckets": self._nbuckets,
            "pending": [
                {"deadline_in_s": round(entry.deadline - now, 6),
                 "why": entry.why}
                for entry in entries[:32]
            ],
        }

    # ----------------------------------------------------------- sweeper

    def _take_due(self, now: float) -> list[WheelEntry] | None:
        """Remove and return entries due at ``now`` (wheel lock held).

        Walks the tick range since the previous sweep — at most one full
        lap — and pulls due entries from exactly those buckets.  Entries
        sharing a bucket with a later tick (hash collisions) stay put.
        """
        span = self._span
        now_tick = int(now / span)
        last_tick = self._last_tick
        self._last_tick = now_tick
        if not self._count:
            return None
        # Scan [last_tick, now_tick] inclusive: the current tick's bucket
        # is re-scanned every sweep so a sub-span timeout (deadline in
        # the tick it was added in) fires promptly instead of waiting a
        # full wheel lap.  Per-entry deadline checks make re-scans safe.
        ticks = now_tick - last_tick
        nbuckets = self._nbuckets
        if ticks + 1 >= nbuckets:
            indices = range(nbuckets)
        else:
            indices = ((last_tick + i) % nbuckets for i in range(ticks + 1))
        due: list[WheelEntry] | None = None
        for index in indices:
            bucket = self._buckets[index]
            if not bucket:
                continue
            expired = [entry for entry in bucket if entry.deadline <= now]
            if expired:
                bucket.difference_update(expired)
                self._count -= len(expired)
                if due is None:
                    due = expired
                else:
                    due.extend(expired)
        return due

    def _next_deadline(self, now: float) -> float | None:
        """Earliest plausible deadline > now, or None when empty.

        Pops heap heads that have already passed: after ``_take_due``
        every live entry due by ``now`` is gone, so a stale head is a
        cancelled or already-fired deadline.
        """
        heap = self._deadlines
        while heap and heap[0] <= now:
            heappop(heap)
        if not self._count:
            # All remaining heap entries are cancellation ghosts; drop
            # them so an idle wheel holds no memory.
            heap.clear()
            return None
        return heap[0] if heap else now + self._span

    def _sweep(self) -> None:
        lock, slot = self._lock, self._slot
        idle_deadline: float | None = None
        while True:
            with lock:
                now = _clock()
                due = self._take_due(now)
                if due:
                    timeout = None
                else:
                    next_deadline = self._next_deadline(now)
                    if next_deadline is None:
                        if idle_deadline is None:
                            idle_deadline = now + self.IDLE_LINGER
                        elif now >= idle_deadline:
                            # Idle long enough: exit; the next add()
                            # spawns a fresh sweeper.
                            self._sweeper = None
                            return
                        timeout = idle_deadline - now
                    else:
                        idle_deadline = None
                        timeout = max(next_deadline - now, 0.0)
                    self._sleeping = True
            if due:
                idle_deadline = None
                # Outside the wheel lock: each fire is a claim attempt
                # plus (on the win) one slot set; losers were released
                # concurrently and their cancel already ran or will
                # no-op.
                for entry in due:
                    entry.fire_timeout()
                continue
            woke = slot.wait(timeout)
            with lock:
                if self._sleeping:
                    self._sleeping = False
                elif not woke:
                    # An add() flipped the flag and delivered a set
                    # while our own timeout was landing; the set
                    # happened under the wheel lock, so it is already
                    # here — consume it to re-arm the slot.
                    slot.wait()
            if woke:
                idle_deadline = None


#: The process-wide wheel every timed wait arms by default.  Tests can
#: build private wheels; production code shares this one so there is a
#: single sweeper no matter how many counters exist.
_WHEEL = TimerWheel()


def wheel() -> TimerWheel:
    """The shared process-wide :class:`TimerWheel`."""
    return _WHEEL
