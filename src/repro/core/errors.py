"""Exception hierarchy for the :mod:`repro.core` counter package.

The paper defines a deliberately small interface (``Increment`` and
``Check``); correspondingly the failure surface is small.  Everything a
counter can signal derives from :class:`CounterError` so callers can catch
one type.
"""

from __future__ import annotations

__all__ = [
    "CounterError",
    "CounterValueError",
    "CheckTimeout",
    "ResetConcurrencyError",
    "CounterOverflowError",
]


class CounterError(Exception):
    """Base class for all counter-related errors."""


class CounterValueError(CounterError, ValueError):
    """An operand was invalid (negative amount/level, non-integer, ...).

    The paper types amounts and levels as C++ ``unsigned int``; in Python we
    validate instead of relying on wraparound.
    """


class CheckTimeout(CounterError, TimeoutError):
    """A ``check(level, timeout=...)`` call expired before ``value >= level``.

    This is a deviation from the paper's interface (which has no bounded
    wait); it exists so tests and applications can fail fast instead of
    hanging.  A timeout does *not* perturb counter state: the waiting record
    for the expired thread is cleaned up.
    """


class ResetConcurrencyError(CounterError, RuntimeError):
    """``reset()`` was called while other operations were in flight.

    The paper's contract for ``Reset`` is that it must never be called
    concurrently with other operations on the same counter.  We detect the
    cheap-to-detect violation — threads currently suspended in ``check`` —
    and refuse to reset under them.
    """


class CounterOverflowError(CounterError, OverflowError):
    """The counter value exceeded the configured maximum.

    Python ints do not overflow, but a practical counter implementation can
    bound its value (mirroring the paper's ``unsigned int``) to catch runaway
    increment loops.  Raised only when a ``max_value`` bound was configured.
    """
