"""Waiting on several counters at once — safe *because* of monotonicity.

With traditional condition variables, "wait until P and Q both hold"
needs careful lock choreography: P may stop holding while you wait for
Q.  Counter conditions are stable (§2/§6: once ``value >= level`` it
stays true), so a conjunction of counter conditions can be awaited by
simply checking each in any order — no retry loop, no race window.

Two strategies implement that reasoning:

* :func:`check_all` / :func:`checkpoint` — the sequential strategy: check
  each condition in turn.  Correct by stability, but a thread behind k
  unsatisfied conditions parks and wakes up to k times.
* :class:`MultiWait` — the subscription strategy: register one callback
  per counter (riding the same per-level wait nodes ``check`` uses —
  storage stays O(distinct levels)), then park **once** on the calling
  thread's engine slot (:mod:`repro.core.engine`) until all (or any) of
  the conditions have fired.  Wakeups come from the incrementing
  threads' coalesced release passes; the waiter never touches any
  counter's lock after registration, and only the *one* callback that
  completes the wait delivers a wakeup (earlier satisfactions just
  land in the set — no spurious wake per condition).

:func:`check_all` always uses the sequential strategy.  That is a
measured choice, not an oversight: stability means the *other*
conditions keep getting satisfied while the thread is parked on the
first unsatisfied one, so in practice a sequential conjunction parks
about once and then fast-paths through the rest — while a
:class:`MultiWait` pays N subscriptions, an engine park, and a
close per join (slower on the join-throughput benchmark,
``repro.bench.counter_ops`` series ``multiwait_join``).  Reach for
:class:`MultiWait` when you need ``wait_any``, a reusable registration
amortized over many waits, or a hard bound on parks (the sequential
strategy can park up to k times under adversarially staggered
producers).  It also keeps working for counters without ``subscribe``
(e.g. the traced/simulated counters of the determinism harness, which
record each ``check`` as an event).

On ``wait_any``: the paper deliberately omits ``Probe`` (§2) because
observing *which* condition is satisfied first is a nondeterministic
choice.  :meth:`MultiWait.wait_any` makes exactly that choice observable
— it exists for latency-sensitive disjunctions (first-of-N completion)
and returns the full frozenset of currently-satisfied indices rather
than an arbitrary single winner, but programs that need the paper's
determinism guarantees must stick to ``wait_all``/``check_all`` (or give
the producers a shared counter, which expresses the disjunction
deterministically).
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

from repro.core import syncpoints as _sp
from repro.core.api import CounterProtocol
from repro.core.engine import WheelEntry, current_slot, wheel as _shared_wheel
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs.events import next_token as _next_token

_WHEEL = _shared_wheel()

__all__ = ["MultiWait", "check_all", "Condition", "barrier_levels", "checkpoint"]

Condition = tuple[CounterProtocol, int]


# Types that have passed the CounterProtocol structural check.  A
# runtime-checkable Protocol isinstance walks the protocol's attributes
# through typing machinery on EVERY call — measured at more than half of
# a MultiWait construction on the join benchmark.  Conformance is a
# property of the class (its methods), so one verdict per type is
# cached here; the set only ever grows and holds a handful of counter
# classes for the life of the process.
_conforming_types: set[type] = set()


def _validated(conditions: Iterable[Condition]) -> list[Condition]:
    pairs = list(conditions)
    conforming = _conforming_types
    for counter, level in pairs:
        if type(level) is not int or level < 0:
            validate_level(level)
        if type(counter) not in conforming:
            if not isinstance(counter, CounterProtocol):
                raise TypeError(f"expected a counter-like object, got {counter!r}")
            conforming.add(type(counter))
    return pairs


class MultiWait:
    """Park once for N counter conditions via per-counter subscriptions.

    Registration happens in the constructor: each ``(counter, level)``
    gets one subscription (already-satisfied conditions are recorded
    immediately).  The waiting thread then parks on its per-thread
    engine slot; incrementing threads deliver satisfactions through the
    subscription callbacks, outside every counter lock, and the one
    callback that completes a waiter's predicate sets its slot.

    Conditions are indexed by their position in the constructor
    argument.  Satisfaction is stable and cumulative: indices are only
    ever added to the satisfied set.

    Always :meth:`close` (or use as a context manager) so unfired
    subscriptions are deregistered and their wait nodes reclaimed:

    >>> from repro.core import MonotonicCounter
    >>> a, b = MonotonicCounter(), MonotonicCounter()
    >>> _ = a.increment(2)
    >>> with MultiWait([(a, 1), (b, 1)]) as mw:
    ...     _ = b.increment(1)
    ...     mw.wait_all()
    """

    __slots__ = ("_lock", "_pairs", "_satisfied", "_subs", "_waiters",
                 "_closed", "_token", "_obs_label", "_obs_chan")

    def __init__(self, conditions: Iterable[Condition]) -> None:
        pairs = _validated(conditions)
        for counter, _ in pairs:
            if not callable(getattr(counter, "subscribe", None)):
                raise TypeError(
                    f"{counter!r} does not support subscribe(); "
                    "use check_all() for subscription-free counters"
                )
        self._lock = threading.Lock()
        self._pairs: Sequence[Condition] = pairs
        self._satisfied: set[int] = set()
        self._subs: list = []
        # Parked waiters as (need, target) records: the wait completes
        # once `len(satisfied) >= need` (all = N, any = 1); target is
        # the waiter's engine handle (slot, or wheel entry when timed).
        self._waiters: list = []
        self._closed = False
        # Schema-v2 correlation id shared by this instance's mw_* events.
        self._token = _next_token()
        # Register after all fields exist: a callback may fire from an
        # incrementing thread before the constructor returns.
        for index, (counter, level) in enumerate(pairs):
            subscription = counter.subscribe(level, self._make_callback(index))
            if subscription is None:
                with self._lock:
                    self._satisfied.add(index)
            else:
                self._subs.append(subscription)

    def _make_callback(self, index: int):
        def fire() -> None:
            if _sp.enabled:
                _sp.fire("multiwait.fire", self)
            ready = None
            with self._lock:
                self._satisfied.add(index)
                n = len(self._satisfied)
                if self._waiters:
                    ready = [record for record in self._waiters if record[0] <= n]
                    if ready:
                        self._waiters = [r for r in self._waiters if r[0] > n]
            if ready:
                # Wakeups outside the lock, exactly one per completed
                # waiter: the record was removed above, so no other
                # callback can reach this target again.  (For a timed
                # target the entry's claim additionally arbitrates
                # against a concurrent timer fire.)
                for _, target in ready:
                    target.release_wake()

        return fire

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def satisfied(self) -> frozenset[int]:
        """Indices of the conditions known satisfied so far."""
        with self._lock:
            return frozenset(self._satisfied)

    def wait_all(self, timeout: float | None = None) -> None:
        """Park until every condition has been satisfied.

        Raises :class:`~repro.core.errors.CheckTimeout` if ``timeout``
        (a shared budget across all conditions) expires first.  Stability
        makes a late return impossible to invalidate: conditions cannot
        unsatisfy while waiting.
        """
        self._wait(len(self._pairs), timeout, "all")

    def wait_any(self, timeout: float | None = None) -> frozenset[int]:
        """Park until at least one condition is satisfied; return the
        frozenset of indices satisfied at wake time.

        Which condition fires first is a scheduler choice — this is the
        nondeterminism the paper's ``Probe`` exclusion warns about (see
        module docstring).  The full satisfied set is returned so callers
        at least observe every satisfaction delivered so far, not an
        arbitrary single winner.
        """
        self._wait(1, timeout, "any")
        with self._lock:
            return frozenset(self._satisfied)

    def _wait(self, need: int, timeout: float | None, mode: str) -> None:
        if timeout is not None:
            timeout = validate_timeout(timeout)
        if _sp.enabled:
            _sp.fire("multiwait.park", self)
        t_parked: float | None = None
        if _obs.enabled:
            # Racy len() reads: diagnostic payload only.
            _obs.on_mw_park(self, len(self._pairs), len(self._satisfied),
                            token=self._token)
            t_parked = _obs.clock()
        slot = current_slot()
        entry: WheelEntry | None = None
        deadline = 0.0
        with self._lock:
            if self._closed:
                raise RuntimeError("MultiWait is closed")
            if len(self._satisfied) >= need:
                if _obs.enabled:
                    self._note_wake(t_parked)
                return
            if timeout is None:
                target = slot
            else:
                deadline = time.monotonic() + timeout
                target = entry = WheelEntry(slot, deadline)
            # Registered under the lock: from here on exactly one
            # callback (the one whose satisfaction meets `need`) owns
            # the record and will deliver the wakeup.
            self._waiters.append((need, target))
        if entry is None:
            slot.block()
            # Defensive re-check against a stray set (the satisfied set
            # only grows, so a racy length read can never err the wrong
            # way).  The genuine wakeup always passes: the callback
            # updates the set before setting the slot.
            while len(self._satisfied) < need:
                slot.block()
        else:
            if timeout == 0.0:
                # Instant probe: never arms the wheel (see counter._park).
                if not entry.claim("timeout"):
                    slot.block()
            else:
                _WHEEL.add(entry)
                slot.block()
                while entry.why is None:  # stray set; see above
                    slot.block()
            if entry.why == "timeout":
                self._adjudicate_timeout(need, entry, timeout, mode)
                # Fell through: satisfied concurrently — success.
            else:
                _WHEEL.cancel(entry)
        if _obs.enabled:
            self._note_wake(t_parked)

    def _adjudicate_timeout(
        self, need: int, entry: WheelEntry, timeout: float | None, mode: str
    ) -> None:
        """Decide a timer verdict: genuine timeout or concurrent fire.

        The callback that completes a waiter removes its record and
        updates the satisfied set under the same lock, so holding it
        gives a definitive answer.  On a genuine timeout the record is
        removed here, guaranteeing no callback can set the slot later.
        """
        expired_satisfied: int | None = None
        with self._lock:
            if len(self._satisfied) < need:
                self._waiters.remove((need, entry))
                expired_satisfied = len(self._satisfied)
        if expired_satisfied is not None:
            # Emission and raise both outside the lock.
            if _obs.enabled:
                _obs.on_mw_timeout(self, len(self._pairs), expired_satisfied,
                                   token=self._token)
            raise CheckTimeout(
                f"MultiWait.wait_{mode}: timed out after {timeout}s "
                f"({expired_satisfied}/{len(self._pairs)} satisfied)"
            )
        # Satisfied concurrently with the expiry: the callback removed
        # our record but lost the claim, so no pending set to consume.

    def _note_wake(self, t_parked: float | None) -> None:
        wait_s = None if t_parked is None else _obs.clock() - t_parked
        _obs.on_mw_wake(self, len(self._satisfied), wait_s, token=self._token)

    def close(self) -> None:
        """Cancel unfired subscriptions and mark the object unusable.

        Idempotent.  Cancellation runs outside this object's lock (a
        callback arriving concurrently just lands in the satisfied set of
        a closed object, harmlessly).
        """
        if _sp.enabled:
            _sp.fire("multiwait.close", self)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subs, self._subs = self._subs, []
        for subscription in subs:
            subscription.cancel()

    def __enter__(self) -> "MultiWait":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def check_all(
    conditions: Iterable[Condition],
    timeout: float | None = None,
) -> None:
    """Suspend until EVERY ``(counter, level)`` condition holds.

    Checks each condition in sequence — that this naive strategy is
    correct (each condition, once passed, cannot unpass) is the point of
    the helper, and measurement says it is also the fast strategy for
    one-shot conjunctions (see the module docstring for when
    :class:`MultiWait` is the better tool).  With a ``timeout``, the
    budget is shared across all conditions and expiry raises
    :class:`~repro.core.errors.CheckTimeout`.

    >>> from repro.core import MonotonicCounter
    >>> a, b = MonotonicCounter(), MonotonicCounter()
    >>> a.increment(2); b.increment(1)
    2
    1
    >>> check_all([(a, 2), (b, 1)])   # returns immediately
    """
    pairs = _validated(conditions)
    timeout = validate_timeout(timeout)
    if timeout is None:
        for counter, level in pairs:
            counter.check(level)
        return
    deadline = time.monotonic() + timeout
    for counter, level in pairs:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Let the counter decide instantly: passes iff already satisfied.
            counter.check(level, timeout=0)
        else:
            counter.check(level, timeout=remaining)


def barrier_levels(episode: int, parties: int) -> int:
    """The counter level at which barrier ``episode`` (0-based) completes.

    Companion to :class:`repro.sync.barrier.CounterBarrier`: episode e is
    complete when the arrival counter reaches ``(e + 1) * parties``.
    Exposed for programs that mix barrier-style waits with other counter
    levels on the same counter (only counters can express that mix).
    """
    if episode < 0 or parties < 1:
        raise ValueError(f"need episode >= 0 and parties >= 1, got {episode}, {parties}")
    return (episode + 1) * parties


def checkpoint(counters: Iterable[CounterProtocol], level: int, timeout: float | None = None) -> None:
    """Wait until every counter in a collection reaches one common level.

    The N-producer join: e.g. N pipeline stages each announcing progress
    on their own counter, a consumer waiting for all of them to finish
    step ``level``.  Sugar over :func:`check_all`.
    """
    check_all([(counter, level) for counter in counters], timeout=timeout)
