"""Waiting on several counters at once — safe *because* of monotonicity.

With traditional condition variables, "wait until P and Q both hold"
needs careful lock choreography: P may stop holding while you wait for
Q.  Counter conditions are stable (§2/§6: once ``value >= level`` it
stays true), so a conjunction of counter conditions can be awaited by
simply checking each in any order — no retry loop, no race window.
These helpers package that reasoning with validation and a shared
deadline.

There is deliberately **no** ``check_any``: "wait until at least one of
these reaches a level" makes the *identity of the satisfier* observable,
which reintroduces the nondeterministic choice the paper excludes along
with ``Probe`` (§2).  A disjunction is expressible deterministically by
giving both producers the same counter.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.api import CounterProtocol
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_level, validate_timeout

__all__ = ["check_all", "Condition"]

Condition = tuple[CounterProtocol, int]


def check_all(
    conditions: Iterable[Condition],
    timeout: float | None = None,
) -> None:
    """Suspend until EVERY ``(counter, level)`` condition holds.

    Equivalent to checking each in sequence — that this naive strategy
    is correct (each condition, once passed, cannot unpass) is the point
    of the helper.  With a ``timeout``, the budget is shared across all
    conditions and expiry raises :class:`~repro.core.errors.CheckTimeout`.

    >>> from repro.core import MonotonicCounter
    >>> a, b = MonotonicCounter(), MonotonicCounter()
    >>> a.increment(2); b.increment(1)
    2
    1
    >>> check_all([(a, 2), (b, 1)])   # returns immediately
    """
    pairs: Sequence[Condition] = list(conditions)
    for counter, level in pairs:
        validate_level(level)
        if not isinstance(counter, CounterProtocol):
            raise TypeError(f"expected a counter-like object, got {counter!r}")
    timeout = validate_timeout(timeout)
    if timeout is None:
        for counter, level in pairs:
            counter.check(level)
        return
    deadline = time.monotonic() + timeout
    for counter, level in pairs:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Let the counter decide instantly: passes iff already satisfied.
            counter.check(level, timeout=0)
        else:
            counter.check(level, timeout=remaining)


def barrier_levels(episode: int, parties: int) -> int:
    """The counter level at which barrier ``episode`` (0-based) completes.

    Companion to :class:`repro.sync.barrier.CounterBarrier`: episode e is
    complete when the arrival counter reaches ``(e + 1) * parties``.
    Exposed for programs that mix barrier-style waits with other counter
    levels on the same counter (only counters can express that mix).
    """
    if episode < 0 or parties < 1:
        raise ValueError(f"need episode >= 0 and parties >= 1, got {episode}, {parties}")
    return (episode + 1) * parties


__all__.append("barrier_levels")


def checkpoint(counters: Iterable[CounterProtocol], level: int, timeout: float | None = None) -> None:
    """Wait until every counter in a collection reaches one common level.

    The N-producer join: e.g. N pipeline stages each announcing progress
    on their own counter, a consumer waiting for all of them to finish
    step ``level``.  Sugar over :func:`check_all`.
    """
    check_all([(counter, level) for counter in counters], timeout=timeout)


__all__.append("checkpoint")
