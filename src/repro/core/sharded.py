"""A sharded monotonic counter for increment-heavy many-producer workloads.

:class:`~repro.core.counter.MonotonicCounter` serializes every operation on
one lock.  That is the right trade for ``check``-heavy coordination, but in
fan-in workloads — many producer threads each calling ``increment(1)`` at
high rate, few consumers occasionally waiting on a level — the single lock
becomes the bottleneck: every producer convoys through it even though no
wakeup work is pending.

:class:`ShardedCounter` splits the *increment* side across S shards, each
with its own lock and a small pending tally, striped over threads by their
id (the classic "sloppy"/striped-counter design: Linux per-CPU counters,
JDK ``LongAdder``).  Increments touch only their shard and *batch*: the
shard publishes its pending sum into a central
:class:`~repro.core.counter.MonotonicCounter` only when it reaches the
batch threshold — one lock acquisition and one release scan per ``batch``
increments instead of per increment.

``check``/``value`` reconcile: they drain every shard into the central
counter first, then delegate, so the blocking semantics of §2 are
preserved exactly.  Monotonicity is what makes the deferral sound — a
pending amount can only *raise* the eventual value, so holding it back
never wakes anyone early; it can only delay wakeups, and the
waiter-presence flush below bounds that delay.

No lost wakeups: a checker registers itself (``_checkers``) *before*
draining, and a producer reads ``_checkers`` *after* adding to its shard,
both under the shard lock that the drain also takes.  So for any pending
amount, either the drain saw it, or the producer's critical section ran
after the drain's — in which case the producer observed the checker's
registration and flushed eagerly itself.  While any checker is present,
every increment publishes immediately (batching switches off), so a
suspended ``check`` is woken by the increment that reaches its level, just
as with the plain counter.

The price of the deferral: ``increment`` returns a *lower bound* on the
new global value (the central published value) rather than the exact
total, unless its own batch flushed (``batch=1`` restores exact,
fully-synchronous semantics).  There is deliberately no ``max_value``:
overflow policing needs the exact global value on every increment, which
is precisely the serialization sharding exists to avoid.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from typing import Callable

from repro.core import syncpoints as _sp
from repro.core.api import AbstractCounter
from repro.core.counter import CounterSubscription, MonotonicCounter, WaitListStrategy
from repro.core.snapshot import CounterSnapshot
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.obs import hooks as _obs
from repro.obs import registry as _obs_registry

__all__ = ["ShardedCounter", "ShardSnapshot"]

#: Knuth's multiplicative-hash constant; thread ids are pointer-aligned
#: (low bits constant), so they are mixed before the shard modulus.
_MIX = 0x9E3779B1


@dataclass(frozen=True, slots=True)
class ShardSnapshot:
    """One consistent-enough capture of a sharded counter's tallies.

    ``published`` is read from the central counter **before** the
    per-shard ``pending`` tallies are collected (each under its shard
    lock).  Units only ever move shard → central, so a unit in flight
    during the capture can be *missed* (flushed after the published read,
    collected before its shard read) but never counted twice — ``total``
    is therefore always a lower bound on the true global value, and by
    monotonicity a lower bound is a sound answer.  The reverse order
    would let one unit appear in both reads and over-report, which for a
    monotonic counter is the one unforgivable error (a reader could
    conclude a level was reached that never was).
    """

    published: int
    pending: tuple[int, ...]

    @property
    def total(self) -> int:
        """Reconciled lower bound on the global value."""
        return self.published + sum(self.pending)


class _Shard:
    """One increment stripe: a private lock and an unpublished tally."""

    __slots__ = ("lock", "pending")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.pending = 0


class _ShardedSubscription:
    """Subscription handle that holds a checker slot until fire/cancel.

    The slot keeps the counter in eager-flush mode (every increment
    publishes immediately) for the subscription's lifetime, so the
    callback is delivered by the increment that reaches the level rather
    than stalling in a shard.  Retirement is idempotent: whichever of
    fire and cancel runs first releases the slot, the other is a no-op.
    """

    __slots__ = ("_counter", "_callback", "_inner", "_retired")

    def __init__(self, counter: "ShardedCounter", callback: Callable[[], None]) -> None:
        self._counter = counter
        self._callback = callback
        self._inner: CounterSubscription | None = None
        self._retired = False

    def _fire(self) -> None:
        self._retire()
        self._callback()

    def _retire(self) -> None:
        counter = self._counter
        with counter._checkers_lock:
            if self._retired:
                return
            self._retired = True
            counter._checkers -= 1

    def cancel(self) -> None:
        """Deregister the callback (no-op if it already fired)."""
        inner = self._inner
        if inner is not None:
            inner.cancel()
        self._retire()


class ShardedCounter(AbstractCounter):
    """Striped-increment monotonic counter with a reconciling check path.

    Example
    -------
    >>> from repro.core.sharded import ShardedCounter
    >>> c = ShardedCounter(batch=4)
    >>> for _ in range(3):
    ...     _ = c.increment(1)     # below batch: stays in the shard
    >>> c.value                    # reconciling read drains the shards
    3
    >>> c.check(2)                 # already satisfied: returns immediately

    Parameters
    ----------
    shards:
        Number of increment stripes; defaults to the CPU count, capped at
        16 (more stripes than cores only adds reconcile work).
    batch:
        Pending threshold at which a shard publishes into the central
        counter.  ``1`` publishes every increment (exact, synchronous
        semantics); larger values amortize the central lock over more
        increments at the cost of ``increment`` returning a stale lower
        bound between flushes.
    strategy / name / stats:
        Forwarded to the central :class:`MonotonicCounter`.
    """

    __slots__ = (
        "_central",
        "_shards",
        "_nshards",
        "_batch",
        "_checkers",
        "_checkers_lock",
        "_local",
        "_name",
        "_obs_label", "_obs_chan",
        "__weakref__",
    )

    def __init__(
        self,
        *,
        shards: int | None = None,
        batch: int = 64,
        strategy: WaitListStrategy = "linked",
        name: str | None = None,
        stats: bool = False,
    ) -> None:
        if shards is None:
            shards = min(os.cpu_count() or 4, 16)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValueError(f"shards must be a positive int, got {shards!r}")
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ValueError(f"batch must be a positive int, got {batch!r}")
        self._central = MonotonicCounter(strategy=strategy, name=name, stats=stats)
        self._shards = tuple(_Shard() for _ in range(shards))
        self._nshards = shards
        self._batch = batch
        self._checkers = 0
        self._checkers_lock = threading.Lock()
        # Per-thread shard cache: resolving the stripe once per thread is
        # measurably cheaper than hashing get_ident() on every increment.
        self._local = threading.local()
        self._name = name
        # One logical counter, one registry entry: the wrapper replaces
        # its inner central counter in the observability registry so a
        # dump or watchdog scan sees the sharded view (published +
        # pending), not a bare central missing the shard tallies.
        _obs_registry.deregister(self._central)
        _obs_registry.register(self)

    # ------------------------------------------------------------------ API

    @property
    def value(self) -> int:
        """The exact global value (reconciling: drains every shard first)."""
        self._drain()
        return self._central.value

    @property
    def published(self) -> int:
        """The central counter's value — a lock-free lower bound on the total."""
        return self._central._value

    @property
    def pending(self) -> int:
        """Racy sum of unpublished shard tallies (diagnostic only)."""
        return sum(shard.pending for shard in self._shards)

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` via this thread's shard; return a lower bound.

        The return value is the exact new global value whenever this call
        flushed its shard (always true for ``batch=1``), otherwise the
        central published value — a lower bound that later reconciliation
        will only raise.
        """
        amount = validate_amount(amount)
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._local.shard = self._shards[
                (threading.get_ident() * _MIX) % self._nshards
            ]
        flush = 0
        if _sp.enabled:
            _sp.fire("shard.lock", self)
        with shard.lock:
            shard.pending += amount
            # Read _checkers inside the shard lock: the drain in check()
            # takes this same lock, so either it already collected this
            # pending amount, or we are ordered after its registration and
            # see _checkers > 0 here — the no-lost-wakeup argument above.
            if shard.pending >= self._batch or self._checkers:
                flush, shard.pending = shard.pending, 0
        if flush:
            if _sp.enabled:
                _sp.fire("shard.flush", self)
            if _obs.enabled:
                _obs.on_flush(self, flush)
            return self._central.increment(flush)
        return self._central._value

    def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend the calling thread until the global value reaches ``level``."""
        level = validate_level(level)
        timeout = validate_timeout(timeout)
        # The published value is a monotone lower bound on the global
        # total, so a stale read that already satisfies the level is
        # conclusive — same soundness argument as the central counter's
        # lock-free fast path, inlined to skip checker registration, the
        # shard drain, and a second round of operand validation.
        central = self._central
        if central._value >= level:
            if central._stats_on:
                central.stats.immediate_checks += 1
            return
        if _sp.enabled:
            _sp.fire("sharded.register", self)
        with self._checkers_lock:
            self._checkers += 1
        try:
            self._drain()
            self._central.check(level, timeout)
        finally:
            with self._checkers_lock:
                self._checkers -= 1

    def subscribe(
        self, level: int, callback: Callable[[], None]
    ) -> "_ShardedSubscription | None":
        """Register ``callback`` to fire once when the global value reaches
        ``level``.

        Same contract as :meth:`MonotonicCounter.subscribe`.  A live
        subscription counts as a checker: while it is outstanding every
        increment flushes eagerly, so the notification is delivered by the
        increment that reaches the level, never deferred by batching.
        """
        level = validate_level(level)
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {callback!r}")
        if self._central._value >= level:
            return None
        if _sp.enabled:
            _sp.fire("sharded.register", self)
        with self._checkers_lock:
            self._checkers += 1
        sub = _ShardedSubscription(self, callback)
        try:
            self._drain()
            inner = self._central.subscribe(level, sub._fire)
        except BaseException:
            sub._retire()
            raise
        if inner is None:
            # Draining satisfied the level before registration: same
            # already-satisfied outcome as the fast path above.
            sub._retire()
            return None
        sub._inner = inner
        return sub

    def flush(self) -> int:
        """Publish every shard's pending tally; return the exact value."""
        self._drain()
        return self._central.value

    def reset(self) -> None:
        """Reset to zero for reuse between phases (quiescence required)."""
        self._drain()
        self._central.reset()

    # -------------------------------------------------------- introspection

    @property
    def stats(self):
        """The central counter's stats (shard-local activity is invisible
        until flushed; ``increments`` counts *publications*, not calls)."""
        return self._central.stats

    def snapshot(self) -> CounterSnapshot:
        """The central counter's state; unflushed shard tallies are not
        included (use :meth:`flush` first for an exact picture, or
        :meth:`shard_snapshot` for a non-draining lower bound that *does*
        account for them)."""
        return self._central.snapshot()

    def shard_snapshot(self) -> ShardSnapshot:
        """Capture published + per-shard pending without draining anything.

        Observability-safe: takes only the shard locks (briefly, one at a
        time — never the central lock) and publishes nothing, so a dump
        of a wedged system does not perturb it.  The published value is
        read *first*; see :class:`ShardSnapshot` for why that order makes
        ``total`` a guaranteed lower bound.
        """
        published = self._central._value
        pending = []
        for shard in self._shards:
            with shard.lock:
                pending.append(shard.pending)
        return ShardSnapshot(published=published, pending=tuple(pending))

    @property
    def waiting_levels(self) -> tuple[int, ...]:
        return self._central.waiting_levels

    # ---------------------------------------------------------------- internals

    def _drain(self) -> None:
        """Collect every shard's pending tally and publish it centrally.

        One central ``increment`` for the combined total: a single lock
        acquisition and release scan regardless of shard count.
        """
        if _sp.enabled:
            _sp.fire("sharded.drain", self)
        total = 0
        for shard in self._shards:
            with shard.lock:
                pending, shard.pending = shard.pending, 0
            total += pending
        if total:
            if _obs.enabled:
                _obs.on_drain(self, total)
            self._central.increment(total)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<ShardedCounter{label} published={self._central._value} "
            f"shards={self._nshards} batch={self._batch}>"
        )
