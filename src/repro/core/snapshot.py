"""Introspection snapshots of counter state.

Section 7 / Figure 2 of the paper describe the internal structure of a
counter as its value plus an ordered list of wait nodes, each carrying a
level, a waiter count, and a condition variable that is either *set* or
*not set*.  :class:`CounterSnapshot` captures exactly that structure so
tests (and ``examples/figure2_trace.py``) can reproduce Figure 2
node-for-node.

Snapshots are **for observation only**.  The paper deliberately omits any
probe operation because a decision based on the instantaneous value of a
counter reintroduces race conditions; never use a snapshot to synchronize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WaitNodeSnapshot", "CounterSnapshot"]


@dataclass(frozen=True, slots=True)
class WaitNodeSnapshot:
    """Immutable view of one wait node (one distinct waiting level).

    Attributes mirror the four node components of the paper's §7: the
    ``level`` threads are waiting for, the ``count`` of threads waiting at
    that level, and whether the node's condition variable has been
    ``signaled`` (the paper's *set* flag).  The link to the next node is
    implied by list order in :class:`CounterSnapshot`.
    """

    level: int
    count: int
    signaled: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "set" if self.signaled else "not set"
        return f"[level={self.level} count={self.count} {state}]"


@dataclass(frozen=True, slots=True)
class CounterSnapshot:
    """Immutable view of a whole counter: value + ordered wait nodes."""

    value: int
    nodes: tuple[WaitNodeSnapshot, ...] = field(default_factory=tuple)

    @property
    def waiting_levels(self) -> tuple[int, ...]:
        """The distinct levels with at least one suspended thread."""
        return tuple(node.level for node in self.nodes)

    @property
    def total_waiters(self) -> int:
        """Total number of suspended threads across all levels."""
        return sum(node.count for node in self.nodes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join(str(n) for n in self.nodes) or "(empty)"
        return f"Counter(value={self.value}, waiting: {chain})"
