"""Lightweight operation statistics for counters.

The complexity claims of §7 (storage and per-operation time proportional to
the number of *distinct waiting levels*, not to the number of waiting
threads) are quantified by benchmark E8.  Counters therefore keep a few
cheap integer tallies; collection costs one attribute bump per event and is
always on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CounterStats"]


@dataclass(slots=True)
class CounterStats:
    """Running tallies of one counter's lifetime activity.

    ``immediate_checks`` counts ``check`` calls satisfied without
    suspension; ``suspended_checks`` counts those that had to wait.
    ``nodes_created`` counts wait-node allocations (one per *new* distinct
    waiting level), and ``max_live_levels`` is the high-water mark of
    simultaneously existing wait nodes — the L in the paper's O(L) bounds.
    """

    increments: int = 0
    immediate_checks: int = 0
    suspended_checks: int = 0
    timeouts: int = 0
    nodes_created: int = 0
    nodes_released: int = 0
    threads_woken: int = 0
    max_live_levels: int = 0
    max_live_waiters: int = 0

    @property
    def checks(self) -> int:
        """Total ``check`` calls observed."""
        return self.immediate_checks + self.suspended_checks

    def note_levels(self, live_levels: int, live_waiters: int) -> None:
        """Record a high-water observation of live levels/waiters."""
        if live_levels > self.max_live_levels:
            self.max_live_levels = live_levels
        if live_waiters > self.max_live_waiters:
            self.max_live_waiters = live_waiters

    def snapshot(self) -> "CounterStats":
        """A detached copy (the live object keeps mutating)."""
        return CounterStats(
            increments=self.increments,
            immediate_checks=self.immediate_checks,
            suspended_checks=self.suspended_checks,
            timeouts=self.timeouts,
            nodes_created=self.nodes_created,
            nodes_released=self.nodes_released,
            threads_woken=self.threads_woken,
            max_live_levels=self.max_live_levels,
            max_live_waiters=self.max_live_waiters,
        )
