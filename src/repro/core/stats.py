"""Lightweight operation statistics for counters.

The complexity claims of §7 (storage and per-operation time proportional to
the number of *distinct waiting levels*, not to the number of waiting
threads) are quantified by benchmark E8.  Counters can keep a few cheap
integer tallies for that purpose — but the tallies are themselves a
scalability tax on the hot paths (every ``increment``/``check`` pays
attribute bumps, and a shared tally is a cache-line everyone contends on).

Collection is therefore **opt-in**: counters are constructed with
``stats=False`` by default and carry the shared :data:`NOOP_STATS`
null object, whose every tally reads zero and whose recording hooks do
nothing.  Benchmarks and tests that verify the §7 observables pass
``stats=True`` to get a live :class:`CounterStats`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["CounterStats", "NoopStats", "NOOP_STATS"]


@dataclass(slots=True)
class CounterStats:
    """Running tallies of one counter's lifetime activity.

    ``immediate_checks`` counts ``check`` calls satisfied without
    suspension; ``suspended_checks`` counts those that had to wait.
    ``nodes_created`` counts wait-node allocations (one per *new* distinct
    waiting level), and ``max_live_levels`` is the high-water mark of
    simultaneously existing wait nodes — the L in the paper's O(L) bounds.

    Counters bump these tallies only when constructed with ``stats=True``;
    with the default ``stats=False`` they hold the :data:`NOOP_STATS`
    null object instead, so production paths pay zero bookkeeping.

    Note on accuracy: a counter's lock-free ``check`` fast path records
    ``immediate_checks`` (and the spin phase ``spin_checks`` — checks
    satisfied while spinning, before parking) outside the lock, so under
    heavy contention those tallies may slightly undercount (lost
    read-modify-write races).  All other tallies are updated under the
    counter lock and are exact.
    """

    increments: int = 0
    immediate_checks: int = 0
    spin_checks: int = 0
    suspended_checks: int = 0
    timeouts: int = 0
    nodes_created: int = 0
    nodes_released: int = 0
    threads_woken: int = 0
    max_live_levels: int = 0
    max_live_waiters: int = 0

    #: Distinguishes a live stats object from :data:`NOOP_STATS`.
    enabled = True

    @property
    def checks(self) -> int:
        """Total ``check`` calls observed."""
        return self.immediate_checks + self.spin_checks + self.suspended_checks

    def note_levels(self, live_levels: int, live_waiters: int) -> None:
        """Record a high-water observation of live levels/waiters."""
        if live_levels > self.max_live_levels:
            self.max_live_levels = live_levels
        if live_waiters > self.max_live_waiters:
            self.max_live_waiters = live_waiters

    def as_dict(self) -> dict[str, int]:
        """All tallies (plus derived ``checks``) as a plain mapping.

        This is the export surface the unified metrics registry
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot` and its
        Prometheus twin) folds into its output for every live counter
        carrying opt-in stats.  The fast-path accuracy caveat above
        applies to ``immediate_checks``/``spin_checks`` here too.
        """
        doc = asdict(self)
        doc["checks"] = self.checks
        return doc

    def snapshot(self) -> "CounterStats":
        """A detached copy (the live object keeps mutating)."""
        return CounterStats(
            increments=self.increments,
            immediate_checks=self.immediate_checks,
            spin_checks=self.spin_checks,
            suspended_checks=self.suspended_checks,
            timeouts=self.timeouts,
            nodes_created=self.nodes_created,
            nodes_released=self.nodes_released,
            threads_woken=self.threads_woken,
            max_live_levels=self.max_live_levels,
            max_live_waiters=self.max_live_waiters,
        )


class NoopStats:
    """Null-object stats: every tally reads 0, every hook is a no-op.

    Counters constructed with ``stats=False`` (the default) share the
    single :data:`NOOP_STATS` instance, so code that only *reads*
    ``counter.stats`` keeps working unchanged while the counter itself
    skips all bookkeeping.  Instances are immutable by construction
    (``__slots__ = ()`` and all tallies are class attributes).
    """

    __slots__ = ()

    increments = 0
    immediate_checks = 0
    spin_checks = 0
    suspended_checks = 0
    timeouts = 0
    nodes_created = 0
    nodes_released = 0
    threads_woken = 0
    max_live_levels = 0
    max_live_waiters = 0
    checks = 0
    enabled = False

    def note_levels(self, live_levels: int, live_waiters: int) -> None:
        pass

    def as_dict(self) -> dict[str, int]:
        """An all-zero mapping with the same keys as the live stats."""
        return CounterStats().as_dict()

    def snapshot(self) -> CounterStats:
        """An (all-zero) detached :class:`CounterStats` copy."""
        return CounterStats()

    def __repr__(self) -> str:
        return "<NoopStats>"


#: The shared null-stats instance carried by every ``stats=False`` counter.
NOOP_STATS = NoopStats()
