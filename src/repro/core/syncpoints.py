"""Named synchronization points — the instrumentation seam for ``repro.testkit``.

The production counter code is sprinkled with *sync points*: named
positions in the synchronization protocol (immediately before a lock
acquisition, a flag write, a drain-set mutation, a shard flush) where a
schedule-injection harness may interpose.  Each site compiles to

.. code-block:: python

    if _sp.enabled:
        _sp.fire("increment.drain", self)

so the disabled cost is one module-attribute read and a branch — and the
sites are chosen so that **no sync point lies on the lock-free
immediate-``check`` fast path** (or on the sharded counter's published
fast path): an already-satisfied ``check`` never touches this module at
all.  ``docs/testing.md`` lists every point and its position in the
protocol; ``docs/api.md`` records the measured (non-)impact.

Only one hook can be installed at a time (the testkit serializes
schedules through :func:`install`/:func:`uninstall`).  The hook receives
``(point, obj)`` where ``obj`` is the primitive firing the point — a
counter for ``increment.*``/``check.*``/``park.*``/``shard*.*`` points, a
:class:`~repro.core.waitlist.WaitNode` for ``node.*`` points, a
:class:`~repro.core.multiwait.MultiWait` for ``multiwait.*`` points, a
:class:`~repro.core.engine.Doorbell` for ``doorbell.*`` points, a
:class:`~repro.core.engine.WheelEntry` for ``wheel.*`` points.  The
hook runs in the thread executing the operation, possibly while that
thread holds the primitive's internal locks (each point's docstring entry
in ``docs/testing.md`` says which); it may block the thread (that is the
point), but must not call back into the primitive.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = [
    "enabled",
    "install",
    "uninstall",
    "fire",
    "POINTS",
    "BLOCKING_POINTS",
    "ENGINE_PARK_POINTS",
]

#: Read by every instrumented site; True only between install/uninstall.
enabled = False

_hook: Callable[[str, object], None] | None = None
_install_lock = threading.Lock()

#: Every compiled-in sync point, grouped by protocol position.  Kept as
#: data so the testkit and the docs can enumerate them; the strings at
#: the call sites are the source of truth and are asserted against this
#: registry by the testkit's self-tests.
POINTS = frozenset(
    {
        # MonotonicCounter.increment
        "increment.lock",      # before acquiring the counter lock
        "increment.release",   # inside the lock, before marking nodes released
        "increment.drain",     # inside the lock, before the _draining insert
        "increment.unlock",    # after the critical section, before the signal pass
        "increment.signal",    # before each node.signal() of the coalesced pass
        # MonotonicCounter.check / _park
        "check.lock",          # slow path, before acquiring the counter lock
        "park.enter",          # registered, before parking on the engine slot
        "park.verdict",        # no lock held, after the timer wheel won the claim
        "park.adjudicate",     # timeout path, before acquiring the counter lock
        "park.drain",          # last leaver, before the _draining pop
        # MonotonicCounter.subscribe / CounterSubscription.cancel
        "subscribe.lock",      # before acquiring the counter lock to register
        "subscribe.cancel",    # before acquiring the counter lock to deregister
        # WaitNode.signal (fired with the node, not the counter)
        "node.signal",         # before publishing signaled + the slot sets
        "node.subscribers",    # outside both locks, before firing callbacks
        # ShardedCounter
        "shard.lock",          # increment, before acquiring the shard lock
        "shard.flush",         # increment, before publishing a full batch centrally
        "sharded.register",    # check/subscribe, before taking a checker slot
        "sharded.drain",       # before sweeping every shard into the central counter
        # MultiWait
        "multiwait.fire",      # subscription callback, before taking the MultiWait lock
        "multiwait.park",      # wait_all/wait_any, before taking the MultiWait lock
        "multiwait.close",     # close, before taking the MultiWait lock
        # repro.dist.GCounter (replication state of the counter fabric)
        "gcounter.lock",       # bump/merge, before acquiring the contributions lock
        "gcounter.merge",      # inside the lock, before applying a digest's maxes
        "gcounter.publish",    # after the lock, before raising the wait mirror
        # repro.apps.ratelimit (the counter-backed quota service)
        "ratelimit.lock",      # try_acquire, before acquiring the entry lock
        "ratelimit.roll",      # inside the entry lock, before retiring a window
        "ratelimit.evict",     # limiter lock held, before evicting an LRU entry
        # Engine claim races (fired with the Doorbell / WheelEntry)
        "doorbell.ring",       # ring, before the pending-token pop
        "doorbell.deliver",    # ring, token won, before setting the slot
        "doorbell.wait",       # wait, before parking on the doorbell slot
        "wheel.release",       # release pass, before the entry's claim pop
        "wheel.timeout",       # sweeper/timeout side, before the claim pop
    }
)

#: Points after which the firing thread is expected to block in a real
#: primitive (a parking-slot wait).  Schedulers treat a thread granted
#: through one of these as immediately off-schedule instead of waiting
#: out a stall timeout.
BLOCKING_POINTS = frozenset({"park.enter", "multiwait.park", "doorbell.wait"})

#: The subset of BLOCKING_POINTS where a pending *timed* wake is always
#: visible to the harness: counter and MultiWait parks stage their
#: timeouts through the shared timer wheel (after a ~20ms grace wait),
#: so "every unfinished worker parked here + wheel empty + short
#: silence" proves a deadlock instantly.  ``doorbell.wait`` is excluded
#: — its optional timeout lives in the slot wait itself, invisible from
#: outside.
ENGINE_PARK_POINTS = frozenset({"park.enter", "multiwait.park"})


def install(hook: Callable[[str, object], None]) -> None:
    """Install ``hook`` as the process-wide sync-point hook.

    Raises :class:`RuntimeError` if one is already installed — schedules
    must not overlap.
    """
    global _hook, enabled
    if not callable(hook):
        raise TypeError(f"hook must be callable, got {hook!r}")
    with _install_lock:
        if _hook is not None:
            raise RuntimeError("a sync-point hook is already installed")
        _hook = hook
        enabled = True


def uninstall() -> None:
    """Remove the installed hook (idempotent)."""
    global _hook, enabled
    with _install_lock:
        enabled = False
        _hook = None


def fire(point: str, obj: object) -> None:
    """Deliver ``point`` to the installed hook, if any.

    Snapshots the hook before calling so a concurrent :func:`uninstall`
    can never produce a ``None`` call — late fires from threads that
    outlive their schedule simply fall through.
    """
    hook = _hook
    if hook is not None:
        hook(point, obj)
