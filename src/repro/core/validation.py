"""Operand validation shared by every counter implementation.

The paper types ``Increment`` amounts and ``Check`` levels as C++
``unsigned int``.  Python has no unsigned type, so we validate explicitly:
operands must be integers (``bool`` excluded) and nonnegative.
"""

from __future__ import annotations

from repro.core.errors import CounterValueError

__all__ = ["validate_amount", "validate_level", "validate_timeout"]


def _as_nonnegative_int(value: object, what: str) -> int:
    # bool is an int subclass; accepting it silently invites bugs like
    # increment(ok) where ok was meant to be a count.
    if isinstance(value, bool) or not isinstance(value, int):
        raise CounterValueError(f"{what} must be an int, got {type(value).__name__}")
    if value < 0:
        raise CounterValueError(f"{what} must be >= 0, got {value}")
    return value


def validate_amount(amount: object) -> int:
    """Validate an ``increment`` amount; returns it typed as ``int``."""
    return _as_nonnegative_int(amount, "increment amount")


def validate_level(level: object) -> int:
    """Validate a ``check`` level; returns it typed as ``int``."""
    return _as_nonnegative_int(level, "check level")


def validate_timeout(timeout: object) -> float | None:
    """Validate an optional timeout in seconds."""
    if timeout is None:
        return None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
        raise CounterValueError(f"timeout must be a number or None, got {type(timeout).__name__}")
    if timeout < 0:
        raise CounterValueError(f"timeout must be >= 0, got {timeout}")
    return float(timeout)
