"""Waiting-list strategies for monotonic counters.

Section 7 of the paper represents a counter's suspended threads as *"a
dynamically changing ordered list of condition variables, with one node for
each level on which one or more threads are waiting"*.  This module
implements that data structure twice:

* :class:`LinkedWaitList` — the literal §7 algorithm: an ordered singly
  linked list searched/spliced in O(L) where L is the number of distinct
  waiting levels.  This is the canonical implementation and the one whose
  states reproduce Figure 2.
* :class:`HeapWaitList` — a binary-heap + hash-map variant with O(log L)
  insertion and O(k log L) release of k nodes.  Functionally identical;
  exists to let the E8 benchmark quantify how much the list discipline
  matters.

Both structures assume the **caller holds the counter's lock** for every
call; they contain no locking of their own.  Each node owns a
``threading.Condition`` created over that same lock, so waiting threads
suspend on their level's private queue exactly as in the paper.
"""

from __future__ import annotations

import heapq
import threading
from typing import Iterator, Protocol

from repro.core.snapshot import WaitNodeSnapshot

__all__ = ["WaitNode", "WaitList", "LinkedWaitList", "HeapWaitList"]


class WaitNode:
    """One distinct waiting level: the four-component node of §7.

    ``level``     the counter value the waiters need,
    ``count``     number of threads currently waiting at that level,
    ``condition`` the per-level suspension queue (shares the counter lock),
    ``next``      the link used by :class:`LinkedWaitList`.

    ``signaled`` records whether :meth:`signal` has run — the paper's *set*
    flag.  Woken threads use it to distinguish a genuine release from a
    spurious wakeup, and the last woken thread deallocates the node (here:
    the wait list simply drops its reference; ``count`` hitting zero with
    ``signaled`` True is the "deallocate" point).
    """

    __slots__ = ("level", "count", "condition", "signaled", "next")

    def __init__(self, level: int, lock: threading.Lock) -> None:
        self.level = level
        self.count = 0
        self.condition = threading.Condition(lock)
        self.signaled = False
        self.next: WaitNode | None = None

    def signal(self) -> None:
        """Mark the node set and wake every thread suspended on it."""
        self.signaled = True
        self.condition.notify_all()

    def snapshot(self) -> WaitNodeSnapshot:
        return WaitNodeSnapshot(level=self.level, count=self.count, signaled=self.signaled)


class WaitList(Protocol):
    """Strategy interface: an ordered collection of :class:`WaitNode`.

    All methods require the counter lock to be held by the caller.
    """

    def find_or_insert(self, level: int) -> WaitNode:
        """Return the node for ``level``, creating and linking it if absent."""
        ...

    def release_through(self, value: int) -> list[WaitNode]:
        """Unlink and return all nodes with ``level <= value``, in level order."""
        ...

    def discard_if_empty(self, node: WaitNode) -> bool:
        """Drop ``node`` if it has no waiters (timeout cleanup). True if dropped."""
        ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[WaitNode]: ...


class LinkedWaitList:
    """The paper's ordered singly linked list of wait nodes.

    The list is kept sorted ascending by level and never contains a level
    less than or equal to the counter value (the counter maintains that
    invariant by calling :meth:`release_through` inside every increment).
    """

    __slots__ = ("_lock", "_head", "_size")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._head: WaitNode | None = None
        # Node count, maintained incrementally so ``len()`` is O(1) —
        # ``reset()`` and the stats hot path call it on every operation.
        self._size = 0

    def find_or_insert(self, level: int) -> WaitNode:
        prev: WaitNode | None = None
        node = self._head
        while node is not None and node.level < level:
            prev, node = node, node.next
        if node is not None and node.level == level:
            return node
        fresh = WaitNode(level, self._lock)
        fresh.next = node
        if prev is None:
            self._head = fresh
        else:
            prev.next = fresh
        self._size += 1
        return fresh

    def release_through(self, value: int) -> list[WaitNode]:
        released: list[WaitNode] = []
        node = self._head
        while node is not None and node.level <= value:
            released.append(node)
            node = node.next
        if released:
            self._head = node
            released[-1].next = None
            self._size -= len(released)
        return released

    def discard_if_empty(self, node: WaitNode) -> bool:
        if node.count != 0:
            return False
        prev: WaitNode | None = None
        cur = self._head
        while cur is not None and cur is not node:
            prev, cur = cur, cur.next
        if cur is None:
            return False  # already released by an increment
        if prev is None:
            self._head = cur.next
        else:
            prev.next = cur.next
        cur.next = None
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[WaitNode]:
        node = self._head
        while node is not None:
            yield node
            node = node.next


class HeapWaitList:
    """Binary-heap waiting list: same contract, O(log L) insertion.

    A ``dict`` maps levels to live nodes (so ``find_or_insert`` is O(1) on
    hit) and a heap of levels yields them in order for release.  Entries
    whose level has been discarded (timeout cleanup) are skipped lazily.
    """

    __slots__ = ("_lock", "_nodes", "_heap")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._nodes: dict[int, WaitNode] = {}
        self._heap: list[int] = []

    def find_or_insert(self, level: int) -> WaitNode:
        node = self._nodes.get(level)
        if node is None:
            node = WaitNode(level, self._lock)
            self._nodes[level] = node
            heapq.heappush(self._heap, level)
        return node

    def release_through(self, value: int) -> list[WaitNode]:
        released: list[WaitNode] = []
        while self._heap and self._heap[0] <= value:
            level = heapq.heappop(self._heap)
            node = self._nodes.pop(level, None)
            if node is not None:
                released.append(node)
        return released

    def discard_if_empty(self, node: WaitNode) -> bool:
        if node.count != 0:
            return False
        live = self._nodes.get(node.level)
        if live is not node:
            return False  # already released by an increment
        del self._nodes[node.level]
        # The heap entry is left behind and skipped lazily on release.
        return True

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[WaitNode]:
        for level in sorted(self._nodes):
            yield self._nodes[level]
