"""Waiting-list strategies and the wait policy for monotonic counters.

Section 7 of the paper represents a counter's suspended threads as *"a
dynamically changing ordered list of condition variables, with one node for
each level on which one or more threads are waiting"*.  This module
implements that data structure twice:

* :class:`LinkedWaitList` — the literal §7 algorithm: an ordered singly
  linked list searched/spliced in O(L) where L is the number of distinct
  waiting levels.  This is the canonical implementation and the one whose
  states reproduce Figure 2.
* :class:`HeapWaitList` — a binary-heap + hash-map variant with O(log L)
  insertion and O(k log L) release of k nodes.  Functionally identical;
  exists to let the E8 benchmark quantify how much the list discipline
  matters.

Both structures assume the **caller holds the counter's lock** for every
call; they contain no locking of their own.  Waiters park on the unified
wakeup engine's per-thread :class:`~repro.core.engine.ParkingSlot`\\ s:
each node carries the list of slots (or, for timed waits that have
outlived their grace phase and escalated onto the timer wheel,
claim-guarded :class:`~repro.core.engine.WheelEntry` handles) of the
threads suspended
at its level, and a release wakes the whole level by setting each slot —
no per-level lock, no lock handoff, outside the counter lock.  That
split is what lets ``increment`` hand a whole batch of satisfied levels
their wakeups *outside* the counter lock, so woken threads resume
without re-convoying through it (see the no-lost-wakeup argument in
``docs/api.md`` and the slot mapping in ``docs/engine.md``).

:class:`WaitPolicy` tunes the suspend side: a ``check`` that misses the
fast path may first *spin* on the monotone value (bounded, lock-free,
sound by stability) before paying for the slot park.  The spin budget
adapts per counter: satisfied-while-spinning grows it, a futile spin
shrinks it.  Whether spinning is worth anything depends on the runtime:
on free-threaded multi-CPU hosts the incrementer runs in parallel with
the spinner, so short handoffs complete without a park; under the GIL —
or on a single-CPU host, whatever the build — the value *cannot*
advance while the spinner runs, and a parked thread is woken far sooner
(the slot set forces the handoff) than a spinner regains a satisfied
read — measured at ~5x slower on the ping-pong benchmark.  The default
policy keys on the build (:data:`PARK_ONLY` when the GIL is enabled,
:data:`SPIN_THEN_PARK` when it is not), and :data:`SPIN_THEN_PARK`
additionally carries ``park_on_serial_hosts=True`` so a counter
constructed with it on a serial host (GIL build or ``os.cpu_count() <=
1``) zeroes its effective spin budget instead of pessimizing every
handoff.
"""

from __future__ import annotations

import heapq
import os
import sys
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

from repro.core import syncpoints as _sp
from repro.core.snapshot import WaitNodeSnapshot
from repro.obs.events import next_token as _next_token

__all__ = [
    "WaitPolicy",
    "DEFAULT_WAIT_POLICY",
    "PARK_ONLY",
    "SPIN_THEN_PARK",
    "SERIAL_HOST",
    "WaitNode",
    "WaitList",
    "LinkedWaitList",
    "HeapWaitList",
]


@dataclass(frozen=True, slots=True)
class WaitPolicy:
    """How a ``check`` that cannot return immediately should wait.

    A missed check first spins — bounded lock-free re-reads of the
    counter's monotone value — and only then parks on the level's
    condition variable.  Spinning is sound for exactly the reason the
    fast path is: the awaited predicate is *stable*, so a stale
    satisfied read can never be wrong.  Under the GIL a tight loop would
    starve the incrementing thread, so the spin yields the interpreter
    (``time.sleep(0)``) every ``yield_every`` iterations.

    Parameters
    ----------
    spin:
        Initial spin budget (re-reads) before parking.  ``0`` disables
        spinning entirely (pure park — the pre-overhaul behavior).
    spin_min / spin_max:
        Bounds for the adaptive budget.  With ``adaptive=True`` the
        counter doubles its budget each time a spin is satisfied and
        halves it each time one parks anyway, clamped to this range.
        ``spin_min`` should stay >= 1 when spinning is wanted at all,
        or a shrunk-to-zero budget could never recover.
    yield_every:
        Yield the GIL after this many spin iterations (``0`` never
        yields — only safe on free-threaded builds).
    adaptive:
        ``False`` pins the budget at ``spin`` forever.
    park_on_serial_hosts:
        ``True`` lets a counter zero its *effective* spin budget when
        the host cannot run the incrementer concurrently with the
        spinner (GIL-enabled build, or a single-CPU machine even
        free-threaded).  On such hosts every spin iteration only delays
        the thread that would satisfy it — measured at ~5x slower on
        the 1-CPU ping-pong bench — so :data:`SPIN_THEN_PARK` sets this
        flag and degrades gracefully instead of pessimizing.  The
        policy's declared ``spin`` values are untouched (this is a
        per-counter effective-budget decision, so explicitly-tuned
        custom policies keep exactly what they asked for).
    """

    spin: int = 96
    spin_min: int = 4
    spin_max: int = 1024
    yield_every: int = 8
    adaptive: bool = True
    park_on_serial_hosts: bool = False

    def __post_init__(self) -> None:
        for field_name in ("spin", "spin_min", "spin_max", "yield_every"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"{field_name} must be a nonnegative int, got {value!r}")
        if self.spin_min > self.spin_max:
            raise ValueError(
                f"spin_min ({self.spin_min}) must not exceed spin_max ({self.spin_max})"
            )
        if not self.spin_min <= self.spin <= self.spin_max:
            raise ValueError(
                f"spin ({self.spin}) must lie in [spin_min, spin_max] "
                f"= [{self.spin_min}, {self.spin_max}]"
            )


#: The adaptive spin-then-park policy.  Worth it only when the
#: incrementer can actually run while the checker spins, so it opts in
#: to the serial-host park-only degradation (see ``park_on_serial_hosts``).
SPIN_THEN_PARK = WaitPolicy(park_on_serial_hosts=True)

#: Never spin: park on the engine slot immediately.
PARK_ONLY = WaitPolicy(spin=0, spin_min=0, spin_max=0)


def _gil_enabled() -> bool:
    # Python 3.13+ free-threaded builds expose sys._is_gil_enabled();
    # its absence means a GIL build.
    return bool(getattr(sys, "_is_gil_enabled", lambda: True)())


#: True when the incrementer cannot make progress while a checker spins:
#: a GIL-enabled build (one thread holds the interpreter), or a host
#: with a single CPU (nowhere for the incrementer to run) even
#: free-threaded.  Computed once at import; counters consult it when
#: their policy carries ``park_on_serial_hosts=True``.
SERIAL_HOST = _gil_enabled() or (os.cpu_count() or 1) <= 1


#: Build-dependent default.  Under the GIL a spinner holds the
#: interpreter away from the incrementer (``time.sleep(0)`` does not
#: force a switch), so parking wins by a wide measured margin; with the
#: GIL disabled the spin phase turns short handoffs into lock-free hits.
DEFAULT_WAIT_POLICY = PARK_ONLY if _gil_enabled() else SPIN_THEN_PARK


class WaitNode:
    """One distinct waiting level: the four-component node of §7.

    ``level``       the counter value the waiters need,
    ``count``       number of threads currently waiting at that level,
    ``waiters``     the per-waiter engine handles parked at the level —
                    a :class:`~repro.core.engine.ParkingSlot` per waiter,
                    swapped (under the counter lock) for a
                    :class:`~repro.core.engine.WheelEntry` once a timed
                    wait escalates past its grace phase onto the timer
                    wheel (both expose ``release_wake()``),
    ``next``        the link used by :class:`LinkedWaitList`.

    Two flags track a release, split across the protocol's two sides:

    ``released`` is set **under the counter lock** when an increment
    unlinks the node from the wait list; it is what the timeout path
    (which holds the counter lock) consults to distinguish "my wait
    genuinely expired" from "I was released concurrently".
    ``signaled`` — the paper's *set* flag — is set by :meth:`signal`,
    outside the counter lock, immediately before the slot wake sweep.
    Under the engine the slot set itself is what a parked thread
    synchronizes on (a set-before-wait is never lost by semaphore
    semantics, so the old condvar re-test window does not exist);
    ``signaled`` remains the observable set flag for snapshots,
    introspection, and the stray-set re-check loop.

    ``waiters`` is mutated only under the counter lock and only while
    the node is unreleased (registration appends, timeout adjudication
    removes); once ``released`` is set no waiter can register or
    deregister, so the signal pass iterates it without a lock.
    ``countdown`` is the drain bookkeeping: a copy of ``waiters`` frozen
    inside the releasing increment's critical section, from which each
    resuming waiter atomically pops one token — the waiter that empties
    it drops the node from the counter's draining set (the paper's
    deallocation point) with no lock at all.

    ``subscribers`` holds callbacks registered by
    :class:`repro.core.multiwait.MultiWait`; they fire exactly once, from
    :meth:`signal`, after the node's own waiters have been woken.
    """

    __slots__ = (
        "level",
        "count",
        "waiters",
        "countdown",
        "signaled",
        "released",
        "released_ts",
        "token",
        "subscribers",
        "next",
    )

    def __init__(self, level: int) -> None:
        self.level = level
        self.count = 0
        self.waiters: list = []
        self.countdown: list | None = None
        self.signaled = False
        self.released = False
        # Stamped by the observability layer's release hook (between the
        # increment's critical section and the signal pass) so woken
        # threads can report release-to-unpark latency; None whenever
        # observability is off.
        self.released_ts: float | None = None
        # Schema-v2 correlation id: the node's release event and every
        # park/unpark/timeout/sub_fire on it carry this token.  (The
        # engine's parking slots are anonymous by design — the causal
        # layer correlates release->unpark through the *node*, which
        # both sides share.)  Allocated unconditionally — node
        # construction is the park slow path, never a lock-free fast
        # path.
        self.token = _next_token()
        self.subscribers: list[Callable[[], None]] | None = None
        self.next: WaitNode | None = None

    def signal(self) -> None:
        """Mark the node set, wake its waiters, fire its subscribers.

        Called *without* the counter lock (the coalesced release pass).
        The wake sweep is "set N slots": one ``release_wake()`` per
        waiter, each a claim check (timed waits) plus a raw lock release
        — no per-level lock, no condvar handoff.  Subscriber callbacks
        run in the incrementing thread, after the wakes, outside every
        lock — they must be quick and must not raise.
        """
        if _sp.enabled:
            _sp.fire("node.signal", self)
        self.signaled = True
        for waiter in self.waiters:
            waiter.release_wake()
        subscribers = self.subscribers
        if subscribers:
            if _sp.enabled:
                _sp.fire("node.subscribers", self)
            # Safe without a lock: subscribe/unsubscribe mutate this list
            # only under the counter lock and only while the node is
            # unreleased; `released` was set before this call.
            self.subscribers = None
            for callback in subscribers:
                callback()

    def snapshot(self) -> WaitNodeSnapshot:
        # The *set* flag is derived from ``released``, not ``signaled``:
        # snapshot() holds the counter lock, under which ``released`` is
        # the release's linearization point, whereas ``signaled`` trails
        # it (set by the out-of-lock signal pass) and may still be False
        # for a node that is already drained.  ``signaled`` is never set
        # without ``released``, so this loses nothing.  For a released
        # node the live waiter count is the countdown's length (waiters
        # pop as they resume); before release it is ``count``, which the
        # counter lock protects.
        countdown = self.countdown
        remaining = len(countdown) if countdown is not None else self.count
        return WaitNodeSnapshot(level=self.level, count=remaining, signaled=self.released)


class WaitList(Protocol):
    """Strategy interface: an ordered collection of :class:`WaitNode`.

    All methods require the counter lock to be held by the caller.
    """

    def find_or_insert(self, level: int) -> WaitNode:
        """Return the node for ``level``, creating and linking it if absent."""
        ...

    def release_through(self, value: int) -> list[WaitNode]:
        """Unlink and return all nodes with ``level <= value``, in level order."""
        ...

    def discard_if_empty(self, node: WaitNode) -> bool:
        """Drop ``node`` if it has no waiters (timeout cleanup). True if dropped."""
        ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[WaitNode]: ...


class LinkedWaitList:
    """The paper's ordered singly linked list of wait nodes.

    The list is kept sorted ascending by level and never contains a level
    less than or equal to the counter value (the counter maintains that
    invariant by calling :meth:`release_through` inside every increment).

    ``find_or_insert`` keeps a *start hint* — the node the previous call
    returned.  Registrations arriving in ascending level order (the
    common shape: a cohort of threads fanning in over a ladder of
    levels) resume the walk from the hint instead of the head, making
    the run amortized O(1) while arbitrary orders stay plain O(L).  The
    hint is dropped whenever the node it names leaves the list
    (released by an increment or discarded by timeout cleanup): walking
    from an unlinked node would splice new waiters into a dead suffix
    and lose them.
    """

    __slots__ = ("_head", "_size", "_hint")

    def __init__(self) -> None:
        self._head: WaitNode | None = None
        # Node count, maintained incrementally so ``len()`` is O(1) —
        # ``reset()`` and the stats hot path call it on every operation.
        self._size = 0
        self._hint: WaitNode | None = None

    def find_or_insert(self, level: int) -> WaitNode:
        prev: WaitNode | None = None
        hint = self._hint
        if hint is not None and hint.level <= level:
            if hint.level == level:
                return hint
            prev, node = hint, hint.next
        else:
            node = self._head
        while node is not None and node.level < level:
            prev, node = node, node.next
        if node is not None and node.level == level:
            self._hint = node
            return node
        fresh = WaitNode(level)
        fresh.next = node
        if prev is None:
            self._head = fresh
        else:
            prev.next = fresh
        self._size += 1
        self._hint = fresh
        return fresh

    def release_through(self, value: int) -> list[WaitNode]:
        released: list[WaitNode] = []
        node = self._head
        while node is not None and node.level <= value:
            released.append(node)
            node = node.next
        if released:
            hint = self._hint
            if hint is not None and hint.level <= value:
                self._hint = None
            self._head = node
            released[-1].next = None
            self._size -= len(released)
        return released

    def discard_if_empty(self, node: WaitNode) -> bool:
        if node.count != 0:
            return False
        prev: WaitNode | None = None
        cur = self._head
        while cur is not None and cur is not node:
            prev, cur = cur, cur.next
        if cur is None:
            return False  # already released by an increment
        if self._hint is cur:
            self._hint = None
        if prev is None:
            self._head = cur.next
        else:
            prev.next = cur.next
        cur.next = None
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[WaitNode]:
        node = self._head
        while node is not None:
            yield node
            node = node.next


class HeapWaitList:
    """Binary-heap waiting list: same contract, O(log L) insertion.

    A ``dict`` maps levels to live nodes (so ``find_or_insert`` is O(1) on
    hit) and a heap of levels yields them in order for release.  Entries
    whose level has been discarded (timeout cleanup) are skipped lazily.
    """

    __slots__ = ("_nodes", "_heap")

    def __init__(self) -> None:
        self._nodes: dict[int, WaitNode] = {}
        self._heap: list[int] = []

    def find_or_insert(self, level: int) -> WaitNode:
        node = self._nodes.get(level)
        if node is None:
            node = WaitNode(level)
            self._nodes[level] = node
            heapq.heappush(self._heap, level)
        return node

    def release_through(self, value: int) -> list[WaitNode]:
        released: list[WaitNode] = []
        while self._heap and self._heap[0] <= value:
            level = heapq.heappop(self._heap)
            node = self._nodes.pop(level, None)
            if node is not None:
                released.append(node)
        return released

    def discard_if_empty(self, node: WaitNode) -> bool:
        if node.count != 0:
            return False
        live = self._nodes.get(node.level)
        if live is not node:
            return False  # already released by an increment
        del self._nodes[node.level]
        # The heap entry is left behind and skipped lazily on release.
        return True

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[WaitNode]:
        for level in sorted(self._nodes):
            yield self._nodes[level]
