"""Determinacy machinery for counter-synchronized programs (paper §6).

* :class:`~repro.determinism.checker.DeterminismChecker` — instrument a
  run with traced counters and shared variables; get a race verdict that,
  by counter monotonicity, certifies *all* schedules from one execution.
* :mod:`~repro.determinism.equivalence` — determinacy-over-runs and
  sequential-equivalence harnesses.
* Building blocks: vector clocks, the trace context, traced counters,
  instrumented shared variables.
"""

from repro.determinism.checker import DeterminismChecker
from repro.determinism.equivalence import (
    EquivalenceVerdict,
    check_sequential_equivalence,
    collect_results,
    is_deterministic,
    scheduling_jitter,
    sequentially_executable,
)
from repro.determinism.registry import ThreadState, TraceContext
from repro.determinism.report import Access, Race, RaceError, RaceReport
from repro.determinism.shared import Shared
from repro.determinism.traced_counter import TracedCounter
from repro.determinism.vectorclock import VectorClock

__all__ = [
    "DeterminismChecker",
    "TracedCounter",
    "Shared",
    "VectorClock",
    "TraceContext",
    "ThreadState",
    "Access",
    "Race",
    "RaceError",
    "RaceReport",
    "EquivalenceVerdict",
    "check_sequential_equivalence",
    "collect_results",
    "is_deterministic",
    "scheduling_jitter",
    "sequentially_executable",
]
