"""The determinacy checker façade.

One :class:`DeterminismChecker` instruments one program run: create your
counters and shared variables through it, run the program (threaded or
sequential), then ask for the verdict.  Because counter happens-before is
schedule-independent (§6), a race-free verdict from **one** execution
certifies **all** executions of the same program — the checker is the
executable form of the paper's "if the conditions hold in any one
execution, they hold in all executions".

>>> from repro.determinism import DeterminismChecker
>>> from repro.structured import multithreaded
>>> checker = DeterminismChecker()
>>> x = checker.shared(0, "x")
>>> c = checker.counter("xCount")
>>> def first():
...     c.check(0); x.modify(lambda v: v + 1); c.increment(1)
>>> def second():
...     c.check(1); x.modify(lambda v: v * 2); c.increment(1)
>>> _ = multithreaded(first, second)
>>> checker.report().race_free
True
>>> x.peek()
2
"""

from __future__ import annotations

from typing import TypeVar

from repro.determinism.registry import TraceContext
from repro.determinism.report import Race, RaceError, RaceReport
from repro.determinism.shared import Shared
from repro.determinism.traced_counter import TracedCounter

T = TypeVar("T")

__all__ = ["DeterminismChecker"]


class DeterminismChecker:
    """Factory + collector for one instrumented program run."""

    def __init__(self) -> None:
        self._context = TraceContext()
        self._races: list[Race] = []
        self._counters: list[TracedCounter] = []
        self._shared: list[Shared] = []

    def counter(self, name: str | None = None) -> TracedCounter:
        """A monotonic counter whose operations create happens-before edges."""
        counter = TracedCounter(self._context, name=name)
        self._counters.append(counter)
        return counter

    def shared(self, initial: T, name: str | None = None) -> Shared[T]:
        """An instrumented shared variable under the §6 discipline."""
        label = name if name is not None else f"shared_{len(self._shared)}"
        variable: Shared[T] = Shared(
            initial, name=label, context=self._context, sink=self._races
        )
        self._shared.append(variable)
        return variable

    @property
    def context(self) -> TraceContext:
        return self._context

    def report(self) -> RaceReport:
        """The verdict for the run instrumented so far."""
        return RaceReport(races=list(self._races))

    def assert_race_free(self) -> None:
        """Raise :class:`~repro.determinism.report.RaceError` on any race."""
        report = self.report()
        if not report.race_free:
            raise RaceError(str(report))

    def __repr__(self) -> str:
        return (
            f"<DeterminismChecker counters={len(self._counters)} "
            f"shared={len(self._shared)} races={len(self._races)}>"
        )
