"""Sequential-equivalence and determinacy harnesses (paper §6).

Two claims become executable here:

* **Determinacy**: a counter-synchronized, discipline-obeying program
  yields one result over many threaded runs
  (:func:`collect_results` / :func:`is_deterministic`).
* **Sequential equivalence**: that one result equals the result of
  executing the program with the ``multithreaded`` keyword ignored
  (:func:`check_sequential_equivalence`).

Programs are passed as zero-argument callables that build all their state
fresh and return a comparable result; the harness runs them under
:func:`~repro.structured.execution.sequential_execution` and in threaded
mode with optional scheduling jitter to shake out timing-dependent
behaviour.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.structured.execution import sequential_execution

T = TypeVar("T")

__all__ = [
    "EquivalenceVerdict",
    "check_sequential_equivalence",
    "collect_results",
    "is_deterministic",
    "scheduling_jitter",
    "sequentially_executable",
]


def scheduling_jitter(max_seconds: float = 0.001, rng: random.Random | None = None) -> None:
    """Sleep a small random duration to perturb thread interleaving.

    Programs under determinacy test call this between operations so that
    "deterministic over many runs" is evidence about synchronization
    structure rather than about a quiet machine.
    """
    delay = (rng.random() if rng is not None else random.random()) * max_seconds
    if delay > 0:
        time.sleep(delay)


def collect_results(
    program: Callable[[], T],
    *,
    runs: int = 10,
    key: Callable[[T], object] = lambda r: r,
) -> list[T]:
    """Run ``program`` repeatedly (threaded mode); return all results.

    ``key`` maps results to a comparable/hashable projection when the raw
    result is not hashable (e.g. lists).
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    return [program() for _ in range(runs)]


def is_deterministic(
    program: Callable[[], T],
    *,
    runs: int = 10,
    key: Callable[[T], object] = lambda r: r,
) -> bool:
    """True iff ``runs`` threaded executions all produce the same result."""
    results = collect_results(program, runs=runs)
    projections = {key(result) for result in results}
    return len(projections) == 1


def sequentially_executable(program: Callable[[], T], *, budget: float = 1.0) -> bool:
    """Probe the §6 precondition: does sequential execution avoid deadlock?

    The theorem reads: *if sequential execution does not deadlock,
    multithreaded execution cannot deadlock and equals it.*  This helper
    tests the antecedent by running ``program`` under sequential
    execution in a watchdog thread; exceeding ``budget`` seconds (or
    raising a blocking-related error) is treated as a sequential
    deadlock.  Heuristic by nature — deadlock is undecidable — but exact
    for programs whose compute is fast relative to ``budget``, which is
    what test suites use it for (§4.5's Floyd-Warshall is the canonical
    *False*; §5.2/§5.3 programs the canonical *True*).
    """
    import threading

    outcome: list[bool] = []

    def run() -> None:
        try:
            with sequential_execution():
                program()
            outcome.append(True)
        except BaseException:  # noqa: BLE001 - any failure => not executable
            outcome.append(False)

    watchdog = threading.Thread(target=run, daemon=True)
    watchdog.start()
    watchdog.join(budget)
    return bool(outcome) and outcome[0]


@dataclass(slots=True)
class EquivalenceVerdict:
    """Outcome of a sequential-equivalence check."""

    sequential_result: object
    threaded_results: list = field(default_factory=list)
    distinct_threaded: int = 0
    equivalent: bool = False

    def __str__(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        return (
            f"{verdict}: sequential={self.sequential_result!r}, "
            f"{len(self.threaded_results)} threaded runs, "
            f"{self.distinct_threaded} distinct threaded result(s)"
        )


def check_sequential_equivalence(
    program: Callable[[], T],
    *,
    runs: int = 10,
    key: Callable[[T], object] = lambda r: r,
) -> EquivalenceVerdict:
    """Compare sequential execution of ``program`` against threaded runs.

    The program must construct all of its state (counters, shared data,
    structured constructs) inside the call so each execution is fresh.
    """
    with sequential_execution():
        sequential_result = program()
    threaded = collect_results(program, runs=runs)
    projections = {key(result) for result in threaded}
    return EquivalenceVerdict(
        sequential_result=sequential_result,
        threaded_results=threaded,
        distinct_threaded=len(projections),
        equivalent=len(projections) == 1 and key(sequential_result) in projections,
    )
