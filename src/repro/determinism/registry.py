"""Per-thread identity and clock registry for instrumented runs.

All instrumented objects (traced counters, shared variables) in one
analysis belong to a :class:`TraceContext`.  The context hands each OS
thread a small dense index and a :class:`VectorClock`, both created
lazily on the thread's first instrumented operation.

A fresh context per analyzed program run keeps runs independent; contexts
are cheap and carry their own lock.
"""

from __future__ import annotations

import threading

from repro.determinism.vectorclock import VectorClock
from repro.structured.execution import current_logical_thread

__all__ = ["TraceContext", "ThreadState"]


class ThreadState:
    """One thread's analysis state: dense index + vector clock."""

    __slots__ = ("tid", "clock")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.clock = VectorClock()

    def __repr__(self) -> str:
        return f"<ThreadState T{self.tid} {self.clock!r}>"


class TraceContext:
    """Registry handing each *logical* thread its analysis state.

    Identity is the statement token planted by the structured constructs
    (:func:`repro.structured.execution.current_logical_thread`), so the
    analysis sees the multithreaded program's thread structure even when
    the program executes sequentially — which is what makes the §6
    verdict independent of the execution mode.  Code running outside any
    construct falls back to per-OS-thread identity via a per-context
    ``threading.local`` (not OS thread idents, which platforms recycle).

    Thread indices are dense (0, 1, 2, ...) in first-touch order, so
    vector clocks stay small and race reports readable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_tid = 0
        self._local = threading.local()
        self._by_token: dict[object, ThreadState] = {}

    def state(self) -> ThreadState:
        """The calling logical thread's state, created on first use."""
        token = current_logical_thread()
        if token is not None:
            with self._lock:
                state = self._by_token.get(token)
                if state is None:
                    state = ThreadState(tid=self._next_tid)
                    self._next_tid += 1
                    self._by_token[token] = state
            return state
        state = getattr(self._local, "state", None)
        if state is None:
            with self._lock:
                state = ThreadState(tid=self._next_tid)
                self._next_tid += 1
            self._local.state = state
        return state

    @property
    def thread_count(self) -> int:
        """Number of threads that performed at least one instrumented op."""
        with self._lock:
            return self._next_tid

    def __repr__(self) -> str:
        return f"<TraceContext threads={self.thread_count}>"
