"""Race and ordering-violation reports."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Access", "Race", "RaceReport", "RaceError"]


@dataclass(frozen=True, slots=True)
class Access:
    """One recorded access to a shared variable."""

    variable: str
    kind: str  # "read" | "write"
    tid: int
    clock: object  # VectorClock at access time (copy)

    def __str__(self) -> str:
        return f"{self.kind} of {self.variable!r} by T{self.tid}"


@dataclass(frozen=True, slots=True)
class Race:
    """Two accesses to the same variable not separated by counter operations.

    In the paper's terms: the pair violates the §6 discipline ("each pair
    of operations on a shared variable must be separated by a transitive
    chain of counter operations"), so the program may be nondeterministic.
    """

    first: Access
    second: Access

    def __str__(self) -> str:
        return f"race on {self.first.variable!r}: {self.first} unordered with {self.second}"


class RaceError(AssertionError):
    """Raised by ``assert_race_free`` when races were detected."""


@dataclass(slots=True)
class RaceReport:
    """All races found in one instrumented run."""

    races: list[Race] = field(default_factory=list)

    @property
    def race_free(self) -> bool:
        return not self.races

    @property
    def variables(self) -> set[str]:
        """Names of variables involved in at least one race."""
        return {race.first.variable for race in self.races}

    def __str__(self) -> str:
        if self.race_free:
            return "race-free: the counter-ordering discipline holds"
        lines = [f"{len(self.races)} race(s) detected:"]
        lines += [f"  - {race}" for race in self.races]
        return "\n".join(lines)
