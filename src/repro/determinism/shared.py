"""Instrumented shared variables.

:class:`Shared` wraps a value with ``read``/``write``/``modify`` methods
that record each access together with the accessing thread's vector
clock, and flags any pair of conflicting accesses (at least one a write)
that is **not** ordered by the counter-derived happens-before relation.

Important: instrumentation adds *detection*, not protection.  A ``Shared``
does serialize its own bookkeeping internally, but it deliberately creates
no happens-before edges — only counter operations do — so an undisciplined
program is reported racy even when the GIL or internal locking happened to
serialize the accesses in this particular run.  That is exactly the §6
semantics: the discipline is a property of the synchronization structure,
not of one lucky schedule.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

from repro.determinism.registry import TraceContext
from repro.determinism.report import Access, Race
from repro.determinism.vectorclock import VectorClock

T = TypeVar("T")

__all__ = ["Shared"]


class _Epoch:
    """A (tid, clock-copy) pair for one recorded access."""

    __slots__ = ("tid", "clock")

    def __init__(self, tid: int, clock: VectorClock) -> None:
        self.tid = tid
        self.clock = clock


class Shared(Generic[T]):
    """A shared variable under the §6 counter-ordering discipline.

    Created through
    :meth:`repro.determinism.checker.DeterminismChecker.shared`; races are
    accumulated on the owning checker's report.
    """

    __slots__ = ("_name", "_context", "_sink", "_lock", "_value", "_last_write", "_reads")

    def __init__(
        self,
        value: T,
        *,
        name: str,
        context: TraceContext,
        sink: list[Race],
    ) -> None:
        self._name = name
        self._context = context
        self._sink = sink
        self._lock = threading.Lock()
        self._value = value
        self._last_write: _Epoch | None = None
        self._reads: list[_Epoch] = []

    @property
    def name(self) -> str:
        return self._name

    def read(self) -> T:
        """Read the value, recording the access."""
        state = self._context.state()
        state.clock.tick(state.tid)
        clock = state.clock.copy()
        with self._lock:
            if self._last_write is not None and not self._last_write.clock.happens_before(clock):
                self._report("write", self._last_write, "read", _Epoch(state.tid, clock))
            self._reads.append(_Epoch(state.tid, clock))
            return self._value

    def write(self, value: T) -> None:
        """Write the value, recording the access."""
        state = self._context.state()
        state.clock.tick(state.tid)
        clock = state.clock.copy()
        epoch = _Epoch(state.tid, clock)
        with self._lock:
            if self._last_write is not None and not self._last_write.clock.happens_before(clock):
                self._report("write", self._last_write, "write", epoch)
            for read in self._reads:
                if not read.clock.happens_before(clock):
                    self._report("read", read, "write", epoch)
            self._value = value
            self._last_write = epoch
            self._reads.clear()

    def modify(self, fn: Callable[[T], T]) -> T:
        """Read-modify-write; recorded as a read followed by a write.

        The two recordings share one clock tick pair, mirroring a source
        statement like ``x = x + 1``.  Returns the new value.
        """
        state = self._context.state()
        state.clock.tick(state.tid)
        clock = state.clock.copy()
        epoch = _Epoch(state.tid, clock)
        with self._lock:
            if self._last_write is not None and not self._last_write.clock.happens_before(clock):
                self._report("write", self._last_write, "modify", epoch)
            for read in self._reads:
                if read.tid != state.tid and not read.clock.happens_before(clock):
                    self._report("read", read, "modify", epoch)
            self._value = fn(self._value)
            self._last_write = epoch
            self._reads.clear()
            return self._value

    def peek(self) -> T:
        """Unrecorded read for post-run assertions (never call mid-run)."""
        with self._lock:
            return self._value

    def _report(self, kind1: str, first: _Epoch, kind2: str, second: _Epoch) -> None:
        race = Race(
            first=Access(variable=self._name, kind=kind1, tid=first.tid, clock=first.clock),
            second=Access(variable=self._name, kind=kind2, tid=second.tid, clock=second.clock),
        )
        self._sink.append(race)

    def __repr__(self) -> str:
        return f"<Shared {self._name!r} value={self._value!r}>"
