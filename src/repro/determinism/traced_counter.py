"""A monotonic counter that publishes happens-before edges.

:class:`TracedCounter` behaves exactly like
:class:`~repro.core.counter.MonotonicCounter` (it delegates to one) and
additionally maintains the *release history* needed for precise
counter-aware happens-before:

* every ``increment`` appends ``(value_after, joined_clock_so_far)``;
* a returning ``check(level)`` joins the clock recorded at the **first**
  history entry whose value reached ``level`` — not the counter's current
  clock, which would over-synchronize and hide races.

The precision matters: with over-approximate joins, the §6 "racy" example
(two threads both ``Check(0)``) would appear ordered whenever the schedule
happened to serialize them.  With prefix-precise joins the verdict is
schedule-independent, matching the paper's claim that one execution
certifies all executions.
"""

from __future__ import annotations

import bisect
import threading

from repro.core.api import AbstractCounter
from repro.core.counter import MonotonicCounter
from repro.determinism.registry import TraceContext
from repro.determinism.vectorclock import VectorClock

__all__ = ["TracedCounter"]


class TracedCounter(AbstractCounter):
    """Counter + release-history instrumentation for race checking.

    Parameters
    ----------
    context:
        The :class:`~repro.determinism.registry.TraceContext` of the
        analyzed run; all instrumented objects of one run share it.
    name:
        Label used in reports.
    """

    __slots__ = ("_inner", "_context", "_history_lock", "_values", "_clocks", "_name")

    def __init__(self, context: TraceContext, *, name: str | None = None) -> None:
        self._inner = MonotonicCounter(name=name)
        self._context = context
        self._history_lock = threading.Lock()
        # Parallel arrays: _values[i] is the counter value after the i-th
        # increment; _clocks[i] the join of all incrementer clocks through
        # it.  Entry 0 is the initial state (value 0, empty clock).
        self._values: list[int] = [0]
        self._clocks: list[VectorClock] = [VectorClock()]
        self._name = name

    @property
    def value(self) -> int:
        return self._inner.value

    @property
    def name(self) -> str | None:
        return self._name

    def increment(self, amount: int = 1) -> int:
        state = self._context.state()
        state.clock.tick(state.tid)
        with self._history_lock:
            cumulative = self._clocks[-1].copy()
            cumulative.join(state.clock)
            # Delegate inside the history lock so history order matches the
            # counter's actual value order (increments are serialized).
            new_value = self._inner.increment(amount)
            self._values.append(new_value)
            self._clocks.append(cumulative)
        return new_value

    def check(self, level: int, timeout: float | None = None) -> None:
        self._inner.check(level, timeout=timeout)
        state = self._context.state()
        with self._history_lock:
            # First history entry whose value reached `level`: the precise
            # set of increments this check synchronizes with.
            index = bisect.bisect_left(self._values, level)
            acquired = self._clocks[index]
            state.clock.join(acquired)
        state.clock.tick(state.tid)

    def reset(self) -> None:
        self._inner.reset()
        with self._history_lock:
            self._values = [0]
            self._clocks = [VectorClock()]

    def snapshot(self):
        return self._inner.snapshot()

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<TracedCounter{label} value={self._inner.value}>"
