"""Vector clocks for counter-aware happens-before tracking.

Section 6 of the paper states the shared-variable discipline under which
counter programs are deterministic: *"each pair of operations on a shared
variable must be separated by a transitive chain of counter operations."*
We make that discipline checkable by tracking a vector clock per thread
and deriving happens-before edges from counter operations only:

* ``increment`` by thread T publishes T's clock into the counter's
  release history at the resulting value;
* a ``check(level)`` that returns acquired the joined clocks of exactly
  the increment prefix that first made ``value >= level``.

Because the counter is monotone, that prefix is schedule-independent —
which is precisely why the derived happens-before relation (and hence the
race verdict) is the same for every execution, and why checking *one*
execution suffices (§6, last paragraph).
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["VectorClock"]


class VectorClock:
    """A mutable map thread-index -> event count, with join/compare.

    Comparison follows the usual partial order: ``a <= b`` iff every
    component of ``a`` is <= the corresponding component of ``b``.
    """

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Mapping[int, int] | None = None) -> None:
        self._clocks: dict[int, int] = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def tick(self, tid: int) -> None:
        """Advance thread ``tid``'s own component by one local event."""
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Componentwise max, in place (the 'acquire' of release clocks)."""
        for tid, clock in other._clocks.items():
            if clock > self._clocks.get(tid, 0):
                self._clocks[tid] = clock

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def happens_before(self, other: "VectorClock") -> bool:
        """True iff *every* event in self is visible in ``other`` (self <= other).

        With per-access clocks (thread ticks before each shared access),
        access A ordered-before access B is exactly ``A.clock <= B.clock``.
        """
        return all(clock <= other._clocks.get(tid, 0) for tid, clock in self._clocks.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither ordered before the other: a potential race."""
        return not self.happens_before(other) and not other.happens_before(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # Missing components are zero, so strip explicit zeros for equality.
        a = {t: c for t, c in self._clocks.items() if c}
        b = {t: c for t, c in other._clocks.items() if c}
        return a == b

    def __hash__(self) -> int:  # immutable *views* only; use with care
        return hash(frozenset((t, c) for t, c in self._clocks.items() if c))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._clocks.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"T{t}:{c}" for t, c in self)
        return f"<VC {inner or '∅'}>"
