"""``repro.dist`` — the counter fabric beyond one process.

The paper's determinacy argument (§6) rests on stability: once a
``check(level)`` condition becomes true it stays true, because counters
only grow.  Stability is also exactly what makes a counter *cheap to
distribute* — a stale replica under-reports but never lies, so a
satisfied read needs no coordination at all.  This package cashes that
in on two axes:

* **Shared memory** (:class:`ShmCounter`): processes on one host share a
  fixed-slot segment; each writer owns one 8-byte slot, readers sum the
  slots with a plain scan.  A cross-process ``check`` of an
  already-true condition is a read-only scan — no lock, no syscall.
* **Network** (:class:`CounterService` / :class:`AsyncCounterClient` /
  :class:`ServiceCounter`): an asyncio TCP service holding one
  :class:`GCounter` per name, with client-side increment pipelining
  (one absolute-value frame per flush window), subscription push for
  waiting, and anti-entropy max-merge between peers.

Both are views of the same replication state: a grow-only counter of
per-source maxes (:class:`GCounter`), merged with pointwise max.  See
``docs/dist.md`` for layouts, wire format, and the soundness argument.
"""

from repro.dist.client import AsyncCounterClient, ServiceCounter, open_threadside
from repro.dist.gcounter import GCounter, digests_equal, merge_digests
from repro.dist.service import CounterService
from repro.dist.shm import ShmCounter

__all__ = [
    "AsyncCounterClient",
    "CounterService",
    "GCounter",
    "ServiceCounter",
    "ShmCounter",
    "digests_equal",
    "merge_digests",
    "open_threadside",
]
