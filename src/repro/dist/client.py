"""Clients of the counter service: pipelined asyncio core, thread shim.

:class:`AsyncCounterClient` is the coroutine-side client and the
service's performance story.  ``increment()`` is an ordinary (non-async)
method that only touches process-local state: it grows this source's
absolute contribution and marks the counter dirty.  A flusher task wakes
once per flush window (default 1ms) and ships **one** ``inc`` frame per
dirty counter carrying the absolute contribution — a window's worth of
increments collapses into a single frame, and because the server merges
with max-per-source, coalescing, retransmission, and reordering are all
semantics-preserving.  Compare :meth:`AsyncCounterClient.increment_rpc`,
the one-frame-one-ack baseline the benchmark measures the pipeline
against.

``check()`` rides the service's subscription push (one ``sub`` frame,
one ``reached`` frame when the level is crossed) instead of polling; a
timeout is adjudicated against an authoritative ``get`` before raising
:class:`~repro.core.errors.CheckTimeout`, mirroring the in-process
counter's adjudication discipline — a waiter that raced the push still
returns satisfied.

:class:`ServiceCounter` wraps one named counter for *threads*: it owns a
background event loop (via :func:`open_threadside`), forwards increments
with ``call_soon_threadsafe``, and parks the calling thread through
:func:`repro.aio.bridge.wait_threadside` — the PR-6 engine slot is the
only thread-blocking primitive in the stack.  It registers with the
observability registry, so ``python -m repro.obs dump`` shows
service-backed waiters alongside in-process ones; its reported value is
the last server-acknowledged total, a guaranteed lower bound (stability:
the true total can only be higher).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any

from repro.aio.bridge import wait_threadside
from repro.core.errors import CheckTimeout
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.validation import validate_amount, validate_level
from repro.dist import wire
from repro.obs import hooks as _obs
from repro.obs import registry as _obs_registry
from repro.obs.events import next_token

__all__ = ["AsyncCounterClient", "ServiceCounter", "open_threadside"]

#: Default flush window: how long increments pool before one frame ships.
FLUSH_INTERVAL = 0.001

#: Grace added to a thread-side wait deadline so the server-side timeout
#: adjudication (a ``get`` round-trip) can finish before the thread gives
#: up on the loop entirely.
_THREADSIDE_GRACE = 5.0


class AsyncCounterClient:
    """One connection to a :class:`~repro.dist.service.CounterService`.

    Create with ``await AsyncCounterClient.connect(host, port)``.  All
    methods must run on the connection's event loop (thread-side callers
    go through :class:`ServiceCounter`).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, source: str,
                 flush_interval: float = FLUSH_INTERVAL) -> None:
        self._reader = reader
        self._writer = writer
        self.source = source
        self.flush_interval = flush_interval
        self._contrib: dict[str, int] = {}   # our absolute contribution
        self._known: dict[str, int] = {}     # last server-reported total
        self._dirty: set[str] = set()
        self._riders: dict[str, list[str]] = {}  # counter -> request corrs
        self._dirty_event = asyncio.Event()
        self._ids = itertools.count(1)
        self._replies: dict[Any, asyncio.Future] = {}
        self._subs: dict[Any, asyncio.Future] = {}
        self._closed = False
        self.frames_out = 0
        self._reader_task: asyncio.Task | None = None
        self._flusher_task: asyncio.Task | None = None
        self._obs_label = f"client:{source}"

    @classmethod
    async def connect(cls, host: str, port: int, *, source: str | None = None,
                      flush_interval: float = FLUSH_INTERVAL,
                      ) -> "AsyncCounterClient":
        # limit covers trace_reply frames (StreamReader default is 64 KiB).
        reader, writer = await asyncio.open_connection(
            host, port, limit=wire.MAX_FRAME
        )
        if source is None:
            sock = writer.get_extra_info("sockname")
            source = f"{sock[0]}:{sock[1]}"
        client = cls(reader, writer, source=source, flush_interval=flush_interval)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        client._flusher_task = asyncio.ensure_future(client._flush_loop())
        return client

    # ----------------------------------------------------------- increments

    def increment(self, counter: str, amount: int = 1,
                  corr: str | None = None) -> int:
        """Pool ``amount`` into the next flush; returns our contribution.

        Not a coroutine and never blocks: the cost is two dict writes.
        The wire cost is amortized to at most one frame per counter per
        flush window regardless of call rate — that is the pipelining
        the benchmark quantifies.

        ``corr`` tags this logical increment as a *rider* of whichever
        batched frame eventually carries it: the flusher emits one
        ``frame_ride`` event per rider (``corr`` = the request's token,
        ``op`` = the frame's corr), which is what lets per-request tail
        attribution see through the coalescing
        (:func:`repro.obs.collect.frame_riders`).
        """
        if self._closed:
            raise RuntimeError("client is closed")
        amount = validate_amount(amount)
        total = self._contrib.get(counter, 0) + amount
        self._contrib[counter] = total
        if corr is not None:
            self._riders.setdefault(counter, []).append(corr)
        self._dirty.add(counter)
        self._dirty_event.set()
        return total

    async def flush(self) -> None:
        """Ship every pending contribution and wait for the server's ack."""
        await self._flush_now(acked=True)

    async def increment_rpc(self, counter: str, amount: int = 1) -> int:
        """Unpipelined baseline: one frame, one awaited ack, per call.

        Same merge semantics as :meth:`increment` (ships the absolute
        contribution), so mixing the two is safe; exists so the
        benchmark can measure what the flush window buys.
        """
        amount = validate_amount(amount)
        total = self._contrib.get(counter, 0) + amount
        self._contrib[counter] = total
        self._dirty.discard(counter)  # this frame carries the new floor
        riders = self._riders.pop(counter, None)
        frame = {"op": "inc", "c": counter, "s": self.source, "v": total}
        reply = await self._request(frame)
        if riders and "t" in frame and _obs.enabled:
            for rider in riders:
                _obs.on_dist(self._obs_label, "frame_ride",
                             corr=rider, op=frame["t"])
        self._note_value(counter, reply["v"])
        return reply["v"]

    async def _flush_loop(self) -> None:
        while True:
            await self._dirty_event.wait()
            # The window: everything pooled while we sleep rides one frame.
            await asyncio.sleep(self.flush_interval)
            await self._flush_now(acked=False)

    async def _flush_now(self, *, acked: bool) -> None:
        self._dirty_event.clear()
        dirty, self._dirty = self._dirty, set()
        obs_on = _obs.enabled
        frames = []
        last = None
        for counter in dirty:
            frame = {"op": "inc", "c": counter, "s": self.source,
                     "v": self._contrib[counter]}
            # Riders are popped even with obs off so the tag list cannot
            # accumulate across an enable/disable cycle.
            riders = self._riders.pop(counter, None)
            if obs_on:
                frame["t"] = _obs.next_corr()
                _obs.on_dist(self._obs_label, "frame_send", op="inc",
                             corr=frame["t"], value=frame["v"])
                if riders:
                    for rider in riders:
                        _obs.on_dist(self._obs_label, "frame_ride",
                                     corr=rider, op=frame["t"])
            frames.append(frame)
            last = frame
        if obs_on and frames:
            _obs.on_dist(self._obs_label, "batch_flush", count=len(frames),
                         corr=last["t"])
        if acked and last is None:
            # Nothing pooled, but earlier unacked frames may be in flight:
            # TCP ordering + sequential dispatch make any round trip a
            # barrier, and a `get` creates nothing server-side.
            await self._request({"op": "get", "c": ""})
            return
        if acked:
            last["id"] = next(self._ids)
            future = asyncio.get_running_loop().create_future()
            self._replies[last["id"]] = future
        if not frames:
            return
        self._writer.write(b"".join(wire.encode(f) for f in frames))
        self.frames_out += len(frames)
        await self._writer.drain()
        if acked:
            reply = await future
            self._note_value(last["c"], reply["v"])

    # -------------------------------------------------------------- waiting

    async def value(self, counter: str) -> int:
        """The server's current total for ``counter`` (authoritative)."""
        reply = await self._request({"op": "get", "c": counter})
        self._note_value(counter, reply["v"])
        return reply["v"]

    async def check(self, counter: str, level: int,
                    timeout: float | None = None, *,
                    corr: str | None = None) -> None:
        """Suspend this coroutine until ``counter`` reaches ``level``.

        Flushes our own pending contribution first (a waiter must not
        deadlock on increments it already made), then waits for the
        service's ``reached`` push.  On timeout the verdict is
        adjudicated against an authoritative ``get``: only a confirmed
        shortfall raises :class:`CheckTimeout`.

        ``corr`` overrides the subscription's correlation token with a
        caller-owned one (a load generator's per-request corr), so the
        server's ``push_deliver`` — and hence the whole wire edge in a
        merged trace — is attributed to that request.
        """
        level = validate_level(level)
        if counter in self._dirty:
            await self._flush_now(acked=False)
        sub_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._subs[sub_id] = future
        sub_frame = {"op": "sub", "c": counter, "l": level, "id": sub_id}
        # Wire correlation (schema v3): the sub's token rides the frame,
        # the server echoes it on the reached push and stamps it on the
        # push_deliver event — and the park/unpark pair below carries it
        # too, which is what lets a merged trace link this wait to the
        # server-side increment that ends it.
        obs_on = _obs.enabled
        token = t_park = None
        if not obs_on:
            corr = None
        else:
            if corr is None:
                corr = _obs.next_corr()
            sub_frame["t"] = corr
            token = next_token()
            _obs.on_dist(self._obs_label, "frame_send", op="sub",
                         corr=corr, level=level)
        self._writer.write(wire.encode(sub_frame))
        self.frames_out += 1
        await self._writer.drain()
        if obs_on:
            t_park = _obs.clock()
            _obs.on_dist(self._obs_label, "park", corr=corr, token=token,
                         level=level)
        try:
            reached = await asyncio.wait_for(
                asyncio.shield(future), timeout
            )
        except asyncio.TimeoutError:
            if self._subs.pop(sub_id, None) is not None:
                future.cancel()  # nothing will await it now
            unsub_frame: dict = {"op": "unsub", "id": sub_id}
            if obs_on and _obs.enabled:
                unsub_frame["t"] = corr
                _obs.on_dist(self._obs_label, "frame_send", op="unsub", corr=corr)
            self._writer.write(wire.encode(unsub_frame))
            self.frames_out += 1
            # Adjudicate: the push may have lost the race to the deadline.
            current = await self.value(counter)
            if current >= level:
                if obs_on and _obs.enabled:
                    _obs.on_dist(self._obs_label, "unpark", corr=corr,
                                 token=token, level=level,
                                 wait_s=_obs.clock() - t_park)
                return
            if obs_on and _obs.enabled:
                _obs.on_dist(self._obs_label, "timeout", corr=corr,
                             token=token, level=level,
                             wait_s=_obs.clock() - t_park)
            raise CheckTimeout(
                f"check(level={level}) on {counter!r} unsatisfied after "
                f"{timeout}s (value={current})"
            ) from None
        else:
            if obs_on and _obs.enabled:
                _obs.on_dist(self._obs_label, "unpark", corr=corr,
                             token=token, level=level,
                             wait_s=_obs.clock() - t_park)
            self._note_value(counter, reached["v"])

    # ------------------------------------------------------------- plumbing

    def known_value(self, counter: str) -> int:
        """Last server-reported total — a stable lower bound."""
        return self._known.get(counter, 0)

    def contribution(self, counter: str) -> int:
        """Our own absolute contribution (includes unflushed pooling)."""
        return self._contrib.get(counter, 0)

    def _note_value(self, counter: str, value: int) -> None:
        if self._known.get(counter, 0) < value:
            self._known[counter] = value

    async def _request(self, frame: dict) -> dict:
        frame["id"] = next(self._ids)
        if _obs.enabled:
            frame["t"] = _obs.next_corr()
            _obs.on_dist(self._obs_label, "frame_send", op=frame["op"],
                         corr=frame["t"])
        future = asyncio.get_running_loop().create_future()
        self._replies[frame["id"]] = future
        self._writer.write(wire.encode(frame))
        self.frames_out += 1
        await self._writer.drain()
        return await future

    async def fetch_trace(self) -> dict:
        """The server's event ring (``fetch_trace``): pid-stamped dicts.

        Returns the raw ``trace_reply`` payload — ``events`` (each
        already carrying the server's ``pid``), ``node``, ``pid``,
        ``clock`` (server monotonic at reply build), ``truncated``.
        Feed ``events`` to :func:`repro.obs.collect.merge` alongside the
        local ring to build one cross-process timeline.
        """
        return await self._request({"op": "fetch_trace"})

    async def fetch_metrics(self) -> dict:
        """The server's metrics-registry snapshot (``fetch_metrics``)."""
        return await self._request({"op": "fetch_metrics"})

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionResetError("server closed the connection")
                frame = wire.decode(line)
                op = frame["op"]
                if _obs.enabled:
                    _obs.on_dist(self._obs_label, "frame_recv", op=op,
                                 corr=frame.get("t"))
                if op in ("ack", "value", "trace_reply", "metrics_reply"):
                    future = self._replies.pop(frame["id"], None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif op == "reached":
                    self._note_value(frame["c"], frame["v"])
                    future = self._subs.pop(frame["id"], None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif op == "error":
                    future = self._replies.pop(frame.get("id"), None)
                    if future is not None and not future.done():
                        future.set_exception(RuntimeError(frame["msg"]))
        except (ConnectionError, asyncio.CancelledError, ValueError) as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        for future in (*self._replies.values(), *self._subs.values()):
            if not future.done():
                future.set_exception(ConnectionError(f"connection lost: {exc!r}"))
        self._replies.clear()
        self._subs.clear()

    async def close(self) -> None:
        """Flush pending increments, then tear the connection down."""
        if self._closed:
            return
        self._closed = True
        if self._dirty:
            try:
                await self._flush_now(acked=True)
            except (ConnectionError, asyncio.CancelledError):
                pass
        for task in (self._flusher_task, self._reader_task):
            if task is not None:
                task.cancel()
        self._fail_pending(ConnectionError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:  # pragma: no cover - peer raced the close
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<AsyncCounterClient source={self.source!r} {state} "
                f"frames_out={self.frames_out}>")


class ServiceCounter:
    """Thread-side handle on one service-hosted counter.

    Obtained from :meth:`open_threadside`'s endpoint; every method is
    safe to call from any thread.  Waiting parks the calling thread on
    its PR-6 engine slot via :func:`wait_threadside`; increments are
    fire-and-forget hops onto the connection's loop (pooled into the
    client's flush window like any loop-side increment).

    The handle registers in the observability registry: ``snapshot()``
    reports the last server-acknowledged total (a stable lower bound on
    the true fabric total) and one wait node per thread currently parked
    in :meth:`check`, so dumps and the stall watchdog see cross-process
    waiters exactly like local ones.
    """

    def __init__(self, client: AsyncCounterClient,
                 loop: asyncio.AbstractEventLoop, counter: str) -> None:
        self._client = client
        self._loop = loop
        self._counter = counter
        self._name = f"service:{counter}"
        self._waiting: dict[int, int] = {}   # level -> parked thread count
        self._waiting_lock = threading.Lock()
        self._closed = False
        _obs_registry.register(self)

    # Mirrors the MonotonicCounter surface so callers can swap backends.

    def increment(self, amount: int = 1, *, corr: str | None = None) -> None:
        amount = validate_amount(amount)
        self._loop.call_soon_threadsafe(
            self._client.increment, self._counter, amount, corr
        )

    def check(self, level: int, timeout: float | None = None, *,
              corr: str | None = None) -> None:
        level = validate_level(level)
        # Thread-side wait interval (schema v3.1): the *calling thread*
        # owns a park/unpark pair carrying the request corr, while the
        # inner client park runs on the connection's loop thread.  A
        # merged trace therefore shows the worker's wait ending at the
        # server's push_deliver (same corr) — the wire edge a tail
        # exemplar's critical path walks.
        obs_on = _obs.enabled
        token = t_park = None
        if obs_on:
            token = next_token()
            t_park = _obs.clock()
            _obs.on_dist(self._name, "park", corr=corr, token=token,
                         level=level)
        with self._waiting_lock:
            self._waiting[level] = self._waiting.get(level, 0) + 1
        try:
            wait_threadside(
                self._loop,
                self._client.check(self._counter, level, timeout, corr=corr),
                None if timeout is None else timeout + _THREADSIDE_GRACE,
            )
        except Exception:
            if obs_on and _obs.enabled:
                _obs.on_dist(self._name, "timeout", corr=corr, token=token,
                             level=level, wait_s=_obs.clock() - t_park)
            raise
        else:
            if obs_on and _obs.enabled:
                _obs.on_dist(self._name, "unpark", corr=corr, token=token,
                             level=level, wait_s=_obs.clock() - t_park)
        finally:
            with self._waiting_lock:
                remaining = self._waiting[level] - 1
                if remaining:
                    self._waiting[level] = remaining
                else:
                    del self._waiting[level]

    def flush(self) -> None:
        """Block until the server has acked every pooled increment."""
        wait_threadside(self._loop, self._client.flush(), _THREADSIDE_GRACE)

    def value_rpc(self) -> int:
        """Authoritative server total (one round trip)."""
        return wait_threadside(
            self._loop, self._client.value(self._counter), _THREADSIDE_GRACE
        )

    @property
    def value(self) -> int:
        """Last server-acknowledged total: a guaranteed lower bound,
        readable without a round trip (stability makes stale safe)."""
        return self._client.known_value(self._counter)

    # ------------------------------------------------------- observability

    def snapshot(self) -> CounterSnapshot:
        with self._waiting_lock:
            nodes = tuple(
                WaitNodeSnapshot(level=level, count=count)
                for level, count in sorted(self._waiting.items())
            )
        return CounterSnapshot(value=self.value, nodes=nodes)

    def dist_snapshot(self) -> dict:
        """Fabric-level view for ``repro.obs`` dumps."""
        return {
            "backend": "service",
            "counter": self._counter,
            "source": self._client.source,
            "published": self.value,
            "contribution": self._client.contribution(self._counter),
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            _obs_registry.deregister(self)

    def __repr__(self) -> str:
        return f"<ServiceCounter {self._counter!r} value>={self.value}>"


class _ThreadsideEndpoint:
    """A connection plus the daemon loop thread that drives it."""

    def __init__(self, client: AsyncCounterClient,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self._client = client
        self._loop = loop
        self._thread = thread
        self._handles: list[ServiceCounter] = []

    @property
    def client(self) -> AsyncCounterClient:
        return self._client

    def counter(self, name: str) -> ServiceCounter:
        handle = ServiceCounter(self._client, self._loop, name)
        self._handles.append(handle)
        return handle

    def fetch_trace(self) -> dict:
        """Thread-side ``fetch_trace``: the server's pid-stamped ring."""
        return wait_threadside(
            self._loop, self._client.fetch_trace(), _THREADSIDE_GRACE
        )

    def fetch_metrics(self) -> dict:
        """Thread-side ``fetch_metrics``: the server's registry snapshot."""
        return wait_threadside(
            self._loop, self._client.fetch_metrics(), _THREADSIDE_GRACE
        )

    def close(self) -> None:
        for handle in self._handles:
            handle.close()
        try:
            wait_threadside(self._loop, self._client.close(), _THREADSIDE_GRACE)
        except (ConnectionError, TimeoutError):
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=_THREADSIDE_GRACE)

    def __enter__(self) -> "_ThreadsideEndpoint":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def open_threadside(host: str, port: int, *, source: str | None = None,
                    flush_interval: float = FLUSH_INTERVAL,
                    ) -> _ThreadsideEndpoint:
    """Connect a background event loop to a counter service.

    Spawns one daemon thread running a private loop, connects an
    :class:`AsyncCounterClient` on it, and returns an endpoint whose
    ``counter(name)`` hands out thread-safe :class:`ServiceCounter`
    handles.  The thread exists because the caller has none of its own
    loop — purely synchronous programs get service counters this way.
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        started.set()
        loop.run_forever()
        loop.close()

    thread = threading.Thread(target=run, name="repro-dist-client", daemon=True)
    thread.start()
    started.wait()
    client = wait_threadside(
        loop,
        AsyncCounterClient.connect(
            host, port, source=source, flush_interval=flush_interval
        ),
        _THREADSIDE_GRACE,
    )
    return _ThreadsideEndpoint(client, loop, thread)
