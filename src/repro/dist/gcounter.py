"""The fabric's replication state: a grow-only counter of per-source maxes.

Monotonicity is what lets a counter leave the process (ROADMAP item 1):
if each *source* (a process slot, a client, a peer service) only ever
grows its own contribution, then the counter's value — the sum of
per-source contributions — only ever grows, merge between replicas is
max-per-source, and every ``check(level)`` condition stays stable under
arbitrary replication lag.  That is precisely a G-counter CRDT, and the
paper's §6 determinacy argument survives the trip: a stale replica can
only *under*-report, so a satisfied read is still sound and an
unsatisfied one merely waits for the next merge.

:class:`GCounter` is the thread-safe in-memory form shared by the
asyncio counter service (one per published counter name), the
anti-entropy merge path, and the testkit convergence suites.  Waiting is
delegated to a local :class:`~repro.core.counter.MonotonicCounter`
mirror raised to the replicated sum after every mutation (the
absolute-floor idiom of :func:`repro.aio.bridge.raise_to`, made
race-safe here with a cumulative published floor), so
``check``/``subscribe`` ride the PR-6 engine unchanged.  The shared-memory fabric
(:mod:`repro.dist.shm`) is the same abstraction with the contributions
dict flattened into fixed 8-byte slots.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping

from repro.core import syncpoints as _sp
from repro.core.counter import MonotonicCounter
from repro.core.validation import validate_amount

__all__ = ["GCounter", "merge_digests", "digests_equal"]


def merge_digests(*digests: Mapping[str, int]) -> dict[str, int]:
    """Pointwise max of any number of per-source digests (pure)."""
    merged: dict[str, int] = {}
    for digest in digests:
        for source, value in digest.items():
            if merged.get(source, 0) < value:
                merged[source] = value
    return merged


def digests_equal(a: Mapping[str, int], b: Mapping[str, int]) -> bool:
    """True when two digests describe the same contributions (zero
    entries are the implicit default, so ``{}`` equals ``{"s": 0}``)."""
    for source in set(a) | set(b):
        if a.get(source, 0) != b.get(source, 0):
            return False
    return True


class GCounter:
    """A grow-only, max-per-source-merge counter with local waiting.

    Operations
    ----------
    ``bump(source, amount)``
        Grow one source's contribution by ``amount`` (the fabric's
        ``increment``: a source only ever touches its own entry).
    ``raise_source(source, value)`` / ``merge(digest)``
        Idempotent max-merge of an absolute contribution (one source /
        a whole peer digest) — the anti-entropy primitives.  Replaying,
        reordering, or duplicating merge traffic cannot move the value
        anywhere but up, and never past the true total.
    ``digest()``
        Snapshot of every per-source max, suitable for the wire.
    ``check`` / ``subscribe`` / ``value``
        Delegated to the local wait mirror, which trails the replicated
        sum by at most the in-flight publish (a lower bound, closed by
        the next mutation) — so waits park on the engine exactly like a
        single-process counter.

    Thread-safe; also safe to drive from a single event loop (the lock
    is then simply uncontended).  Sync points (``gcounter.*``) let the
    testkit interleave bumps and merges adversarially — the anti-entropy
    convergence suite in ``tests/dist/`` runs on them.
    """

    __slots__ = (
        "_lock",
        "_contrib",
        "_total",
        "_mirror",
        "_publish_lock",
        "_published",
        "_name",
        "__weakref__",
    )

    def __init__(self, *, name: str | None = None,
                 mirror: MonotonicCounter | None = None) -> None:
        self._lock = threading.Lock()
        self._contrib: dict[str, int] = {}
        self._total = 0
        self._name = name
        self._mirror = mirror if mirror is not None else MonotonicCounter(name=name)
        # Cumulative floor already handed to the mirror; guarded by its
        # own lock so concurrent publishers' gaps *sum* to the target
        # (never overshoot — a naive read-value-then-raise would let two
        # racers each add their full gap).
        self._publish_lock = threading.Lock()
        self._published = 0

    # ------------------------------------------------------------ mutation

    def bump(self, source: str, amount: int = 1) -> int:
        """Grow ``source``'s contribution by ``amount``; new total."""
        amount = validate_amount(amount)
        if _sp.enabled:
            _sp.fire("gcounter.lock", self)
        with self._lock:
            self._contrib[source] = self._contrib.get(source, 0) + amount
            self._total = total = self._total + amount
        self._publish(total)
        return total

    def raise_source(self, source: str, value: int) -> int:
        """Max-merge one source's absolute contribution; new total."""
        value = validate_amount(value)
        if _sp.enabled:
            _sp.fire("gcounter.lock", self)
        with self._lock:
            current = self._contrib.get(source, 0)
            if value > current:
                self._contrib[source] = value
                self._total += value - current
            total = self._total
        self._publish(total)
        return total

    def merge(self, digest: Mapping[str, int]) -> int:
        """Max-merge a whole peer digest; new total.

        The CRDT join: commutative, associative, idempotent.  Applied
        entry-wise under the lock so a concurrent ``bump`` can never be
        overwritten downward (max against the *current* local entry).
        """
        if _sp.enabled:
            _sp.fire("gcounter.lock", self)
        with self._lock:
            if _sp.enabled:
                _sp.fire("gcounter.merge", self)
            contrib = self._contrib
            grew = 0
            for source, value in digest.items():
                if type(value) is not int or value < 0:
                    value = validate_amount(value)
                current = contrib.get(source, 0)
                if value > current:
                    contrib[source] = value
                    grew += value - current
            if grew:
                self._total += grew
            total = self._total
        self._publish(total)
        return total

    def _publish(self, total: int) -> None:
        # Outside the contributions lock (the mirror's increment takes its
        # own lock and runs a wake pass).  The gap is computed against the
        # cumulative published floor under _publish_lock, so concurrent
        # publishers' increments sum to exactly the largest target: the
        # mirror converges on the replicated total from below and can
        # never overshoot it (no waiter ever wakes before its level is
        # truly reached).
        if _sp.enabled:
            _sp.fire("gcounter.publish", self)
        with self._publish_lock:
            gap = total - self._published
            if gap <= 0:
                return
            self._published = total
        self._mirror.increment(gap)

    # ------------------------------------------------------------- reading

    def digest(self) -> dict[str, int]:
        """Every per-source max — the anti-entropy wire payload."""
        with self._lock:
            return dict(self._contrib)

    @property
    def value(self) -> int:
        """The replicated total (sum of per-source maxes)."""
        with self._lock:
            return self._total

    def sources(self) -> Iterable[str]:
        with self._lock:
            return list(self._contrib)

    # ------------------------------------------------------------- waiting

    @property
    def mirror(self) -> MonotonicCounter:
        """The local wait mirror (its value trails :attr:`value` by at
        most one in-flight publish)."""
        return self._mirror

    def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend until the replicated total reaches ``level``."""
        self._mirror.check(level, timeout)

    def subscribe(self, level: int, callback: Callable[[], None]):
        """Fire ``callback`` once the replicated total reaches ``level``
        (same contract as :meth:`MonotonicCounter.subscribe`)."""
        return self._mirror.subscribe(level, callback)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<GCounter{label} value={self._total} sources={len(self._contrib)}>"
