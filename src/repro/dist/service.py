"""The asyncio TCP counter service: pipelined merges, subscription push.

The network half of the counter fabric (ROADMAP item 1, axis 2).  A
:class:`CounterService` holds one :class:`~repro.dist.gcounter.GCounter`
per published counter name and speaks the newline-JSON protocol of
:mod:`repro.dist.wire`:

* ``inc`` frames are *merges*, not additions: the client ships its
  source's absolute contribution and the server applies max.  That is
  what makes client-side pipelining free — a 1ms flush window worth of
  increments is one frame — and what makes the protocol safe under
  retransmission and reordering.
* ``sub`` frames register a level subscription, served by the PR-2
  ``subscribe()`` hook on the counter's wait mirror: when an increment
  (from any connection, or an anti-entropy merge) first reaches the
  level, the subscription callback fires in the releasing context and
  the ``reached`` push is scheduled onto the loop with one
  ``call_soon`` — the same single-handoff shape as the PR-6 aio bridge,
  with the TCP connection standing in for the parked thread's slot.
* ``sync`` frames are the anti-entropy exchange: the initiator ships
  its full per-source digests, the responder merges and replies with
  its own (post-merge) digests, the initiator merges those.  After one
  round both replicas' digests are identical — max-merge is
  commutative, associative, and idempotent, so crossed or repeated
  rounds only ever converge harder.

Stability is why none of this needs coordination: a replica's value is
a lower bound on the fabric-wide total, every ``check(level)`` is a
stable condition, so a subscription served from a lagging replica fires
late, never wrongly.
"""

from __future__ import annotations

import asyncio
import logging
import os
from typing import Mapping

from repro.dist import wire
from repro.dist.gcounter import GCounter

__all__ = ["CounterService"]

log = logging.getLogger("repro.dist.service")


def _configure_file_log() -> None:
    """Route service logs to ``$REPRO_DIST_LOG`` if set (CI artifact)."""
    path = os.environ.get("REPRO_DIST_LOG")
    if not path or any(
        isinstance(h, logging.FileHandler) and h.baseFilename == os.path.abspath(path)
        for h in log.handlers
    ):
        return
    handler = logging.FileHandler(path)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    log.addHandler(handler)
    log.setLevel(logging.DEBUG)


class _Subscription:
    """One live ``sub``: its reply id, connection writer, and cancel."""

    __slots__ = ("sub_id", "writer", "counter_name", "level", "handle")

    def __init__(self, sub_id, writer, counter_name, level) -> None:
        self.sub_id = sub_id
        self.writer = writer
        self.counter_name = counter_name
        self.level = level
        self.handle = None  # CounterSubscription once registered


class CounterService:
    """One counter-service node: TCP endpoint + named G-counters.

    ``await start()`` binds (port 0 picks a free port; read it back from
    :attr:`port`); ``await stop()`` closes every connection.  Counters
    are created on first touch.  :meth:`anti_entropy` runs one merge
    round against a peer node.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 node_id: str | None = None) -> None:
        self._host = host
        self._port = port
        self.node_id = node_id or f"node-{os.getpid()}"
        self.counters: dict[str, GCounter] = {}
        self._server: asyncio.AbstractServer | None = None
        self._subs: dict[tuple[int, object], _Subscription] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        self.frames_in = 0
        _configure_file_log()

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self.port)

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._serve, self._host, self._port)
        log.info("%s listening on %s:%d", self.node_id, self._host, self.port)
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self._subs.clear()
        log.info("%s stopped", self.node_id)

    async def __aenter__(self) -> "CounterService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- state

    def counter(self, name: str) -> GCounter:
        """The named G-counter, created on first touch."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = GCounter(name=f"{self.node_id}/{name}")
        return counter

    def digests(self) -> dict[str, dict[str, int]]:
        """Every counter's per-source digest (the ``sync`` payload)."""
        return {name: counter.digest() for name, counter in self.counters.items()}

    def merge_digests(self, counters: Mapping[str, Mapping[str, int]]) -> None:
        """Apply a peer's digests (max-per-source; creates counters)."""
        for name, digest in counters.items():
            self.counter(name).merge(digest)

    # ------------------------------------------------------------ protocol

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        log.debug("%s: connection from %s", self.node_id, peer)
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if len(line) > wire.MAX_FRAME:
                    raise ValueError(f"frame exceeds {wire.MAX_FRAME} bytes")
                self.frames_in += 1
                try:
                    frame = wire.decode(line)
                    self._dispatch(frame, writer)
                except ValueError as exc:
                    log.warning("%s: bad frame from %s: %s", self.node_id, peer, exc)
                    writer.write(wire.encode({"op": "error", "msg": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, ValueError) as exc:
            log.debug("%s: connection %s dropped: %s", self.node_id, peer, exc)
        except asyncio.CancelledError:
            # Loop teardown with the handler parked in readline(); exiting
            # quietly here keeps streams' connection_made callback from
            # re-raising the cancellation as a loop error.
            log.debug("%s: connection %s cancelled at shutdown", self.node_id, peer)
        finally:
            self._drop_connection(writer)

    def _dispatch(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        op = frame["op"]
        if op == "inc":
            total = self.counter(frame["c"]).raise_source(
                str(frame["s"]), int(frame["v"])
            )
            if frame.get("id") is not None:
                writer.write(wire.encode({"op": "ack", "id": frame["id"], "v": total}))
        elif op == "sub":
            self._subscribe(frame, writer)
        elif op == "unsub":
            sub = self._subs.pop((id(writer), frame["id"]), None)
            if sub is not None and sub.handle is not None:
                sub.handle.cancel()
        elif op == "get":
            counter = self.counters.get(frame["c"])
            writer.write(
                wire.encode(
                    {
                        "op": "value",
                        "id": frame["id"],
                        "c": frame["c"],
                        "v": counter.value if counter is not None else 0,
                    }
                )
            )
        elif op == "sync":
            self.merge_digests(frame.get("counters", {}))
            if frame.get("id") is not None:
                writer.write(
                    wire.encode(
                        {"op": "sync_reply", "id": frame["id"],
                         "counters": self.digests()}
                    )
                )
            log.debug("%s: anti-entropy merge applied", self.node_id)
        else:
            raise ValueError(f"unknown op {op!r}")

    def _subscribe(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        counter = self.counter(frame["c"])
        sub = _Subscription(frame["id"], writer, frame["c"], int(frame["l"]))
        key = (id(writer), sub.sub_id)
        loop = asyncio.get_running_loop()

        def on_reach() -> None:
            # Fires in whatever context performed the satisfying raise
            # (a handler coroutine, or an anti-entropy merge).  One
            # call_soon hands the push to the loop — the bridge's
            # single-handoff discipline, with a socket for a slot.
            loop.call_soon(self._push_reached, key)

        handle = counter.subscribe(sub.level, on_reach)
        if handle is None:  # already satisfied: push immediately
            writer.write(
                wire.encode(
                    {"op": "reached", "id": sub.sub_id, "c": sub.counter_name,
                     "l": sub.level, "v": counter.value}
                )
            )
            return
        sub.handle = handle
        self._subs[key] = sub

    def _push_reached(self, key: tuple[int, object]) -> None:
        sub = self._subs.pop(key, None)
        if sub is None or sub.writer.is_closing():
            return
        counter = self.counters[sub.counter_name]
        sub.writer.write(
            wire.encode(
                {"op": "reached", "id": sub.sub_id, "c": sub.counter_name,
                 "l": sub.level, "v": counter.value}
            )
        )

    def _drop_connection(self, writer: asyncio.StreamWriter) -> None:
        self._writers.discard(writer)
        dead = [key for key, sub in self._subs.items() if sub.writer is writer]
        for key in dead:
            sub = self._subs.pop(key)
            if sub.handle is not None:
                sub.handle.cancel()
        writer.close()

    # --------------------------------------------------------- anti-entropy

    async def anti_entropy(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        """One gossip round with the peer at ``(host, port)``.

        Ships our digests, merges the peer's post-merge reply.  After
        the round both nodes hold identical digests for every counter
        either side had ever seen (the peer merged ours before
        replying).  Idempotent and crash-safe at any point: a lost
        reply just leaves the initiator one round behind.
        """
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                wire.encode({"op": "sync", "id": "ae", "counters": self.digests()})
            )
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
            reply = wire.decode(line)
            if reply["op"] != "sync_reply":
                raise ValueError(f"expected sync_reply, got {reply['op']!r}")
            self.merge_digests(reply.get("counters", {}))
            log.info("%s: anti-entropy round with %s:%d complete",
                     self.node_id, host, port)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced the close
                pass

    def __repr__(self) -> str:
        bound = f"{self._host}:{self.port}" if self._server else "unbound"
        return f"<CounterService {self.node_id} {bound} counters={len(self.counters)}>"
