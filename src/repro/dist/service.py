"""The asyncio TCP counter service: pipelined merges, subscription push.

The network half of the counter fabric (ROADMAP item 1, axis 2).  A
:class:`CounterService` holds one :class:`~repro.dist.gcounter.GCounter`
per published counter name and speaks the newline-JSON protocol of
:mod:`repro.dist.wire`:

* ``inc`` frames are *merges*, not additions: the client ships its
  source's absolute contribution and the server applies max.  That is
  what makes client-side pipelining free — a 1ms flush window worth of
  increments is one frame — and what makes the protocol safe under
  retransmission and reordering.
* ``sub`` frames register a level subscription, served by the PR-2
  ``subscribe()`` hook on the counter's wait mirror: when an increment
  (from any connection, or an anti-entropy merge) first reaches the
  level, the subscription callback fires in the releasing context and
  the ``reached`` push is scheduled onto the loop with one
  ``call_soon`` — the same single-handoff shape as the PR-6 aio bridge,
  with the TCP connection standing in for the parked thread's slot.
* ``sync`` frames are the anti-entropy exchange: the initiator ships
  its full per-source digests, the responder merges and replies with
  its own (post-merge) digests, the initiator merges those.  After one
  round both replicas' digests are identical — max-merge is
  commutative, associative, and idempotent, so crossed or repeated
  rounds only ever converge harder.

Stability is why none of this needs coordination: a replica's value is
a lower bound on the fabric-wide total, every ``check(level)`` is a
stable condition, so a subscription served from a lagging replica fires
late, never wrongly.
"""

from __future__ import annotations

import asyncio
import logging
import os
from typing import Mapping

from repro.dist import wire
from repro.dist.gcounter import GCounter
from repro.obs import current as _obs_current
from repro.obs import hooks as _obs

__all__ = ["CounterService"]

log = logging.getLogger("repro.dist.service")


def _configure_file_log() -> None:
    """Route service logs to ``$REPRO_DIST_LOG`` if set (CI artifact)."""
    path = os.environ.get("REPRO_DIST_LOG")
    if not path or any(
        isinstance(h, logging.FileHandler) and h.baseFilename == os.path.abspath(path)
        for h in log.handlers
    ):
        return
    handler = logging.FileHandler(path)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
    )
    log.addHandler(handler)
    log.setLevel(logging.DEBUG)


class _Subscription:
    """One live ``sub``: its reply id, connection writer, and cancel."""

    __slots__ = ("sub_id", "writer", "counter_name", "level", "handle", "corr")

    def __init__(self, sub_id, writer, counter_name, level, corr=None) -> None:
        self.sub_id = sub_id
        self.writer = writer
        self.counter_name = counter_name
        self.level = level
        self.handle = None  # CounterSubscription once registered
        self.corr = corr    # the sub frame's wire correlation token


class CounterService:
    """One counter-service node: TCP endpoint + named G-counters.

    ``await start()`` binds (port 0 picks a free port; read it back from
    :attr:`port`); ``await stop()`` closes every connection.  Counters
    are created on first touch.  :meth:`anti_entropy` runs one merge
    round against a peer node.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 node_id: str | None = None,
                 peers: list[tuple[str, int]] | None = None) -> None:
        self._host = host
        self._port = port
        self.node_id = node_id or f"node-{os.getpid()}"
        self.counters: dict[str, GCounter] = {}
        self._server: asyncio.AbstractServer | None = None
        self._subs: dict[tuple[int, object], _Subscription] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        self.frames_in = 0
        #: Other nodes this one aggregates in :meth:`fleet_metrics`
        #: (host, port) pairs; a down peer is skipped, never fatal.
        self.peers: list[tuple[str, int]] = list(peers or [])
        self._metrics_server: asyncio.AbstractServer | None = None
        self._obs_label = f"service:{self.node_id}"
        _configure_file_log()

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self.port)

    async def start(self) -> tuple[str, int]:
        # The raised limit covers trace_reply frames, which can approach
        # MAX_FRAME (the StreamReader default is 64 KiB).
        self._server = await asyncio.start_server(
            self._serve, self._host, self._port, limit=wire.MAX_FRAME
        )
        log.info("%s listening on %s:%d", self.node_id, self._host, self.port)
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self._subs.clear()
        log.info("%s stopped", self.node_id)

    async def __aenter__(self) -> "CounterService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- state

    def counter(self, name: str) -> GCounter:
        """The named G-counter, created on first touch."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = GCounter(name=f"{self.node_id}/{name}")
        return counter

    def digests(self) -> dict[str, dict[str, int]]:
        """Every counter's per-source digest (the ``sync`` payload)."""
        return {name: counter.digest() for name, counter in self.counters.items()}

    def merge_digests(self, counters: Mapping[str, Mapping[str, int]]) -> None:
        """Apply a peer's digests (max-per-source; creates counters)."""
        for name, digest in counters.items():
            self.counter(name).merge(digest)

    # ------------------------------------------------------------ protocol

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        log.debug("%s: connection from %s", self.node_id, peer)
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if len(line) > wire.MAX_FRAME:
                    raise ValueError(f"frame exceeds {wire.MAX_FRAME} bytes")
                self.frames_in += 1
                try:
                    frame = wire.decode(line)
                    self._dispatch(frame, writer)
                except ValueError as exc:
                    log.warning("%s: bad frame from %s: %s", self.node_id, peer, exc)
                    writer.write(wire.encode({"op": "error", "msg": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, ValueError) as exc:
            log.debug("%s: connection %s dropped: %s", self.node_id, peer, exc)
        except asyncio.CancelledError:
            # Loop teardown with the handler parked in readline(); exiting
            # quietly here keeps streams' connection_made callback from
            # re-raising the cancellation as a loop error.
            log.debug("%s: connection %s cancelled at shutdown", self.node_id, peer)
        finally:
            self._drop_connection(writer)

    def _send(self, writer: asyncio.StreamWriter, frame: dict,
              corr: str | None = None) -> None:
        """Write one frame, echoing the request's correlation token."""
        if corr is not None:
            frame["t"] = corr
        if _obs.enabled:
            _obs.on_dist(self._obs_label, "frame_send", op=frame["op"], corr=corr)
        writer.write(wire.encode(frame))

    def _dispatch(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        op = frame["op"]
        # Wire correlation (schema v3): record the frame's arrival and
        # make its token ambient for the duration of the dispatch, so
        # the increments/releases/pushes it causes carry it.  Disabled
        # cost: one module-attr read and a false branch.
        obs_on = _obs.enabled
        prev_ctx = None
        corr = None
        if obs_on:
            corr = frame.get("t")
            _obs.on_dist(self._obs_label, "frame_recv", op=op, corr=corr)
            prev_ctx = _obs.set_wire_context(_obs.WireContext(corr))
        try:
            if op == "inc":
                total = self.counter(frame["c"]).raise_source(
                    str(frame["s"]), int(frame["v"])
                )
                if frame.get("id") is not None:
                    self._send(writer, {"op": "ack", "id": frame["id"], "v": total},
                               corr)
            elif op == "sub":
                self._subscribe(frame, writer, corr)
            elif op == "unsub":
                sub = self._subs.pop((id(writer), frame["id"]), None)
                if sub is not None and sub.handle is not None:
                    sub.handle.cancel()
            elif op == "get":
                counter = self.counters.get(frame["c"])
                self._send(
                    writer,
                    {
                        "op": "value",
                        "id": frame["id"],
                        "c": frame["c"],
                        "v": counter.value if counter is not None else 0,
                    },
                    corr,
                )
            elif op == "sync":
                self.merge_digests(frame.get("counters", {}))
                if frame.get("id") is not None:
                    self._send(
                        writer,
                        {"op": "sync_reply", "id": frame["id"],
                         "counters": self.digests()},
                        corr,
                    )
                log.debug("%s: anti-entropy merge applied", self.node_id)
            elif op == "fetch_trace":
                self._send(writer, self._trace_reply(frame), corr)
            elif op == "fetch_metrics":
                self._send(writer, self._metrics_reply(frame), corr)
            else:
                raise ValueError(f"unknown op {op!r}")
        finally:
            if obs_on:
                _obs.set_wire_context(prev_ctx)

    # ---------------------------------------------------------- observability

    def _trace_reply(self, frame: dict) -> dict:
        """The ``fetch_trace`` reply: this process's event ring, pid-stamped.

        Events leave their home process here, so this is where ``pid``
        is stamped (the emit sites stay pid-free).  ``clock`` carries
        our ``time.monotonic`` at build time so a collector can sanity-
        check its offset estimate.  Oldest events are dropped first if
        the encoded reply would exceed the frame bound.
        """
        reply: dict = {"op": "trace_reply", "id": frame.get("id"),
                       "node": self.node_id, "pid": os.getpid(),
                       "clock": _obs.clock(), "enabled": _obs.enabled}
        handle = _obs_current()
        if handle is None or handle.trace is None:
            reply["events"] = []
            reply["truncated"] = 0
            return reply
        pid = os.getpid()
        events = []
        for event in handle.trace.snapshot():
            doc = event.as_dict()
            doc.setdefault("pid", pid)
            events.append(doc)
        truncated = 0
        while True:
            reply["events"] = events
            reply["truncated"] = truncated
            if not events or len(wire.encode(reply)) <= wire.MAX_FRAME - 1024:
                return reply
            drop = max(1, len(events) // 2)
            truncated += drop
            events = events[drop:]

    def _metrics_reply(self, frame: dict) -> dict:
        """The ``fetch_metrics`` reply: this node's registry snapshot."""
        handle = _obs_current()
        snapshot = None
        if handle is not None and handle.metrics is not None:
            snapshot = handle.metrics.snapshot()
        return {"op": "metrics_reply", "id": frame.get("id"),
                "node": self.node_id, "pid": os.getpid(), "snapshot": snapshot}

    def _subscribe(self, frame: dict, writer: asyncio.StreamWriter,
                   corr: str | None = None) -> None:
        counter = self.counter(frame["c"])
        sub = _Subscription(frame["id"], writer, frame["c"], int(frame["l"]), corr)
        key = (id(writer), sub.sub_id)
        loop = asyncio.get_running_loop()

        def on_reach() -> None:
            # Fires in whatever context performed the satisfying raise
            # (a handler coroutine, or an anti-entropy merge).  One
            # call_soon hands the push to the loop — the bridge's
            # single-handoff discipline, with a socket for a slot.
            # The ambient wire context (set by _dispatch around the
            # satisfying frame) names the increment event the raise
            # emitted; captured here, it becomes the push's cause_seq —
            # the wire half of check -> increment attribution.
            cause_seq = None
            if _obs.enabled:
                ctx = _obs.wire_context()
                if ctx is not None and ctx.inc_seq is not None:
                    cause_seq = ctx.inc_seq
                else:
                    # Local raise (self-increment, anti-entropy merge):
                    # no frame context, but we are on the incrementing
                    # thread inside its signal pass.
                    cause_seq = _obs.last_increment_seq()
            loop.call_soon(self._push_reached, key, cause_seq)

        handle = counter.subscribe(sub.level, on_reach)
        if handle is None:  # already satisfied: push immediately
            if _obs.enabled:
                _obs.on_dist(self._obs_label, "push_deliver", corr=corr,
                             level=sub.level, value=counter.value)
            self._send(
                writer,
                {"op": "reached", "id": sub.sub_id, "c": sub.counter_name,
                 "l": sub.level, "v": counter.value},
                corr,
            )
            return
        sub.handle = handle
        self._subs[key] = sub

    def _push_reached(self, key: tuple[int, object],
                      cause_seq: int | None = None) -> None:
        sub = self._subs.pop(key, None)
        if sub is None or sub.writer.is_closing():
            return
        counter = self.counters[sub.counter_name]
        if _obs.enabled:
            # corr is the *subscription's* token (what the waiting client
            # stamped), cause_seq the satisfying increment's event seq —
            # together they let the causal graph route a client-side
            # unpark through this push to the server-side increment.
            _obs.on_dist(self._obs_label, "push_deliver", corr=sub.corr,
                         level=sub.level, value=counter.value,
                         cause_seq=cause_seq)
        self._send(
            sub.writer,
            {"op": "reached", "id": sub.sub_id, "c": sub.counter_name,
             "l": sub.level, "v": counter.value},
            sub.corr,
        )

    def _drop_connection(self, writer: asyncio.StreamWriter) -> None:
        self._writers.discard(writer)
        dead = [key for key, sub in self._subs.items() if sub.writer is writer]
        for key in dead:
            sub = self._subs.pop(key)
            if sub.handle is not None:
                sub.handle.cancel()
        writer.close()

    # --------------------------------------------------------- anti-entropy

    async def anti_entropy(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        """One gossip round with the peer at ``(host, port)``.

        Ships our digests, merges the peer's post-merge reply.  After
        the round both nodes hold identical digests for every counter
        either side had ever seen (the peer merged ours before
        replying).  Idempotent and crash-safe at any point: a lost
        reply just leaves the initiator one round behind.
        """
        reader, writer = await asyncio.open_connection(host, port)
        obs_on = _obs.enabled
        corr = _obs.next_corr() if obs_on else None
        started = _obs.clock() if obs_on else 0.0
        try:
            frame = {"op": "sync", "id": "ae", "counters": self.digests()}
            if corr is not None:
                frame["t"] = corr
                _obs.on_dist(self._obs_label, "frame_send", op="sync", corr=corr)
            writer.write(wire.encode(frame))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
            reply = wire.decode(line)
            if reply["op"] != "sync_reply":
                raise ValueError(f"expected sync_reply, got {reply['op']!r}")
            if obs_on and _obs.enabled:
                _obs.on_dist(self._obs_label, "frame_recv", op="sync_reply",
                             corr=reply.get("t"))
                prev_ctx = _obs.set_wire_context(_obs.WireContext(corr))
                try:
                    self.merge_digests(reply.get("counters", {}))
                finally:
                    _obs.set_wire_context(prev_ctx)
                _obs.on_dist(self._obs_label, "gossip_round", corr=corr,
                             count=len(reply.get("counters", {})),
                             wait_s=_obs.clock() - started)
            else:
                self.merge_digests(reply.get("counters", {}))
            log.info("%s: anti-entropy round with %s:%d complete",
                     self.node_id, host, port)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced the close
                pass

    # -------------------------------------------------------- fleet metrics

    @property
    def metrics_port(self) -> int:
        assert self._metrics_server is not None, "metrics endpoint not started"
        return self._metrics_server.sockets[0].getsockname()[1]

    async def serve_metrics(self, host: str = "127.0.0.1",
                            port: int = 0) -> tuple[str, int]:
        """Start the aggregating Prometheus endpoint (``GET /metrics``).

        One scrape of this node returns its own registry snapshot merged
        with every reachable peer's (:attr:`peers`), so a whole fabric
        is a single scrape target.  Dependency-free: a minimal HTTP/1.1
        responder over asyncio streams.
        """
        self._metrics_server = await asyncio.start_server(
            self._serve_metrics_conn, host, port
        )
        addr = self._metrics_server.sockets[0].getsockname()
        log.info("%s metrics endpoint on %s:%d", self.node_id, addr[0], addr[1])
        return (host, addr[1])

    async def _serve_metrics_conn(self, reader: asyncio.StreamReader,
                                  writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            while True:  # drain headers; the request body is irrelevant
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if not request.startswith(b"GET"):
                writer.write(b"HTTP/1.1 405 Method Not Allowed\r\n"
                             b"Content-Length: 0\r\nConnection: close\r\n\r\n")
            else:
                body = (await self.fleet_metrics()).encode()
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    b"Content-Length: " + str(len(body)).encode() +
                    b"\r\nConnection: close\r\n\r\n" + body
                )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def fleet_metrics(self) -> str:
        """The merged Prometheus exposition: this node plus its peers.

        A peer that is down, slow, or has metrics disabled contributes
        nothing (its ``repro_fleet_node_up`` gauge reports 0) — a scrape
        must never fail because part of the fleet did.
        """
        from repro.obs import fleet

        nodes = []
        own = self._metrics_reply({})
        nodes.append({"node": own["node"], "pid": own["pid"],
                      "snapshot": own["snapshot"], "up": True})
        for host, port in self.peers:
            try:
                nodes.append(await self.fetch_peer_metrics(host, port))
            except (OSError, asyncio.TimeoutError, ValueError):
                nodes.append({"node": f"{host}:{port}", "pid": None,
                              "snapshot": None, "up": False})
        return fleet.render_fleet(nodes)

    async def fetch_peer_metrics(self, host: str, port: int, *,
                                 timeout: float = 2.0) -> dict:
        """One ``fetch_metrics`` round trip to a peer node."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=wire.MAX_FRAME
        )
        try:
            frame: dict = {"op": "fetch_metrics", "id": "fleet"}
            if _obs.enabled:
                frame["t"] = _obs.next_corr()
                _obs.on_dist(self._obs_label, "frame_send",
                             op="fetch_metrics", corr=frame["t"])
            writer.write(wire.encode(frame))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
            reply = wire.decode(line)
            if reply["op"] != "metrics_reply":
                raise ValueError(f"expected metrics_reply, got {reply['op']!r}")
            if _obs.enabled:
                _obs.on_dist(self._obs_label, "frame_recv",
                             op="metrics_reply", corr=reply.get("t"))
            return {"node": reply.get("node", f"{host}:{port}"),
                    "pid": reply.get("pid"),
                    "snapshot": reply.get("snapshot"), "up": True}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer raced the close
                pass

    def __repr__(self) -> str:
        bound = f"{self._host}:{self.port}" if self._server else "unbound"
        return f"<CounterService {self.node_id} {bound} counters={len(self.counters)}>"
