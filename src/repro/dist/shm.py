"""Shared-memory multiprocess monotonic counters: one writer slot per process.

The cross-process half of the counter fabric (ROADMAP item 1, axis 1).
A :class:`ShmCounter` lives in a ``multiprocessing.shared_memory``
segment laid out as a tiny header plus three fixed arrays of 8-byte
little-endian unsigned integers, one entry per *slot*:

======== ======================================================
values   each attached process's monotone contribution
pids     slot ownership (0 = free; a dead pid = reclaimable)
bells    per-process doorbell: 1 + the lowest level the owning
         process currently waits for (0 = not waiting)
======== ======================================================

**Why no lock, no seqlock, no syscall on the read path.**  A writer
only ever stores an *increasing* value into its *own* slot — an aligned
8-byte store, which CPython performs as a single C-level copy (atomic
on every platform CPython supports; there is no partial-word tearing to
guard against, hence no seqlock).  A reader sums the values array with
a plain ``memoryview`` scan.  Each slot read is some value the slot
truly held at the instant it was read, and slots only grow, so the
scanned sum is bracketed by the true totals at scan start and scan end.
A ``check(level)`` that observes ``sum >= level`` is therefore sound by
the paper's stability argument (§6) verbatim: the condition held at
some real moment during the scan and can never be un-held.  The sum
can lag the true total — it is a *guaranteed lower bound*, the same
contract the sharded dumps carry — so the only possible error is a
wait that parks a little longer, never a wakeup that fires early and
never an observed decrease.

**Waiting.**  Pure shared memory offers no portable cross-process wake
primitive, so waits are hybrid: in-process waiters park through the
PR-6 engine on a local :class:`~repro.core.counter.MonotonicCounter`
mirror, and a single per-attachment *watcher* thread closes the
cross-process gap — it publishes the process's lowest awaited level in
the shm doorbell slot, then alternates cheap read-only scans with
parks on an engine :class:`~repro.core.engine.Doorbell` using an
adaptive poll interval.  Local increments ring the doorbell directly
(same-process handoff never waits out a poll), and remote writers that
satisfy a published doorbell level bump the header's ring generation,
which the watcher's scan picks up at the next poll boundary.  An
already-true ``check`` never involves any of this: it is one read-only
scan, no lock, no syscall, no watcher.

**Lifecycle.**  ``ShmCounter.publish(name)`` creates the segment;
``ShmCounter.attach(name)`` maps it and claims a writer slot.  Claims
are serialized by an ``flock`` on a sidecar lock file (the kernel
releases the lock on process death, so a crash mid-claim can never
wedge the segment).  A slot whose owner pid is dead is *reclaimed* by
the next attach: ownership transfers but the slot's value is kept —
contributions are per-slot, values only grow, and folding or zeroing a
dead slot would momentarily bend the monotone sum.  A process killed
mid-increment therefore leaves the counter at either the old or the
new slot value, both valid states; readers never observe a decrease
(``tests/dist/test_crash_recovery.py`` kills writers to prove it).
"""

from __future__ import annotations

import os
import struct
import threading
import time
from multiprocessing import shared_memory

from repro.core import syncpoints as _sp
from repro.core.counter import MonotonicCounter
from repro.obs import hooks as _obs
from repro.core.engine import Doorbell
from repro.core.errors import CheckTimeout
from repro.core.snapshot import CounterSnapshot, WaitNodeSnapshot
from repro.core.validation import validate_amount, validate_level, validate_timeout
from repro.obs import registry as _obs_registry

__all__ = ["ShmCounter", "ShmSlotSnapshot"]

_MAGIC = 0x4D43_5348_4D31  # "SHMCM1"-ish tag so attach fails loudly on junk
_HEADER_WORDS = 8          # magic, version, nslots, ring, 4 reserved
_WORD = 8
_VERSION = 1

#: Watcher poll interval bounds (seconds).  The watcher starts at the
#: floor after any progress and doubles toward the ceiling while scans
#: come back empty — cross-process wakeup latency is bounded by the
#: current interval, remote rings pull the next poll back to the floor,
#: and local increments bypass polling entirely via the doorbell.
_POLL_MIN = 0.0002
_POLL_MAX = 0.004

#: Serializes the resource-tracker patch in :meth:`ShmCounter.attach`
#: (the patch is process-global for the constructor's duration).
_attach_lock = threading.Lock()


class ShmSlotSnapshot:
    """Frozen per-slot view: (index, value, pid, awaited level or None)."""

    __slots__ = ("index", "value", "pid", "awaited")

    def __init__(self, index: int, value: int, pid: int, awaited: int | None) -> None:
        self.index = index
        self.value = value
        self.pid = pid
        self.awaited = awaited

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wait = f" awaiting {self.awaited}" if self.awaited is not None else ""
        return f"<slot {self.index} value={self.value} pid={self.pid}{wait}>"


def _lock_path(name: str) -> str:
    import tempfile

    return os.path.join(tempfile.gettempdir(), f"repro-shm-{name}.lock")


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class ShmCounter:
    """A monotonic counter shared across processes through one segment.

    Create with :meth:`publish`, join with :meth:`attach`; both return a
    handle that owns one writer slot.  ``increment`` stores to that slot
    only; ``check``/``value`` scan all slots.  The handle is also a
    perfectly ordinary in-process counter: local waiters park on the
    engine via the internal mirror, and the watcher thread (spawned
    lazily, parked while nobody waits) keeps the mirror trailing the
    cross-process sum.

    Not a :class:`~repro.core.api.AbstractCounter` subclass on purpose:
    ``reset`` has no safe cross-process meaning for a grow-only
    structure.  Everything else of the counter contract is provided.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        slot: int,
        *,
        name: str,
        owner: bool,
    ) -> None:
        self._shm = segment
        self._slot = slot
        self._name = name
        self._owner = owner
        self._closed = False
        nslots = self._read_word(2)
        self._nslots = nslots
        buf = segment.buf
        base = _HEADER_WORDS * _WORD
        #: The whole point: the read path is one cast memoryview, summed.
        self._values = buf[base:base + nslots * _WORD].cast("Q")
        self._pids = buf[base + nslots * _WORD:base + 2 * nslots * _WORD].cast("Q")
        self._bells = buf[base + 2 * nslots * _WORD:base + 3 * nslots * _WORD].cast("Q")
        self._ring = buf[3 * _WORD:4 * _WORD].cast("Q")
        # In-process serialization of our slot's read-modify-write (the
        # slot has one writer *process*, but that process may have many
        # threads) and of watcher lifecycle.
        self._local_lock = threading.Lock()
        self._mirror = MonotonicCounter(name=f"{name}[slot{slot}]" if name else None)
        _obs_registry.deregister(self._mirror)  # surfaced via self instead
        self._published = 0          # cumulative floor handed to the mirror
        self._publish_lock = threading.Lock()
        self._waiting: dict[int, int] = {}  # level -> local waiter count
        self._doorbell = Doorbell()
        self._watcher: threading.Thread | None = None
        _obs_registry.register(self)

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def publish(cls, name: str | None = None, *, slots: int = 16) -> "ShmCounter":
        """Create the segment (and claim slot 0).  ``name=None`` lets the
        OS pick a unique segment name (read it back from ``.name``)."""
        if not isinstance(slots, int) or isinstance(slots, bool) or not 1 <= slots <= 4096:
            raise ValueError(f"slots must be an int in [1, 4096], got {slots!r}")
        size = (_HEADER_WORDS + 3 * slots) * _WORD
        segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        buf = segment.buf
        struct.pack_into("<QQQQ", buf, 0, _MAGIC, _VERSION, slots, 0)
        counter = cls(segment, 0, name=segment.name, owner=True)
        counter._pids[0] = os.getpid()
        if _obs.enabled:
            _obs.on_dist(f"shm:{segment.name}", "slot_claim",
                         op="publish", level=0, count=0)
        return counter

    @classmethod
    def attach(cls, name: str) -> "ShmCounter":
        """Map an existing segment and claim a free (or orphaned) slot."""
        # CPython < 3.13 registers *attached* segments with the resource
        # tracker too, which would unlink the segment when this process
        # exits before the publisher is done with it (bpo-39959).  The
        # publisher's registration is the one that guarantees cleanup, so
        # suppress registration for the attach — suppression (rather than
        # register-then-unregister) matters under fork, where children
        # share the parent's tracker and an unregister would erase the
        # publisher's entry from the shared cache.
        with _attach_lock:
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                saved = resource_tracker.register
                resource_tracker.register = lambda *a, **k: None
            except Exception:
                saved = None
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                if saved is not None:
                    resource_tracker.register = saved
        magic, version, slots = struct.unpack_from("<QQQ", segment.buf, 0)
        if magic != _MAGIC or version != _VERSION:
            segment.close()
            raise ValueError(f"segment {name!r} is not a ShmCounter (v{_VERSION}) segment")
        slot = cls._claim_slot(segment, name, int(slots))
        return cls(segment, slot, name=name, owner=False)

    @staticmethod
    def _claim_slot(segment: shared_memory.SharedMemory, name: str, nslots: int) -> int:
        """Claim a writer slot under the sidecar file lock.

        ``flock`` serializes claimants across processes and is released
        by the kernel if the claimant dies, so the claim protocol needs
        no shared-memory atomics.  A slot is takeable when its pid is 0
        (never owned, or released by ``close``) or its owner is dead
        (crash-orphan reclamation: ownership moves, the value stays —
        monotonicity forbids zeroing it).
        """
        import fcntl

        base = _HEADER_WORDS * _WORD
        pids = segment.buf[base + nslots * _WORD:base + 2 * nslots * _WORD].cast("Q")
        with open(_lock_path(name), "a+b") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                for index in range(nslots):
                    pid = pids[index]
                    if pid == 0 or not _pid_alive(int(pid)):
                        pids[index] = os.getpid()
                        if _obs.enabled:
                            # op records whether this claim took a free
                            # slot or reclaimed a dead owner's; count is
                            # the displaced pid (0 when free) — the
                            # crash-recovery breadcrumb a merged trace
                            # shows after a writer is SIGKILLed.
                            _obs.on_dist(f"shm:{name}", "slot_claim",
                                         op="reclaim" if pid else "claim",
                                         level=index, count=int(pid))
                        return index
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)
        raise RuntimeError(
            f"no free writer slot in segment {name!r} ({nslots} slots, all owned "
            "by live processes)"
        )

    @property
    def name(self) -> str:
        """The segment name — what other processes pass to :meth:`attach`."""
        return self._name

    @property
    def slot(self) -> int:
        """This process's writer slot index."""
        return self._slot

    @property
    def slots(self) -> int:
        return self._nslots

    def close(self) -> None:
        """Release the slot (ownership only; the value stays) and unmap."""
        with self._local_lock:
            if self._closed:
                return
            self._closed = True
        _obs_registry.deregister(self)
        self._stop_watcher()
        try:
            self._pids[self._slot] = 0
        except (ValueError, TypeError):  # pragma: no cover - already unmapped
            pass
        # memoryview slices pin the exported buffer; drop them before close.
        self._values.release()
        self._pids.release()
        self._bells.release()
        self._ring.release()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (publisher's responsibility, after close).

        Name-based, so it works on a closed handle; idempotent."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        try:
            os.unlink(_lock_path(self._name))
        except OSError:
            pass

    def __enter__(self) -> "ShmCounter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

    # ------------------------------------------------------------ hot paths

    def _read_word(self, index: int) -> int:
        return struct.unpack_from("<Q", self._shm.buf, index * _WORD)[0]

    @property
    def value(self) -> int:
        """The summed contributions — one read-only memoryview scan.

        A guaranteed lower bound on the true total (each slot read is
        exact at its own read instant; slots only grow), and exact
        whenever no increment is concurrent with the scan.
        """
        return sum(self._values)

    def increment(self, amount: int = 1) -> int:
        """Grow this process's slot; wake local waiters; ring remote bells.

        The store is the only cross-process write: a single increasing
        8-byte value into our own slot.  Everything after it is wakeup
        plumbing — raising the local mirror (which runs the engine's
        coalesced wake pass for in-process waiters) and, only when some
        *other* process has published a doorbell level the new sum
        satisfies, bumping the header ring generation so its watcher's
        next poll rescans.
        """
        if type(amount) is not int or amount < 0:
            amount = validate_amount(amount)
        if amount == 0:
            return self.value
        values = self._values
        slot = self._slot
        with self._local_lock:
            if self._closed:
                raise ValueError(f"{self!r}: increment on a closed handle")
            new_own = values[slot] + amount
            total = sum(values) + amount  # the sum once the store lands
            # Remote wakeups: scan the doorbells (one cache-line-ish
            # read per slot, only on the increment path) and bump the
            # ring generation when any published level is about to be
            # satisfied.  The bump goes BEFORE the value store: a
            # watcher that observes the new value is then guaranteed to
            # observe the generation that announced it (this process
            # could stall arbitrarily long between the two stores, and
            # bump-after-store would let the watcher publish the wakeup
            # with no bell attribution and park before the bump lands).
            # An early ring merely costs the watcher one extra scan.
            # The bump is a read-modify-write that may race another
            # writer's — losing one of two concurrent bumps is harmless
            # because the value can only move away from what any
            # watcher last saw.
            bells = self._bells
            ring = self._ring
            for index in range(self._nslots):
                bell = bells[index]
                if bell and index != slot and bell - 1 <= total:
                    new_gen = ring[0] + 1
                    ring[0] = new_gen
                    if _obs.enabled:
                        # The ring generation doubles as the wire token:
                        # the remote watcher that wakes on this
                        # generation emits bell_wake with the same corr,
                        # tying the two rings' events together in a
                        # merged trace.  Concurrent writers may stamp
                        # the same generation — harmless, the collector
                        # treats corr groups as sets.
                        _obs.on_dist(self, "bell_ring",
                                     corr=f"bell:{self._name}:{int(new_gen)}",
                                     level=int(bell - 1), value=total)
                    break
            values[slot] = new_own
        # Local wakeups: raise the mirror floor (engine wake pass) and
        # ring our own watcher so an in-flight poll re-scans immediately.
        if self._waiting:
            self._publish_floor(total)
            self._doorbell.ring()
        return total

    def check(self, level: int, timeout: float | None = None) -> None:
        """Suspend until the cross-process sum reaches ``level``.

        Already-satisfied checks return from the read-only scan — no
        lock, no syscall, no watcher.  A waiting check registers with
        the watcher (publishing the process's lowest awaited level in
        the shm doorbell) and parks on the engine through the mirror.
        """
        if type(level) is not int or level < 0:
            level = validate_level(level)
        if timeout is not None and (type(timeout) is not float or timeout < 0.0):
            timeout = validate_timeout(timeout)
        if sum(self._values) >= level:
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        self._register_wait(level)
        try:
            while True:
                # Re-scan after registration: an increment that landed
                # between the fast scan and the doorbell publish might
                # never ring (its bell read preceded our write).
                total = sum(self._values)
                if total >= level:
                    self._publish_floor(total)
                    return
                remaining: float | None = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise CheckTimeout(
                            f"{self!r}: check({level}) timed out after {timeout}s "
                            f"(value={total})"
                        )
                try:
                    self._mirror.check(level, remaining)
                    return
                except CheckTimeout:
                    # The mirror trails the shm sum; adjudicate against
                    # the authoritative scan before reporting (stability:
                    # a concurrent remote increment must not be reported
                    # as a timeout).  The loop re-raises if truly unmet.
                    continue
        finally:
            self._deregister_wait(level)

    # ------------------------------------------------- waiting infrastructure

    def _publish_floor(self, total: int) -> None:
        # Same race-safe absolute-floor publish as GCounter._publish.
        with self._publish_lock:
            gap = total - self._published
            if gap <= 0:
                return
            self._published = total
        self._mirror.increment(gap)

    def _register_wait(self, level: int) -> None:
        with self._local_lock:
            # Capture the ring generation BEFORE advertising the bell:
            # a remote writer may see the bell and bump the generation
            # before the watcher thread runs its first instruction, and
            # the watcher must still classify that bump as a ring (the
            # bell_wake trace event and its corr hang off it).
            ring0 = self._ring[0]
            self._waiting[level] = self._waiting.get(level, 0) + 1
            self._bells[self._slot] = 1 + min(self._waiting)
            watcher = self._watcher
            if watcher is None:
                watcher = threading.Thread(
                    target=self._watch, args=(ring0,),
                    name=f"repro-shm-watch-{self._slot}", daemon=True
                )
                self._watcher = watcher
                watcher.start()
        self._doorbell.ring()  # wake the watcher to pick up the new level

    def _deregister_wait(self, level: int) -> None:
        with self._local_lock:
            count = self._waiting.get(level, 0) - 1
            if count > 0:
                self._waiting[level] = count
            else:
                self._waiting.pop(level, None)
            self._bells[self._slot] = 1 + min(self._waiting) if self._waiting else 0

    def _watch(self, last_ring: int) -> None:
        """The per-attachment watcher: poll the scan, raise the mirror.

        Runs while the handle is open; parks indefinitely on the
        doorbell when nobody waits (a new waiter rings), polls with an
        adaptive interval while someone does.  The interval resets to
        the floor whenever the scan shows progress or the remote ring
        generation moved, and doubles toward the ceiling across idle
        scans, so a hot fabric is tracked at sub-millisecond lag and an
        idle one costs a few scans per second.

        ``last_ring`` is the generation observed before the first
        waiter armed its bell (see ``_register_wait``) so a ring that
        lands during thread startup is still seen as a ring.
        """
        poll = _POLL_MIN
        last_total = -1
        # A noticed ring's corr is held PENDING until the publish it
        # announced consumes it: writers bump the generation before the
        # value store (see increment), so the progress may only become
        # scannable one or more polls after the bell_wake — the
        # attribution must survive the gap.
        pending_corr: str | None = None
        while True:
            with self._local_lock:
                if self._closed:
                    return
                waiting = bool(self._waiting)
            if not waiting:
                self._doorbell.wait(None)
                poll = _POLL_MIN
                continue
            # Notice the generation *before* publishing: when a remote
            # writer rang, the bell_wake event must precede (in seq) the
            # mirror increment/release/unpark chain its publish causes,
            # and that chain inherits the bell's corr via the ambient
            # wire context so a merged trace links writer -> watcher ->
            # woken thread.
            ring = self._ring[0]
            if ring != last_ring:
                last_ring = ring
                poll = _POLL_MIN
                if _obs.enabled:
                    pending_corr = f"bell:{self._name}:{int(ring)}"
                    _obs.on_dist(self, "bell_wake", corr=pending_corr)
            total = sum(self._values)
            if total > last_total:
                last_total = total
                if pending_corr is None and _obs.enabled:
                    # The scan saw progress the generation read above
                    # missed: the announcing bump (if any) precedes the
                    # value store, so a re-read now is guaranteed to see
                    # it.
                    ring = self._ring[0]
                    if ring != last_ring:
                        last_ring = ring
                        pending_corr = f"bell:{self._name}:{int(ring)}"
                        _obs.on_dist(self, "bell_wake", corr=pending_corr)
                if pending_corr is not None:
                    prev_ctx = _obs.set_wire_context(
                        _obs.WireContext(pending_corr)
                    )
                    try:
                        self._publish_floor(total)
                    finally:
                        _obs.set_wire_context(prev_ctx)
                    pending_corr = None
                else:
                    self._publish_floor(total)
                poll = _POLL_MIN
            if self._doorbell.wait(poll):
                poll = _POLL_MIN  # rung: re-scan immediately
            elif poll < _POLL_MAX:
                poll = min(poll * 2.0, _POLL_MAX)

    def _stop_watcher(self) -> None:
        watcher = self._watcher
        if watcher is None:
            return
        self._doorbell.ring()
        watcher.join(timeout=2.0)
        self._watcher = None

    # ---------------------------------------------------------- introspection

    def slot_snapshot(self) -> list[ShmSlotSnapshot]:
        """Per-slot values/owners/doorbells (read-only scan; diagnostic)."""
        snaps = []
        for index in range(self._nslots):
            bell = self._bells[index]
            snaps.append(
                ShmSlotSnapshot(
                    index,
                    int(self._values[index]),
                    int(self._pids[index]),
                    int(bell - 1) if bell else None,
                )
            )
        return snaps

    def dist_snapshot(self) -> dict:
        """The obs dump payload: published-slot sums as the guaranteed
        lower bound, per-slot detail, and remote doorbell levels."""
        slots = self.slot_snapshot()
        return {
            "backend": "shm",
            "segment": self._name,
            "slot": self._slot,
            "published": sum(s.value for s in slots),
            "slots": [
                {"index": s.index, "value": s.value, "pid": s.pid, "awaited": s.awaited}
                for s in slots
                if s.value or s.pid or s.awaited is not None
            ],
        }

    def snapshot(self) -> CounterSnapshot:
        """Counter-shaped view: local mirror waiters plus one node per
        *remote* process doorbell (count 1 each — at least one waiter,
        the same lower-bound contract as the sharded dumps)."""
        local = self._mirror.snapshot()
        remote = tuple(
            WaitNodeSnapshot(level=s.awaited, count=1)
            for s in self.slot_snapshot()
            if s.awaited is not None and s.index != self._slot
        )
        return CounterSnapshot(value=self.value, nodes=local.nodes + remote)

    @property
    def waiting_levels(self) -> tuple[int, ...]:
        return self.snapshot().waiting_levels

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"slot={self._slot}/{self._nslots}"
        return f"<ShmCounter {self._name!r} {state} value={sum(self._values) if not self._closed else '?'}>"
