"""Wire format of the counter service: newline-delimited JSON frames.

One frame per line, UTF-8 JSON with compact separators and short keys
(``op``/``c``/``s``/``v``/``l``/``id``).  Chosen over a binary framing
deliberately: the service's throughput story is *pipelining* — a flush
window coalesces any number of increments per (counter, source) into
one absolute-value frame, because merge is max-per-source and absolute
floors are idempotent — so frames are rare relative to operations and
debuggability wins.  Every frame type is monotone-safe to duplicate,
reorder, or drop-and-resend:

============= ======================================== ==================
op             fields                                   direction
============= ======================================== ==================
inc            c, s, v (absolute contribution), id?     client -> server
sub            c, l, id                                 client -> server
unsub          id                                       client -> server
get            c, id                                    client -> server
sync           counters={c: {s: v}}, id?                peer -> peer
fetch_trace    id                                       client -> server
fetch_metrics  id                                       client -> server
ack            id, v (new total)                        server -> client
value          id, c, v                                 server -> client
reached        id, c, l, v                              server -> client
sync_reply     id, counters                             peer -> peer
trace_reply    id, node, pid, clock, events, truncated  server -> client
metrics_reply  id, node, pid, snapshot                  server -> client
error          id?, msg                                 server -> client
============= ======================================== ==================

Every frame may additionally carry ``t``, a wire *correlation token*
(schema v3 of :mod:`repro.obs.events`): the sender stamps it, the
receiver echoes it on any frame it sends in response and stamps it on
the trace events the frame causes.  ``t`` appears only while tracing is
enabled on the sending side — the disabled wire path is byte-identical
to pre-v3 — and is opaque: a receiver must treat it as a string.

``inc`` carries the source's *absolute* contribution, never a delta:
the server applies ``max(current, v)``, so retransmits and reordered
flushes cannot double-count.  ``sync`` carries full per-source digests;
a two-leg exchange (sync -> sync_reply, each side merging) makes both
replicas' digests identical — the anti-entropy round.

``fetch_trace``/``fetch_metrics`` are the observability collection ops:
the reply carries the server's event ring (each event dict stamped with
the server's ``pid``) and its metrics-registry snapshot, plus ``clock``
(the server's ``time.monotonic`` at reply build time).  A
``trace_reply`` that would exceed :data:`MAX_FRAME` drops oldest events
first and reports how many in ``truncated``.
"""

from __future__ import annotations

import json

__all__ = ["encode", "decode", "MAX_FRAME"]

#: Upper bound on one encoded frame (a digest of thousands of sources
#: stays far below this; anything larger is a protocol error, not data).
MAX_FRAME = 1 << 20

_dumps = json.JSONEncoder(separators=(",", ":"), ensure_ascii=False).encode


def encode(frame: dict) -> bytes:
    """One frame -> one line (caller owns transport-level batching)."""
    return _dumps(frame).encode() + b"\n"


def decode(line: bytes) -> dict:
    """One line -> one frame; raises ``ValueError`` on junk."""
    frame = json.loads(line)
    if not isinstance(frame, dict) or "op" not in frame:
        raise ValueError(f"not a frame: {line[:80]!r}")
    return frame
