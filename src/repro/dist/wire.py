"""Wire format of the counter service: newline-delimited JSON frames.

One frame per line, UTF-8 JSON with compact separators and short keys
(``op``/``c``/``s``/``v``/``l``/``id``).  Chosen over a binary framing
deliberately: the service's throughput story is *pipelining* — a flush
window coalesces any number of increments per (counter, source) into
one absolute-value frame, because merge is max-per-source and absolute
floors are idempotent — so frames are rare relative to operations and
debuggability wins.  Every frame type is monotone-safe to duplicate,
reorder, or drop-and-resend:

========== ======================================== ==================
op          fields                                   direction
========== ======================================== ==================
inc         c, s, v (absolute contribution), id?     client -> server
sub         c, l, id                                 client -> server
unsub       id                                       client -> server
get         c, id                                    client -> server
sync        counters={c: {s: v}}, id?                peer -> peer
ack         id, v (new total)                        server -> client
value       id, c, v                                 server -> client
reached     id, c, l, v                              server -> client
sync_reply  id, counters                             peer -> peer
error       id?, msg                                 server -> client
========== ======================================== ==================

``inc`` carries the source's *absolute* contribution, never a delta:
the server applies ``max(current, v)``, so retransmits and reordered
flushes cannot double-count.  ``sync`` carries full per-source digests;
a two-leg exchange (sync -> sync_reply, each side merging) makes both
replicas' digests identical — the anti-entropy round.
"""

from __future__ import annotations

import json

__all__ = ["encode", "decode", "MAX_FRAME"]

#: Upper bound on one encoded frame (a digest of thousands of sources
#: stays far below this; anything larger is a protocol error, not data).
MAX_FRAME = 1 << 20

_dumps = json.JSONEncoder(separators=(",", ":"), ensure_ascii=False).encode


def encode(frame: dict) -> bytes:
    """One frame -> one line (caller owns transport-level batching)."""
    return _dumps(frame).encode() + b"\n"


def decode(line: bytes) -> dict:
    """One line -> one frame; raises ``ValueError`` on junk."""
    frame = json.loads(line)
    if not isinstance(frame, dict) or "op" not in frame:
        raise ValueError(f"not a frame: {line[:80]!r}")
    return frame
