"""repro.obs — the zero-cost-when-off observability layer.

Everything here is off by default.  Until :func:`enable` is called, the
instrumented sites in :mod:`repro.core` and :mod:`repro.aio` compile to
one module-attribute read and an untaken branch — the same trick (and
the same measured cost: none) as the testkit's sync points — and the
lock-free fast paths carry **no** instrumentation at all, so their cost
is unchanged by construction whether observability is on or off.

Quick start::

    import repro.obs as obs

    handle = obs.enable()              # tracing + metrics on
    ... run the workload ...
    print(obs.dump_state())            # who waits on what, right now
    print(handle.metrics.prometheus()) # scrape-ready text
    for event in handle.trace:         # the event ring, oldest first
        print(event)
    obs.disable()

or scoped::

    with obs.observe() as handle:
        ... workload ...
    report = handle.metrics.snapshot()

The stall watchdog is independent of enable/disable (it reads counter
snapshots, not the event stream) but emits ``stall`` trace events when
tracing is on::

    obs.start_watchdog(threshold=5.0)   # daemon thread
    ... later ...
    obs.stop_watchdog()

See ``docs/observability.md`` for the event schema, histogram
semantics, watchdog tuning, and a Prometheus scrape example.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.obs import hooks as _hooks
from repro.obs.dump import dump_counter, dump_state
from repro.obs.events import KINDS, Event, TraceBuffer
from repro.obs.metrics import CounterMetrics, Histogram, MetricsRegistry
from repro.obs.watchdog import StallReport, StallWatchdog, WaitingLevel

__all__ = [
    "enable",
    "disable",
    "observe",
    "current",
    "dump_state",
    "dump_counter",
    "start_watchdog",
    "stop_watchdog",
    "watchdog",
    "Event",
    "TraceBuffer",
    "KINDS",
    "Histogram",
    "CounterMetrics",
    "MetricsRegistry",
    "StallWatchdog",
    "StallReport",
    "WaitingLevel",
    "ObsHandle",
    "iter_trace",
]

_state_lock = threading.Lock()
_handle: "ObsHandle | None" = None
_watchdog: StallWatchdog | None = None


class ObsHandle:
    """What :func:`enable` returns: the live trace ring and metrics registry.

    ``trace`` or ``metrics`` is ``None`` when that half was not enabled.
    The handle stays valid (readable) after :func:`disable` — disabling
    stops *emission*, it does not destroy the collected data.
    """

    __slots__ = ("trace", "metrics")

    def __init__(self, trace: TraceBuffer | None, metrics: MetricsRegistry | None) -> None:
        self.trace = trace
        self.metrics = metrics

    def __repr__(self) -> str:
        parts = []
        if self.trace is not None:
            parts.append(f"trace={self.trace!r}")
        if self.metrics is not None:
            parts.append(f"metrics[{len(self.metrics.labels())} series]")
        return f"<ObsHandle {' '.join(parts) or 'empty'}>"


def enable(
    *,
    trace: bool = True,
    metrics: bool = True,
    capacity: int = 65536,
    sink: Callable[[Event], None] | None = None,
    max_series: int = 1024,
) -> ObsHandle:
    """Turn observability on; idempotent per configuration boundary.

    Re-enabling while already enabled replaces the trace ring and the
    metrics registry (the previous handle keeps the old data).  Enabling
    is safe mid-workload: operations already past an instrumented site
    simply don't emit, and latency measurements that would straddle the
    boundary are skipped rather than fabricated (their ``wait_s`` /
    ``wakeup_s`` is ``None``).
    """
    if not trace and not metrics:
        raise ValueError("enable() with trace=False and metrics=False is a no-op; "
                         "call disable() instead")
    global _handle
    with _state_lock:
        if _handle is not None and _handle.trace is not None:
            _handle.trace.seal()  # the old ring stops tracking the seq counter
        trace_buf = TraceBuffer(capacity=capacity, sink=sink) if trace else None
        registry = MetricsRegistry(max_series=max_series) if metrics else None
        _hooks._trace = trace_buf
        _hooks._metrics = registry
        _hooks._emit = None if trace_buf is None else trace_buf.emitter()
        # New configuration boundary: invalidate every cached _obs_chan.
        _hooks._gen += 1
        _hooks.enabled = True
        _handle = ObsHandle(trace_buf, registry)
        return _handle


def disable() -> ObsHandle | None:
    """Turn emission off; returns the final handle (data stays readable).

    The flag is lowered first, then the sinks are detached — a thread
    mid-emission may land one last event (the hooks snapshot their
    references), which is harmless; nothing can NoneType-crash.
    """
    global _handle
    with _state_lock:
        _hooks.enabled = False
        _hooks._trace = None
        _hooks._metrics = None
        _hooks._emit = None
        _hooks._gen += 1
        handle, _handle = _handle, None
        if handle is not None and handle.trace is not None:
            handle.trace.seal()  # freeze `emitted` now that emission stopped
        return handle


def current() -> ObsHandle | None:
    """The active handle, or None when observability is off."""
    return _handle


class observe:
    """Context manager: ``with obs.observe() as handle: ...``.

    Accepts the same keyword arguments as :func:`enable`; disables on
    exit.  The handle remains readable after the block.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self.handle: ObsHandle | None = None

    def __enter__(self) -> ObsHandle:
        self.handle = enable(**self._kwargs)
        return self.handle

    def __exit__(self, *exc_info) -> None:
        disable()


def start_watchdog(
    *,
    threshold: float = 5.0,
    interval: float = 1.0,
    on_stall: Callable[[StallReport], None] | None = None,
    rearm: float | None = None,
) -> StallWatchdog:
    """Start (or return the already-running) background stall watchdog."""
    global _watchdog
    with _state_lock:
        if _watchdog is not None and _watchdog.running:
            return _watchdog
        _watchdog = StallWatchdog(
            threshold=threshold, interval=interval, on_stall=on_stall, rearm=rearm
        )
        _watchdog.start()
        return _watchdog


def stop_watchdog() -> None:
    """Stop the background watchdog if one is running (idempotent)."""
    global _watchdog
    with _state_lock:
        dog, _watchdog = _watchdog, None
    if dog is not None:
        dog.stop()


def watchdog() -> StallWatchdog | None:
    """The running background watchdog, or None."""
    return _watchdog


def iter_trace() -> Iterator[Event]:
    """Convenience: iterate the active trace ring (empty if off)."""
    handle = _handle
    if handle is None or handle.trace is None:
        return iter(())
    return iter(handle.trace)
