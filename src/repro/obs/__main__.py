"""CLI for the observability layer.

::

    python -m repro.obs dump [--demo]        # live counter state as JSON
    python -m repro.obs metrics [--demo]     # Prometheus text exposition
    python -m repro.obs sample --out DIR     # run the demo workload and
                                             # write trace.jsonl, metrics.prom,
                                             # dump.json, trace.perfetto.json,
                                             # analyze.txt

    python -m repro.obs analyze --in trace.jsonl          # causal report
    python -m repro.obs analyze --fw ragged               # §4 workload, live
    python -m repro.obs critical-path --in trace.jsonl    # just the path
    python -m repro.obs export --in trace.jsonl \\
        --format perfetto --out trace.perfetto.json       # or --format otel

    python -m repro.obs collect --out merged.jsonl \\
        ring-a.jsonl ring-b.jsonl      # merge per-process rings (clock-
                                       # offset aligned; see collect.py)
    python -m repro.obs sample-dist --out DIR
        # two-process demo: spawns a counter-service child, runs a
        # client check released over the wire, fetches the server ring,
        # merges, analyzes, exports Perfetto, scrapes fleet metrics

    python -m repro.obs load --out DIR [--two-process]
        # open-loop load against the counter-backed rate limiter
        # (in-process, or against a spawned counter-service child);
        # writes requests.jsonl, trace(-merged).jsonl, meta.json
    python -m repro.obs slo-report --in DIR [--expect-wire]
        # "why is p99 high": explain the worst-K requests of a recorded
        # load run (critical path, wait/wire/service decomposition,
        # pid-qualified releaser); --expect-wire fails unless at least
        # one exemplar's critical path crosses processes

``--demo`` runs a short canned workload (a fan-in counter, a sharded
counter, a timed-out check) with observability enabled so there is
something to show; without it the commands render whatever the current
process has live — which, for a fresh CLI process, is nothing.  The
causal subcommands accept ``--in`` (a ``trace.jsonl`` replay), ``--fw
barrier|ragged`` (run the §4 imbalanced workload on live threads and
analyze its trace), or ``--demo``.  The ``sample`` subcommand is what
CI uploads as its observability artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro.obs as obs


def _demo_workload() -> None:
    """A few milliseconds of representative traffic: parks, wakeups,
    a spin exhaustion or two, a genuine timeout, and shard flushes."""
    import threading

    from repro.core import CheckTimeout, MonotonicCounter, ShardedCounter

    counter = MonotonicCounter(name="demo-fanin", stats=True)
    sharded = ShardedCounter(shards=4, batch=8, name="demo-sharded")

    def checker(level: int) -> None:
        counter.check(level)

    threads = [threading.Thread(target=checker, args=(lvl,)) for lvl in (3, 3, 5)]
    for t in threads:
        t.start()
    for _ in range(5):
        counter.increment()
    for t in threads:
        t.join()

    try:
        counter.check(100, timeout=0.01)
    except CheckTimeout:
        pass

    for _ in range(40):
        sharded.increment()
    sharded.check(32)

    # Keep the demo counters alive for the dump that follows.
    _demo_workload.keep = (counter, sharded)  # type: ignore[attr-defined]


def _cmd_dump(args: argparse.Namespace) -> int:
    if args.demo:
        obs.enable()
        _demo_workload()
    print(json.dumps(obs.dump_state(), indent=2))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.demo:
        obs.enable()
        _demo_workload()
    handle = obs.current()
    if handle is None or handle.metrics is None:
        print("observability is not enabled in this process "
              "(try --demo for a canned workload)", file=sys.stderr)
        return 1
    sys.stdout.write(handle.metrics.prometheus())
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    from repro.obs.causal import CausalGraph, analyze, render_report, to_perfetto, validate_perfetto

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    handle = obs.enable()
    _demo_workload()
    state = obs.dump_state()
    obs.disable()

    events = handle.trace.snapshot()
    trace_path = out / "trace.jsonl"
    with trace_path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.as_dict()) + "\n")
    (out / "metrics.prom").write_text(handle.metrics.prometheus(), encoding="utf-8")
    (out / "dump.json").write_text(json.dumps(state, indent=2) + "\n", encoding="utf-8")
    graph = CausalGraph.from_events(events)
    perfetto = to_perfetto(graph)
    problems = validate_perfetto(perfetto)
    if problems:
        print("perfetto export failed validation:", *problems[:5], sep="\n  ", file=sys.stderr)
        return 1
    (out / "trace.perfetto.json").write_text(
        json.dumps(perfetto, indent=2) + "\n", encoding="utf-8"
    )
    (out / "analyze.txt").write_text(
        render_report(analyze(graph), graph) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(handle.trace)} events, "
          f"{len(handle.metrics.labels())} metric series, "
          f"{len(graph.edges)} release edges -> {out}")
    return 0


# --------------------------------------------------------------- dist demo

def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.obs import collect

    rings = [collect.load_jsonl(path) for path in args.rings]
    merged = collect.merge(*rings, align=not args.no_align, root=args.root)
    pids = sorted({e.pid for e in merged if e.pid is not None})
    if args.out:
        collect.write_jsonl(merged, args.out, pid=pids[0] if pids else None)
        print(f"merged {len(rings)} rings ({len(merged)} events, "
              f"{len(pids)} pids) -> {args.out}")
    else:
        for event in merged:
            print(json.dumps(event.as_dict(), separators=(",", ":")))
    if not args.no_align and len(pids) > 1:
        offsets = collect.clock_offsets([e for ring in rings for e in ring])
        for pid, off in sorted(offsets.items()):
            print(f"  pid {pid}: clock offset {off * 1e6:+.1f} us",
                  file=sys.stderr)
    return 0


def _serve_sample_dist(portfile: str) -> int:
    """The child half of ``sample-dist``: a traced service that raises
    its own counter past the parent's check level, then idles until
    killed.  Writes ``{host, port, pid, metrics_port}`` to ``portfile``
    once listening."""
    import asyncio
    import os

    from repro.dist.service import CounterService

    obs.enable()

    async def run() -> None:
        service = CounterService(node_id="svc")
        await service.start()
        await service.serve_metrics()
        Path(portfile).write_text(json.dumps({
            "host": service.address[0], "port": service.port,
            "pid": os.getpid(), "metrics_port": service.metrics_port,
        }), encoding="utf-8")
        # Give the parent time to connect and park its check, then raise
        # the counter past the level — the push that wakes it crosses
        # the wire, which is the whole point of the demo.
        await asyncio.sleep(0.4)
        service.counter("orders").raise_source("svc", 3)
        while True:  # parent terminates us once it has fetched our ring
            await asyncio.sleep(3600)

    try:
        asyncio.run(run())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    return 0


def _cmd_sample_dist(args: argparse.Namespace) -> int:
    import socket
    import subprocess
    import time

    from repro.dist.client import open_threadside
    from repro.obs import collect
    from repro.obs.causal import (
        CausalGraph, analyze, render_report, to_perfetto, validate_perfetto,
    )

    if args.serve:
        return _serve_sample_dist(args.serve)
    if not args.out:
        print("sample-dist: --out DIR is required", file=sys.stderr)
        return 2

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    portfile = out / "server.json"
    portfile.unlink(missing_ok=True)
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.obs", "sample-dist", "--serve", str(portfile)]
    )
    try:
        deadline = time.monotonic() + 10.0
        while not portfile.exists() or not portfile.read_text(encoding="utf-8"):
            if server.poll() is not None or time.monotonic() > deadline:
                print("sample-dist: server child did not come up", file=sys.stderr)
                return 1
            time.sleep(0.02)
        info = json.loads(portfile.read_text(encoding="utf-8"))

        handle = obs.enable()
        with open_threadside(info["host"], info["port"], source="sample-client") as ep:
            orders = ep.counter("orders")
            orders.increment(1)
            orders.flush()
            orders.check(3, timeout=10.0)  # parks; released by the server push
            trace_reply = ep.fetch_trace()
            metrics_reply = ep.fetch_metrics()
        with socket.create_connection((info["host"], info["metrics_port"]),
                                      timeout=5.0) as sock:
            sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.shutdown(socket.SHUT_WR)
            scrape = b""
            while chunk := sock.recv(65536):
                scrape += chunk
        obs.disable()
    finally:
        server.terminate()
        server.wait(timeout=10.0)

    client_ring = out / "trace-client.jsonl"
    server_ring = out / "trace-server.jsonl"
    n_client = collect.write_jsonl(handle.trace.snapshot(), str(client_ring))
    n_server = collect.write_jsonl(trace_reply["events"], str(server_ring),
                                   pid=trace_reply["pid"])
    merged = collect.merge(collect.load_jsonl(str(client_ring)),
                           collect.load_jsonl(str(server_ring)))
    collect.write_jsonl(merged, str(out / "trace-merged.jsonl"))
    (out / "fleet.prom").write_text(
        scrape.split(b"\r\n\r\n", 1)[-1].decode("utf-8", "replace"),
        encoding="utf-8",
    )
    (out / "metrics-reply.json").write_text(
        json.dumps(metrics_reply, indent=2) + "\n", encoding="utf-8")

    graph = CausalGraph.from_events(merged)
    report = analyze(graph)
    (out / "analyze.txt").write_text(render_report(report, graph) + "\n",
                                     encoding="utf-8")
    (out / "analyze.json").write_text(json.dumps(report, indent=2) + "\n",
                                      encoding="utf-8")
    perfetto = to_perfetto(graph)
    problems = validate_perfetto(perfetto)
    if problems:
        print("perfetto export failed validation:", *problems[:5],
              sep="\n  ", file=sys.stderr)
        return 1
    (out / "trace.perfetto.json").write_text(
        json.dumps(perfetto, indent=2) + "\n", encoding="utf-8")

    path_pids = {graph.thread_pid(step.thread) for step in graph.critical_path()}
    wired = [e for e in graph.edges if e.origin is not None]
    print(f"wrote {n_client}+{n_server} events ({len(merged)} merged, "
          f"{len(graph.pids)} pids), {len(graph.edges)} release edges "
          f"({len(wired)} over the wire, {len(graph.wire_edges)} frame pairs) "
          f"-> {out}")
    print(f"critical path spans pids: {sorted(p for p in path_pids if p)}")
    if len(path_pids) < 2:
        print("sample-dist: critical path did not span both processes",
              file=sys.stderr)
        return 1
    if not any(e.origin is not None and e.increment is not None
               for e in graph.edges):
        print("sample-dist: no wire edge carries its releasing increment",
              file=sys.stderr)
        return 1
    return 0


# ------------------------------------------------------------- load / slo

def _load_keys(n: int) -> list[str]:
    return [f"user{i}" for i in range(n)]


def _serve_load(args: argparse.Namespace) -> int:
    """The child half of ``load --two-process``: a traced counter
    service rolling the limiter's windows (:func:`serve_rolls` — the
    service host is the only roller; see ``apps/ratelimit.py``).
    Writes ``{host, port, pid}`` to the portfile once listening."""
    import asyncio
    import os

    from repro.apps.ratelimit import serve_rolls
    from repro.dist.service import CounterService

    obs.enable()

    async def run() -> None:
        service = CounterService(node_id="ratelimit-svc")
        await service.start()
        Path(args.serve).write_text(json.dumps({
            "host": service.address[0], "port": service.port,
            "pid": os.getpid(),
        }), encoding="utf-8")
        await serve_rolls(
            service, keys=_load_keys(args.keys), limit=args.limit,
            window_s=args.window, interval=args.roll_interval,
        )

    try:
        asyncio.run(run())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import subprocess
    import time

    from repro.apps.ratelimit import RateLimiter, ServiceBackend
    from repro.obs import collect
    from repro.obs.load import run_load
    from repro.obs.slo import SloPolicy, SloTracker
    from repro.obs.watchdog import StallWatchdog

    if args.serve:
        return _serve_load(args)
    if not args.out:
        print("load: --out DIR is required", file=sys.stderr)
        return 2

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    keys = _load_keys(args.keys)
    tracker = SloTracker(SloPolicy(
        objective_s=args.objective, quantile=args.quantile,
        window_s=max(args.duration, 1.0),
    ))
    handle = obs.enable()
    # The SLO engine rides the stall watchdog's poll loop: one periodic
    # thread evaluates both liveness and burn rate during the run.
    watchdog = StallWatchdog(threshold=args.duration + 60.0, interval=0.25)
    tracker.attach(watchdog)
    watchdog.start()

    server = endpoint = trace_reply = None
    try:
        if args.two_process:
            from repro.dist.client import open_threadside

            portfile = out / "server.json"
            portfile.unlink(missing_ok=True)
            server = subprocess.Popen([
                sys.executable, "-m", "repro.obs", "load",
                "--serve", str(portfile), "--keys", str(args.keys),
                "--limit", str(args.limit), "--window", str(args.window),
                "--roll-interval", str(args.roll_interval),
            ])
            deadline = time.monotonic() + 10.0
            while not portfile.exists() or not portfile.read_text(encoding="utf-8"):
                if server.poll() is not None or time.monotonic() > deadline:
                    print("load: server child did not come up", file=sys.stderr)
                    return 1
                time.sleep(0.02)
            info = json.loads(portfile.read_text(encoding="utf-8"))
            endpoint = open_threadside(info["host"], info["port"],
                                       source="load-client")
            limiter = RateLimiter(
                args.limit, args.window, backend=ServiceBackend(endpoint),
                roll_interval=args.roll_interval,
            )
            result = run_load(
                limiter, rate=args.rate, duration=args.duration,
                seed=args.seed, keys=keys, mode=args.mode,
                workers=args.workers, timeout=args.timeout,
                observers=[tracker],
            )
            trace_reply = endpoint.fetch_trace()
        else:
            limiter = RateLimiter(args.limit, args.window,
                                  roll_interval=args.roll_interval)
            limiter.start_roller()
            try:
                result = run_load(
                    limiter, rate=args.rate, duration=args.duration,
                    seed=args.seed, keys=keys, mode=args.mode,
                    workers=args.workers, timeout=args.timeout,
                    observers=[tracker],
                )
            finally:
                limiter.stop_roller()
        slo_state = tracker.poll()
    finally:
        watchdog.stop()
        if endpoint is not None:
            endpoint.close()
        if server is not None:
            server.terminate()
            server.wait(timeout=10.0)
        obs.disable()

    with (out / "requests.jsonl").open("w", encoding="utf-8") as fh:
        for r in result.records:
            fh.write(json.dumps({
                "index": r.index, "key": r.key, "corr": r.corr,
                "intended": r.intended, "start": r.start, "end": r.end,
                "ok": r.ok, "latency": r.latency, "queue_s": r.queue_s,
                "service_s": r.service_s,
            }, separators=(",", ":")) + "\n")
    if trace_reply is not None:
        client_ring = out / "trace-client.jsonl"
        server_ring = out / "trace-server.jsonl"
        collect.write_jsonl(handle.trace.snapshot(), str(client_ring))
        collect.write_jsonl(trace_reply["events"], str(server_ring),
                            pid=trace_reply["pid"])
        merged = collect.merge(collect.load_jsonl(str(client_ring)),
                               collect.load_jsonl(str(server_ring)))
        collect.write_jsonl(merged, str(out / "trace-merged.jsonl"))
    else:
        collect.write_jsonl(handle.trace.snapshot(), str(out / "trace.jsonl"))
    meta = {
        "two_process": bool(args.two_process),
        "summary": result.summary(),
        "slo": slo_state,
        "breaches": len(tracker.breaches),
        "exemplars": [r.corr for r in tracker.exemplars() if r.corr],
        "policy": {"objective_s": args.objective, "quantile": args.quantile},
        "config": {
            "keys": args.keys, "limit": args.limit, "window_s": args.window,
            "roll_interval": args.roll_interval, "mode": args.mode,
            "workers": args.workers, "timeout": args.timeout,
        },
    }
    (out / "meta.json").write_text(json.dumps(meta, indent=2) + "\n",
                                   encoding="utf-8")
    print(f"load: {result.summary()} -> {out}")
    return 0


def _cmd_slo_report(args: argparse.Namespace) -> int:
    from repro.obs import collect
    from repro.obs.slo import explain

    indir = Path(args.indir)
    meta_path = indir / "meta.json"
    if not meta_path.exists():
        print(f"slo-report: {meta_path} not found (run `load --out` first)",
              file=sys.stderr)
        return 2
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    trace_path = indir / "trace-merged.jsonl"
    if not trace_path.exists():
        trace_path = indir / "trace.jsonl"
    events = collect.load_jsonl(str(trace_path))
    with (indir / "requests.jsonl").open("r", encoding="utf-8") as fh:
        requests = [json.loads(line) for line in fh if line.strip()]

    worst = sorted((r for r in requests if r.get("corr")),
                   key=lambda r: r["latency"], reverse=True)[:args.k]
    lines = [
        f"SLO report over {len(requests)} requests "
        f"({meta['summary']['mode']} loop, "
        f"offered {meta['summary']['offered_rate']}/s, "
        f"achieved {meta['summary']['achieved_rate']}/s)",
        f"  p50 {meta['summary']['p50'] * 1e3:.2f}ms  "
        f"p99 {meta['summary']['p99'] * 1e3:.2f}ms  "
        f"p999 {meta['summary']['p999'] * 1e3:.2f}ms  "
        f"admit {meta['summary']['admit_rate']:.2%}",
        f"  window burn rate {meta['slo']['burn_rate']:.2f}x "
        f"({meta['slo']['window_violations']}/{meta['slo']['window_total']} "
        f"over {meta['policy']['objective_s'] * 1e3:.0f}ms objective), "
        f"{meta['breaches']} breach event(s)",
        "",
    ]
    reports = []
    for req in worst:
        try:
            report = explain(req["corr"], events)
        except ValueError as exc:
            lines.append(f"exemplar {req['corr']}: unexplainable ({exc})")
            continue
        reports.append(report)
        lines.append(report.render())
        lines.append("")
    text = "\n".join(lines)
    print(text)
    (indir / "slo-report.txt").write_text(text + "\n", encoding="utf-8")
    if args.expect_wire:
        crossed = [r for r in reports if r.crosses_pid or r.over_wire]
        if not crossed:
            print("slo-report: no tail exemplar's critical path crossed "
                  "the wire", file=sys.stderr)
            return 1
        print(f"slo-report: {len(crossed)} exemplar(s) crossed the wire "
              f"(e.g. {crossed[0].corr}: released by {crossed[0].releaser})")
    return 0


# ------------------------------------------------------------------- causal

def _load_graph(args: argparse.Namespace):
    """The trace for a causal subcommand: --in JSONL, --fw live run, or --demo."""
    from repro.obs.causal import CausalGraph
    from repro.obs.causal.workloads import run_imbalanced_fw

    if getattr(args, "infile", None):
        return CausalGraph.from_jsonl(args.infile)
    if getattr(args, "fw", None):
        run = run_imbalanced_fw(args.fw, threads=args.threads, rounds=args.rounds,
                                seed=args.seed)
        print(f"ran fw mode={run['mode']} threads={run['threads']} "
              f"rounds={run['rounds']} wall={run['wall_s'] * 1e3:.1f}ms",
              file=sys.stderr)
        return CausalGraph.from_events(run["events"])
    if getattr(args, "demo", False):
        handle = obs.enable()
        _demo_workload()
        obs.disable()
        return CausalGraph.from_events(handle.trace.snapshot())
    print("no trace: pass --in TRACE.jsonl, --fw barrier|ragged, or --demo",
          file=sys.stderr)
    return None


def _add_trace_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--in", dest="infile", metavar="TRACE.jsonl",
                        help="replay a JSONL trace (from sample or a sink)")
    parser.add_argument("--fw", choices=("barrier", "ragged"),
                        help="run the §4 imbalanced workload live and trace it")
    parser.add_argument("--demo", action="store_true",
                        help="trace the canned demo workload")
    parser.add_argument("--threads", type=int, default=4, help="--fw gang size")
    parser.add_argument("--rounds", type=int, default=8, help="--fw round count")
    parser.add_argument("--seed", type=int, default=7, help="--fw cost seed")


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs.causal import analyze, render_report

    graph = _load_graph(args)
    if graph is None:
        return 1
    report = analyze(graph)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report, graph))
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from repro.obs.causal import analyze

    graph = _load_graph(args)
    if graph is None:
        return 1
    cp = analyze(graph)["critical_path"]
    if args.json:
        print(json.dumps(cp, indent=2))
        return 0
    print(f"critical path: {cp['duration_s'] * 1e3:.2f} ms, {len(cp['steps'])} segments")
    for step in cp["steps"]:
        what = step["kind"] if not step["detail"] else f"{step['kind']} ({step['detail']})"
        print(f"  {step['name']}  {step['start_s'] * 1e3:8.2f} -> "
              f"{step['end_s'] * 1e3:8.2f} ms  {what}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.causal import to_otel, to_perfetto, validate_perfetto

    graph = _load_graph(args)
    if graph is None:
        return 1
    if args.format == "perfetto":
        doc = to_perfetto(graph)
        problems = validate_perfetto(doc)
        if problems:
            print("export failed validation:", *problems[:10], sep="\n  ", file=sys.stderr)
            return 1
    else:
        doc = to_otel(graph)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} export of {len(graph.events)} events "
              f"({len(graph.edges)} release edges) -> {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect live monotonic-counter state, metrics, and traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dump = sub.add_parser("dump", help="live counter state as JSON")
    p_dump.add_argument("--demo", action="store_true",
                        help="run a canned workload first so there is state to show")
    p_dump.set_defaults(fn=_cmd_dump)

    p_metrics = sub.add_parser("metrics", help="Prometheus text exposition")
    p_metrics.add_argument("--demo", action="store_true",
                           help="run a canned workload first")
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_sample = sub.add_parser(
        "sample", help="run the demo workload; write trace.jsonl/metrics.prom/"
                       "dump.json/trace.perfetto.json/analyze.txt"
    )
    p_sample.add_argument("--out", required=True, help="output directory")
    p_sample.set_defaults(fn=_cmd_sample)

    p_collect = sub.add_parser(
        "collect", help="merge per-process trace rings into one timeline"
    )
    p_collect.add_argument("rings", nargs="+", metavar="RING.jsonl",
                           help="per-process JSONL rings to merge")
    p_collect.add_argument("--out", help="merged JSONL path (stdout when omitted)")
    p_collect.add_argument("--no-align", action="store_true",
                           help="skip clock-offset rebasing (same-host traces)")
    p_collect.add_argument("--root", type=int, metavar="PID",
                           help="pid whose clock anchors the merged timeline")
    p_collect.set_defaults(fn=_cmd_collect)

    p_sdist = sub.add_parser(
        "sample-dist",
        help="two-process demo: traced service child + client check released "
             "over the wire; writes merged trace, causal report, Perfetto "
             "export, fleet metrics scrape",
    )
    p_sdist.add_argument("--out", help="output directory")
    p_sdist.add_argument("--serve", metavar="PORTFILE", help=argparse.SUPPRESS)
    p_sdist.set_defaults(fn=_cmd_sample_dist)

    p_load = sub.add_parser(
        "load",
        help="open-loop load against the counter-backed rate limiter; "
             "writes requests.jsonl, trace(-merged).jsonl, meta.json",
    )
    p_load.add_argument("--out", help="output directory")
    p_load.add_argument("--two-process", action="store_true",
                        help="drive a spawned counter-service child instead "
                             "of an in-process limiter")
    p_load.add_argument("--rate", type=float, default=60.0,
                        help="offered arrival rate (requests/s)")
    p_load.add_argument("--duration", type=float, default=1.5,
                        help="schedule length (seconds)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="arrival-schedule seed")
    p_load.add_argument("--keys", type=int, default=2,
                        help="number of quota keys (user0..userN-1)")
    p_load.add_argument("--limit", type=int, default=5,
                        help="admissions per key per window")
    p_load.add_argument("--window", type=float, default=0.5,
                        help="sliding window (seconds)")
    p_load.add_argument("--roll-interval", type=float, default=0.1,
                        help="window roll period (seconds)")
    p_load.add_argument("--mode", choices=("open", "closed"), default="open",
                        help="open loop (CO-safe) or closed loop (contrast)")
    p_load.add_argument("--workers", type=int, default=4,
                        help="executor thread count")
    p_load.add_argument("--timeout", type=float, default=2.0,
                        help="per-request acquire timeout (seconds)")
    p_load.add_argument("--objective", type=float, default=0.05,
                        help="SLO latency objective (seconds)")
    p_load.add_argument("--quantile", type=float, default=0.99,
                        help="SLO quantile")
    p_load.add_argument("--serve", metavar="PORTFILE", help=argparse.SUPPRESS)
    p_load.set_defaults(fn=_cmd_load)

    p_slo = sub.add_parser(
        "slo-report",
        help='per-request "why is p99 high" reports for a recorded load run',
    )
    p_slo.add_argument("--in", dest="indir", required=True, metavar="DIR",
                       help="a `load --out` directory")
    p_slo.add_argument("-k", type=int, default=3, dest="k",
                       help="how many tail exemplars to explain")
    p_slo.add_argument("--expect-wire", action="store_true",
                       help="exit 1 unless an exemplar's critical path "
                            "crosses processes")
    p_slo.set_defaults(fn=_cmd_slo_report)

    p_analyze = sub.add_parser(
        "analyze", help="causal report: blame, critical path, Gantt"
    )
    _add_trace_source(p_analyze)
    p_analyze.add_argument("--json", action="store_true", help="JSON instead of text")
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_cp = sub.add_parser("critical-path", help="just the critical path")
    _add_trace_source(p_cp)
    p_cp.add_argument("--json", action="store_true", help="JSON instead of text")
    p_cp.set_defaults(fn=_cmd_critical_path)

    p_export = sub.add_parser(
        "export", help="convert a trace to Perfetto trace_event JSON or OTel spans"
    )
    _add_trace_source(p_export)
    p_export.add_argument("--format", choices=("perfetto", "otel"), default="perfetto")
    p_export.add_argument("--out", help="output file (stdout when omitted)")
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
