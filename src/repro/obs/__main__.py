"""CLI for the observability layer.

::

    python -m repro.obs dump [--demo]        # live counter state as JSON
    python -m repro.obs metrics [--demo]     # Prometheus text exposition
    python -m repro.obs sample --out DIR     # run the demo workload and
                                             # write trace.jsonl,
                                             # metrics.prom, dump.json

``--demo`` runs a short canned workload (a fan-in counter, a sharded
counter, a timed-out check) with observability enabled so there is
something to show; without it the commands render whatever the current
process has live — which, for a fresh CLI process, is nothing.  The
``sample`` subcommand is what CI uploads as its observability artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro.obs as obs


def _demo_workload() -> None:
    """A few milliseconds of representative traffic: parks, wakeups,
    a spin exhaustion or two, a genuine timeout, and shard flushes."""
    import threading

    from repro.core import CheckTimeout, MonotonicCounter, ShardedCounter

    counter = MonotonicCounter(name="demo-fanin", stats=True)
    sharded = ShardedCounter(shards=4, batch=8, name="demo-sharded")

    def checker(level: int) -> None:
        counter.check(level)

    threads = [threading.Thread(target=checker, args=(lvl,)) for lvl in (3, 3, 5)]
    for t in threads:
        t.start()
    for _ in range(5):
        counter.increment()
    for t in threads:
        t.join()

    try:
        counter.check(100, timeout=0.01)
    except CheckTimeout:
        pass

    for _ in range(40):
        sharded.increment()
    sharded.check(32)

    # Keep the demo counters alive for the dump that follows.
    _demo_workload.keep = (counter, sharded)  # type: ignore[attr-defined]


def _cmd_dump(args: argparse.Namespace) -> int:
    if args.demo:
        obs.enable()
        _demo_workload()
    print(json.dumps(obs.dump_state(), indent=2))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.demo:
        obs.enable()
        _demo_workload()
    handle = obs.current()
    if handle is None or handle.metrics is None:
        print("observability is not enabled in this process "
              "(try --demo for a canned workload)", file=sys.stderr)
        return 1
    sys.stdout.write(handle.metrics.prometheus())
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    handle = obs.enable()
    _demo_workload()
    state = obs.dump_state()
    obs.disable()

    trace_path = out / "trace.jsonl"
    with trace_path.open("w", encoding="utf-8") as fh:
        for event in handle.trace.snapshot():
            fh.write(json.dumps(event.as_dict()) + "\n")
    (out / "metrics.prom").write_text(handle.metrics.prometheus(), encoding="utf-8")
    (out / "dump.json").write_text(json.dumps(state, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(handle.trace)} events, "
          f"{len(handle.metrics.labels())} metric series -> {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect live monotonic-counter state, metrics, and traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dump = sub.add_parser("dump", help="live counter state as JSON")
    p_dump.add_argument("--demo", action="store_true",
                        help="run a canned workload first so there is state to show")
    p_dump.set_defaults(fn=_cmd_dump)

    p_metrics = sub.add_parser("metrics", help="Prometheus text exposition")
    p_metrics.add_argument("--demo", action="store_true",
                           help="run a canned workload first")
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_sample = sub.add_parser(
        "sample", help="run the demo workload; write trace.jsonl/metrics.prom/dump.json"
    )
    p_sample.add_argument("--out", required=True, help="output directory")
    p_sample.set_defaults(fn=_cmd_sample)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
