"""repro.obs.causal — causal analysis of observability traces.

Schema-v2 traces carry enough correlation structure (``seq``, ``token``,
``cause_seq`` — see :mod:`repro.obs.events`) to reconstruct *why* each
thread ran when it did: which increment released which wait, where the
critical path through the run actually went, and which counter each
thread spent its blocked time on.  This package turns a trace — a live
ring snapshot or a JSONL replay — into that structure and renders it:

* :class:`~repro.obs.causal.graph.CausalGraph` — per-thread run/wait
  segments plus cross-thread release→unpark edges;
* :func:`~repro.obs.causal.analyze.analyze` — critical path, per-thread
  blocked-time blame, barrier-vs-ragged imbalance report;
* :func:`~repro.obs.causal.perfetto.to_perfetto` — Chrome/Perfetto
  ``trace_event`` JSON with flow arrows on every release edge;
* :func:`~repro.obs.causal.otel.to_otel` — OTel-shaped span dicts (no
  opentelemetry dependency);
* :func:`~repro.obs.causal.diff.canonical_trace` /
  :func:`~repro.obs.causal.diff.trace_diff` — schedule-invariant trace
  canonicalization for determinacy checking;
* :mod:`~repro.obs.causal.workloads` — the §4 imbalanced
  Floyd-Warshall-shaped workload on real threads, barrier vs ragged.

``python -m repro.obs analyze|critical-path|export`` is the CLI face.
"""

from __future__ import annotations

from repro.obs.causal.analyze import analyze, render_gantt, render_report
from repro.obs.causal.diff import canonical_trace, trace_diff
from repro.obs.causal.graph import CausalGraph, Edge, WaitInterval
from repro.obs.causal.otel import to_otel
from repro.obs.causal.perfetto import to_perfetto, validate_perfetto

__all__ = [
    "CausalGraph",
    "Edge",
    "WaitInterval",
    "analyze",
    "render_report",
    "render_gantt",
    "to_perfetto",
    "validate_perfetto",
    "to_otel",
    "canonical_trace",
    "trace_diff",
]
