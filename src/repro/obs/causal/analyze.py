"""Reports over a :class:`~repro.obs.causal.graph.CausalGraph`.

:func:`analyze` distills a graph into one JSON-able report — per-thread
utilization and blocked-time blame, the critical path, per-source
release counts — and :func:`render_report` / :func:`render_gantt` turn
it into text.  The Gantt is the live-trace form of the §4 argument that
``examples/gantt_chart.py`` makes in virtual time: under load imbalance
the barrier schedule shows every thread convoying behind the slowest
(columns of ``.``), while the ragged counter schedule overlaps the
stalls and finishes sooner.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.causal.graph import CausalGraph

__all__ = ["analyze", "render_report", "render_gantt"]


def analyze(graph: CausalGraph) -> dict:
    """One JSON-able report: span, threads, blame, critical path, sources."""
    t0, t1 = graph.span()
    span = t1 - t0
    blame = graph.blame()
    threads = []
    for ident in graph.threads:
        first, last = graph.thread_span(ident)
        wait_s = sum(w.duration for w in graph.waits if graph._wkey(w) == ident)
        thread_span = max(last - first, 0.0)
        threads.append(
            {
                "thread": ident,
                "name": graph.thread_name(ident),
                "pid": graph.thread_pid(ident),
                "span_s": thread_span,
                "wait_s": wait_s,
                "run_s": max(thread_span - wait_s, 0.0),
                "wait_pct": (100.0 * wait_s / thread_span) if thread_span > 0 else 0.0,
                "blame": blame.get(ident, []),
            }
        )
    path = graph.critical_path()
    sources: dict[str, dict] = defaultdict(lambda: {"increments": 0, "releases": 0, "waits": 0})
    for event in graph.events:
        if event.kind == "increment":
            sources[event.source]["increments"] += 1
        elif event.kind == "release":
            sources[event.source]["releases"] += 1
    for wait in graph.waits:
        sources[wait.source]["waits"] += 1
    return {
        "span_s": span,
        "events": len(graph.events),
        "pids": list(graph.pids),
        "threads": threads,
        "waits": len(graph.waits),
        "edges": len(graph.edges),
        "wire_edges": len(graph.wire_edges),
        "critical_path": {
            "duration_s": (path[-1].end - path[0].start) if path else 0.0,
            "steps": [
                {
                    "thread": step.thread,
                    "name": graph.thread_name(step.thread),
                    "kind": step.kind,
                    "start_s": step.start - t0,
                    "end_s": step.end - t0,
                    "duration_s": step.duration,
                    "detail": step.detail,
                }
                for step in path
            ],
        },
        "sources": dict(sources),
    }


def render_report(report: dict, graph: CausalGraph | None = None) -> str:
    """The analyze report as readable text (blame sentences included)."""
    lines: list[str] = []
    pids = report.get("pids") or []
    procs = f"{len(pids)} processes, " if len(pids) > 1 else ""
    wire = (
        f" ({report['wire_edges']} wire pairs)"
        if report.get("wire_edges") else ""
    )
    lines.append(
        f"trace: {report['events']} events over {report['span_s'] * 1e3:.2f} ms, "
        f"{procs}{len(report['threads'])} threads, {report['waits']} waits, "
        f"{report['edges']} release edges{wire}"
    )
    cp = report["critical_path"]
    lines.append(
        f"critical path: {cp['duration_s'] * 1e3:.2f} ms across {len(cp['steps'])} segments"
    )
    for step in cp["steps"]:
        what = step["kind"] if not step["detail"] else f"{step['kind']} ({step['detail']})"
        lines.append(
            f"  {step['name']}  {step['start_s'] * 1e3:8.2f} -> {step['end_s'] * 1e3:8.2f} ms  {what}"
        )
    name_of = {t["thread"]: t["name"] for t in report["threads"]}
    lines.append("blocked-time blame:")
    for thread in report["threads"]:
        lines.append(
            f"  {thread['name']}: {thread['wait_pct']:.0f}% of its {thread['span_s'] * 1e3:.2f} ms "
            f"span waiting ({thread['wait_s'] * 1e3:.2f} ms over "
            f"{sum(b['count'] for b in thread['blame'])} waits)"
        )
        for entry in thread["blame"][:3]:
            releaser = (
                f"released by {name_of.get(entry['released_by'], entry['released_by'])}"
                if entry["released_by"] is not None
                else "never released (timeout/untraced)"
            )
            level = f" level {entry['level']}" if entry["level"] is not None else ""
            lines.append(
                f"    {entry['pct']:.0f}% waiting on counter {entry['source']!r}{level}, "
                f"{releaser} ({entry['count']}x, {entry['wait_s'] * 1e3:.2f} ms)"
            )
    lines.append("per-source activity:")
    for source, stats in sorted(report["sources"].items()):
        lines.append(
            f"  {source}: {stats['increments']} increments, "
            f"{stats['releases']} releases, {stats['waits']} waits"
        )
    if graph is not None:
        lines.append("")
        lines.append(render_gantt(graph))
    return "\n".join(lines)


def render_gantt(graph: CausalGraph, width: int = 80) -> str:
    """ASCII Gantt: one row per thread, ``#`` running, ``.`` waiting.

    Rendered from the *live-thread* trace — the real-time counterpart of
    the virtual-time chart in ``examples/gantt_chart.py``.  Columns of
    ``.`` across all rows are the barrier convoy; a ragged staircase of
    ``.`` is the counter schedule doing only the waiting it must.
    """
    t0, t1 = graph.span()
    span = t1 - t0
    if span <= 0 or not graph.threads:
        return "(empty trace)"
    scale = width / span
    namew = max(4, max(len(graph.thread_name(i)) for i in graph.threads))
    rows = []
    for ident in graph.threads:
        cells = [" "] * width
        for kind, start, end, _wait in graph.segments(ident):
            lo = min(int((start - t0) * scale), width - 1)
            hi = min(int((end - t0) * scale), width - 1)
            mark = "#" if kind == "run" else "."
            for i in range(lo, hi + 1):
                # Waits overwrite run marks on shared cells so short
                # stalls stay visible at coarse resolution.
                if mark == "." or cells[i] == " ":
                    cells[i] = mark
        rows.append(f"{graph.thread_name(ident):>{namew}} |{''.join(cells)}|")
    return "\n".join([f"(#=running  .=waiting  span={span * 1e3:.2f}ms)"] + rows)
