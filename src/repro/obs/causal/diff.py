"""Determinacy trace diff: canonicalize away the schedule, compare the rest.

Section 6's claim is that programs synchronizing only through counters
are *determinate*: every schedule computes the same thing.  The causal
trace gives that claim an observable form — canonicalize two traces of
the same program down to what the program semantics determine and they
must compare equal, schedule be damned.

What survives canonicalization is deliberately minimal, because it must
be exactly the schedule-*invariant* part of a trace:

* per counter (sources canonicalized — the ``@0x...`` of unnamed
  counters differs between runs): the **multiset of increment amounts**
  and the **final value**.  For a §6-disciplined program both are fixed
  by the program text; for a program whose behavior leaks schedule
  order into its counter operations (the lock-rank variant in
  :mod:`~repro.obs.causal.workloads`) the amounts differ run to run,
  and the diff says exactly where.

What does *not* survive — and must not: intermediate values (two
concurrent increments of 2 and 3 pass through 2-then-5 or 3-then-5
depending on order, while both orders are §6-legal), park/release
counts (whether a ``check`` suspends at all is pure timing), thread
idents, timestamps, and seqs.  Putting any of those in the canonical
form would make determinate programs compare unequal.

This is the trace-level complement of
:mod:`repro.determinism.vectorclock`: the vector-clock checker proves
determinacy from one run's happens-before; the trace diff *observes* it
across many runs.  The tests cross-validate the two.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.obs.events import Event

__all__ = ["canonical_source", "canonical_trace", "trace_diff"]

_ANON = re.compile(r"@0x[0-9a-f]+$")


def canonical_source(source: str) -> str:
    """Strip the per-run ``@0x...`` suffix of unnamed primitives."""
    return _ANON.sub("", source)


def canonical_trace(events: Iterable[Event | dict]) -> dict:
    """The schedule-invariant skeleton of a trace.

    ``{canonical source: {"amounts": sorted tuple, "final": int,
    "increments": int}}``, covering every source that incremented.
    """
    out: dict[str, dict] = {}
    for raw in events:
        event = raw if isinstance(raw, Event) else Event.from_dict(raw)
        if event.kind != "increment":
            continue
        entry = out.setdefault(
            canonical_source(event.source),
            {"amounts": [], "final": 0, "increments": 0},
        )
        entry["amounts"].append(event.amount if event.amount is not None else 0)
        entry["increments"] += 1
        if event.value is not None and event.value > entry["final"]:
            entry["final"] = event.value
    for entry in out.values():
        entry["amounts"] = tuple(sorted(entry["amounts"]))
    return out


def trace_diff(a: dict, b: dict) -> dict:
    """Compare two canonical traces; ``{"equal": bool, "diffs": [...]}``.

    Each diff line names the source and the facet that diverged, so a
    failing determinacy comparison reads as a localized bug report, not
    a bare inequality.
    """
    diffs: list[str] = []
    for source in sorted(set(a) | set(b)):
        ea, eb = a.get(source), b.get(source)
        if ea is None or eb is None:
            present = "first" if eb is None else "second"
            diffs.append(f"{source}: only present in {present} trace")
            continue
        if ea["increments"] != eb["increments"]:
            diffs.append(
                f"{source}: increment count {ea['increments']} != {eb['increments']}"
            )
        if ea["amounts"] != eb["amounts"]:
            diffs.append(
                f"{source}: increment amounts {ea['amounts']} != {eb['amounts']}"
            )
        if ea["final"] != eb["final"]:
            diffs.append(f"{source}: final value {ea['final']} != {eb['final']}")
    return {"equal": not diffs, "diffs": diffs}
