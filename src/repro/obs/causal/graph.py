"""The causal graph: who released whom, reconstructed from a trace.

A schema-v2/v3 trace is a flat event stream; this module rebuilds the
structures the analyses need:

* **Wait intervals** — for every suspended ``check`` (and MultiWait
  wait), the ``park`` event and the ``unpark``/``timeout`` that ended
  it, matched per thread by correlation ``token`` (FIFO per
  ``(thread, source, level)`` for token-less pre-v2 / baseline events).
* **Release edges** — for every interval that ended in a wakeup, the
  ``release`` event that unlinked its wait node (same ``token``) and,
  through the release's ``cause_seq``, the increment whose advance did
  it.  An edge is the trace-level form of the paper's synchronization
  arrow: *thread R's increment happened-before thread W's resumption*.
* **Wire edges** — in merged multi-process traces (schema v3), waits
  whose wakeup crossed the wire.  A dist client's ``unpark`` carries
  the correlation token of its subscription; the server's
  ``push_deliver`` carries the same token plus the ``cause_seq`` of the
  increment that satisfied it, so the edge runs *server increment →
  push → client unpark* with no token-matched local release at all.
  Likewise a shm reader's locally-matched release carries the bell
  correlation, which names the writer-side ``bell_ring`` that rang it —
  the edge's :attr:`Edge.origin` is then the foreign bell event.

Events are ordered by ``seq`` (the process-global emission counter),
not buffer position or timestamp: the deferred release emission means
physical append order can interleave, but seq order is causal order by
construction (:mod:`repro.obs.hooks` pre-allocates the seqs).  Traces
without seqs (pre-v2 JSONL) fall back to timestamp order.  Merged
multi-pid traces order by ``(ts, pid, seq)`` — seqs from different
processes are incomparable, so the (offset-rebased, see
:mod:`repro.obs.collect`) timestamp is the only global axis, with the
per-pid seq still breaking ties causally within a process.

Thread identity follows the trace: in a single-process trace a thread
is its raw ident (an ``int``, as in schema v2); in a multi-pid trace it
is the ``(pid, ident)`` pair — raw idents can collide across processes.
:meth:`CausalGraph.thread_pid` / :meth:`~CausalGraph.thread_tid` split
a key without caring which form it takes.

Everything here is read-side analysis over a detached snapshot — it
never touches the live primitives and is free to take its time.
"""

from __future__ import annotations

import json
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import Event

__all__ = ["CausalGraph", "Edge", "WaitInterval", "PathStep"]

#: Event kinds that open a wait interval, mapped to the kinds that close it.
_PARK_KINDS = {
    "park": ("unpark", "timeout"),
    "mw_park": ("mw_wake", "mw_timeout"),
}
_END_KINDS = {"unpark", "timeout", "mw_wake", "mw_timeout"}

#: A thread key: raw ident in single-pid traces, (pid, ident) in merged ones.
ThreadKey = "int | tuple[int, int]"


@dataclass(frozen=True)
class WaitInterval:
    """One thread's suspension: ``park`` event through its ending event."""

    thread: int
    source: str
    level: int | None
    token: int | None
    park: Event
    end: Event
    pid: int | None = None

    @property
    def timed_out(self) -> bool:
        return self.end.kind in ("timeout", "mw_timeout")

    @property
    def duration(self) -> float:
        return self.end.ts - self.park.ts


@dataclass(frozen=True)
class Edge:
    """A cross-thread wakeup: ``release`` (and its increment) → a wait's end.

    ``from_thread``/``to_thread`` are thread *keys* (see module
    docstring); when not supplied they default to the raw idents of the
    release and waiting events, which is exactly the single-pid case.
    ``origin``, when set, is the foreign-process event the release was
    correlated to (a shm ``bell_ring`` or a service ``push_deliver``) —
    the true cross-process start of the arrow.
    """

    release: Event
    increment: Event | None
    wait: WaitInterval
    from_thread: "ThreadKey | None" = None
    to_thread: "ThreadKey | None" = None
    origin: Event | None = None

    def __post_init__(self) -> None:
        if self.from_thread is None:
            object.__setattr__(self, "from_thread", self.release.thread)
        if self.to_thread is None:
            object.__setattr__(self, "to_thread", self.wait.thread)

    @property
    def crosses_pid(self) -> bool:
        return (
            isinstance(self.from_thread, tuple)
            and isinstance(self.to_thread, tuple)
            and self.from_thread[0] != self.to_thread[0]
        )


@dataclass(frozen=True)
class PathStep:
    """One segment of the critical path, on one thread."""

    thread: "ThreadKey"
    kind: str  # "run" | "wakeup" | "wait"
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CausalGraph:
    """The analyzed trace: events, wait intervals, release + wire edges.

    Build with :meth:`from_events` (any iterable of :class:`Event` or
    ``as_dict``-shaped mappings) or :meth:`from_jsonl`.
    """

    events: list[Event]
    waits: list[WaitInterval] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    #: Release edge lookup by the wait's ending event (seq, or (pid, seq)).
    edge_by_end: dict[object, Edge] = field(default_factory=dict)
    #: Thread keys in order of first appearance, mapped to display index.
    thread_index: dict[object, int] = field(default_factory=dict)
    #: Distinct stamped pids, in order of first appearance.
    pids: list[int] = field(default_factory=list)
    #: frame_send/push_deliver → frame_recv pairs by correlation token.
    wire_edges: list[tuple[Event, Event]] = field(default_factory=list)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_events(cls, events: Iterable[Event | dict]) -> "CausalGraph":
        evs = [e if isinstance(e, Event) else Event.from_dict(e) for e in events]
        pids: list[int] = []
        for e in evs:
            if e.pid is not None and e.pid not in pids:
                pids.append(e.pid)
        if len(pids) > 1:
            # Cross-process: per-pid seqs don't compare; (rebased) time is
            # the shared axis, seq still breaks same-pid ties causally.
            evs.sort(key=lambda e: (e.ts, e.pid or 0, e.seq or 0))
        elif evs and all(e.seq is not None for e in evs):
            evs.sort(key=lambda e: e.seq)
        else:
            evs.sort(key=lambda e: e.ts)
        graph = cls(events=evs, pids=pids)
        graph._build()
        return graph

    @classmethod
    def from_jsonl(cls, path: str) -> "CausalGraph":
        with open(path, "r", encoding="utf-8") as fh:
            docs = [json.loads(line) for line in fh if line.strip()]
        return cls.from_events(docs)

    # Thread/event keying.  Single-pid graphs keep the schema-v2 shapes
    # (ints and bare seqs) so v2 traces and their tests read identically;
    # multi-pid graphs qualify everything by pid.

    @property
    def multi_pid(self) -> bool:
        return len(self.pids) > 1

    def _pid_of(self, event: Event) -> int | None:
        if not self.multi_pid:
            return None
        return event.pid if event.pid is not None else 0

    def _tkey(self, event: Event):
        if self.multi_pid:
            return (self._pid_of(event), event.thread)
        return event.thread

    def _wkey(self, wait: WaitInterval):
        if self.multi_pid:
            return (wait.pid if wait.pid is not None else 0, wait.thread)
        return wait.thread

    def _end_key(self, event: Event):
        if event.seq is None:
            return None
        if self.multi_pid:
            return (self._pid_of(event), event.seq)
        return event.seq

    def edge_for(self, wait: WaitInterval) -> Edge | None:
        """The release edge that ended ``wait``, if the trace shows one."""
        key = self._end_key(wait.end)
        return self.edge_by_end.get(key) if key is not None else None

    def _build(self) -> None:
        for event in self.events:
            key = self._tkey(event)
            if key not in self.thread_index:
                self.thread_index[key] = len(self.thread_index)
        # Pass 1: match each park with the event that ended it.  Tokened
        # parks match exactly (a thread has at most one live wait per
        # token); token-less ones (BroadcastCounter, pre-v2 traces) match
        # FIFO per (thread, source, level) — sound because one thread's
        # waits on one level cannot overlap.  Every key is pid-qualified
        # via _tkey/_pid_of: tokens and seqs are per-process counters.
        pending_token: dict[tuple, Event] = {}
        pending_fifo: dict[tuple, deque[Event]] = defaultdict(deque)
        releases_by_token: dict[tuple, list[Event]] = defaultdict(list)
        increments: dict[tuple, Event] = {}
        for event in self.events:
            kind = event.kind
            if kind == "increment" and event.seq is not None:
                increments[(self._pid_of(event), event.seq)] = event
            elif kind == "release" and event.token is not None:
                releases_by_token[(self._pid_of(event), event.token)].append(event)
            elif kind in _PARK_KINDS:
                if event.token is not None:
                    pending_token[(self._tkey(event), event.token)] = event
                else:
                    pending_fifo[(self._tkey(event), event.source, event.level)].append(event)
            elif kind in _END_KINDS:
                park = None
                if event.token is not None:
                    park = pending_token.pop((self._tkey(event), event.token), None)
                if park is None:
                    queue = pending_fifo.get((self._tkey(event), event.source, event.level))
                    if queue:
                        park = queue.popleft()
                if park is None:
                    continue  # truncated trace: the park fell off the ring
                self.waits.append(
                    WaitInterval(
                        thread=event.thread, source=event.source,
                        level=park.level, token=park.token, park=park, end=event,
                        pid=self._pid_of(event),
                    )
                )
        # Correlation indexes (v3 traces).  Not gated on multi_pid: an
        # in-process service (server loop and client threads sharing one
        # pid) still wakes its waiters through push_deliver, and that
        # edge has no token-matched local release to find in pass 2.
        push_by_corr: dict[str, Event] = {}
        bell_by_corr: dict[str, Event] = {}
        for event in self.events:
            if event.corr is None:
                continue
            if event.kind == "push_deliver":
                push_by_corr.setdefault(event.corr, event)
            elif event.kind == "bell_ring":
                bell_by_corr.setdefault(event.corr, event)
        if self.multi_pid:
            self._pair_wire_events()
        # Pass 2: tie each woken wait to the release that caused it — the
        # release sharing its token with the greatest seq not after the
        # wakeup (tokens are per wait node, so normally exactly one).
        for wait in self.waits:
            if wait.timed_out or wait.token is None:
                continue
            release = None
            candidates = releases_by_token.get((self._wkey(wait)[0] if self.multi_pid
                                                else None, wait.token))
            if candidates:
                end_seq = wait.end.seq
                for cand in candidates:
                    if end_seq is None or cand.seq is None or cand.seq < end_seq:
                        release = cand
            if release is not None:
                # A shm mirror release rings with the writer's bell corr:
                # the true origin of the arrow is the foreign bell_ring.
                origin = None
                if release.corr is not None:
                    bell = bell_by_corr.get(release.corr)
                    if bell is not None and self._pid_of(bell) != self._pid_of(release):
                        origin = bell
                increment = (
                    increments.get((self._pid_of(release), release.cause_seq))
                    if release.cause_seq is not None else None
                )
                source = origin if origin is not None else release
                edge = Edge(release=release, increment=increment, wait=wait,
                            from_thread=self._tkey(source),
                            to_thread=self._wkey(wait), origin=origin)
            else:
                # Pass 3 (wire): no local release — a dist client unpark
                # carries the subscription corr; the server push_deliver
                # echoing it names the satisfying increment by cause_seq.
                corr = wait.end.corr or wait.park.corr
                push = push_by_corr.get(corr) if corr is not None else None
                if push is None:
                    continue
                increment = (
                    increments.get((self._pid_of(push), push.cause_seq))
                    if push.cause_seq is not None else None
                )
                edge = Edge(release=push, increment=increment, wait=wait,
                            from_thread=self._tkey(push),
                            to_thread=self._wkey(wait), origin=push)
            self.edges.append(edge)
            key = self._end_key(wait.end)
            if key is not None:
                self.edge_by_end[key] = edge

    def _pair_wire_events(self) -> None:
        """Pair frame_send → frame_recv across pids by correlation token.

        One corr covers a whole RPC (request and reply reuse it), so the
        pairing is greedy in time order: each ``frame_recv`` closes the
        most recent unclosed ``frame_send`` from a *different* pid.
        """
        open_sends: dict[str, list[Event]] = defaultdict(list)
        for event in self.events:
            if event.corr is None:
                continue
            if event.kind == "frame_send":
                open_sends[event.corr].append(event)
            elif event.kind == "frame_recv":
                sends = open_sends.get(event.corr)
                if not sends:
                    continue
                for i in range(len(sends) - 1, -1, -1):
                    if self._pid_of(sends[i]) != self._pid_of(event):
                        self.wire_edges.append((sends.pop(i), event))
                        break

    # -------------------------------------------------------------- structure

    @property
    def threads(self) -> list:
        """Thread keys, in order of first appearance in the trace."""
        return list(self.thread_index)

    def thread_pid(self, key) -> int | None:
        """The pid component of a thread key (stamped pid, if any)."""
        if isinstance(key, tuple):
            return key[0]
        return self.pids[0] if self.pids else None

    def thread_tid(self, key) -> int:
        """The raw thread-ident component of a thread key."""
        return key[1] if isinstance(key, tuple) else key

    def thread_name(self, key) -> str:
        index = self.thread_index.get(key, "?")
        if isinstance(key, tuple):
            return f"p{key[0]}/T{index}"
        return f"T{index}"

    def span(self) -> tuple[float, float]:
        """(first, last) timestamp in the trace; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (min(e.ts for e in self.events), max(e.ts for e in self.events))

    def thread_span(self, key) -> tuple[float, float]:
        ts = [e.ts for e in self.events if self._tkey(e) == key]
        if not ts:
            return (0.0, 0.0)
        return (min(ts), max(ts))

    def segments(self, key) -> list[tuple[str, float, float, WaitInterval | None]]:
        """The thread's timeline as ``(kind, start, end, wait)`` tuples.

        ``kind`` is ``"run"`` or ``"wait"``; consecutive segments tile the
        thread's span.  Run time here means "not suspended in a traced
        wait" — compute and untraced blocking are indistinguishable.
        """
        first, last = self.thread_span(key)
        waits = sorted(
            (w for w in self.waits if self._wkey(w) == key), key=lambda w: w.park.ts
        )
        out: list[tuple[str, float, float, WaitInterval | None]] = []
        cursor = first
        for wait in waits:
            if wait.park.ts > cursor:
                out.append(("run", cursor, wait.park.ts, None))
            out.append(("wait", wait.park.ts, wait.end.ts, wait))
            cursor = wait.end.ts
        if last > cursor or not out:
            out.append(("run", cursor, last, None))
        return out

    # ---------------------------------------------------------- critical path

    def critical_path(self, end: "Event | None" = None) -> list[PathStep]:
        """The dependency chain ending at ``end`` (default: the last event).

        Walks backward from the final event: across a thread's run
        segment, then — at a traced wait — jumps along the release edge
        to the thread whose increment ended it, and continues there.
        Wire edges jump *processes*: a dist client's wakeup continues on
        the server thread that pushed it (at the push/bell timestamp, in
        the merged clock).  A wait with no edge (timeout, truncated
        trace) is attributed to the waiting thread itself.  Returned
        oldest-first.

        Passing ``end`` anchors the walk at one specific event — how the
        SLO engine explains one tail request (its ``req_done``) instead
        of whatever happened to finish last in the ring.
        """
        if not self.events:
            return []
        last = end if end is not None else max(self.events, key=lambda e: e.ts)
        steps: list[PathStep] = []
        cur_thread, cur_ts = self._tkey(last), last.ts
        waits_by_thread: dict[object, list[WaitInterval]] = defaultdict(list)
        for wait in self.waits:
            waits_by_thread[self._wkey(wait)].append(wait)
        for waits in waits_by_thread.values():
            waits.sort(key=lambda w: w.end.ts)
        fuel = 2 * len(self.waits) + 2 * len(self.thread_index) + 4
        while fuel > 0:
            fuel -= 1
            prior = [w for w in waits_by_thread.get(cur_thread, ()) if w.end.ts <= cur_ts]
            if not prior:
                first, _ = self.thread_span(cur_thread)
                if cur_ts > first:
                    steps.append(PathStep(cur_thread, "run", first, cur_ts))
                break
            wait = prior[-1]
            if cur_ts > wait.end.ts:
                steps.append(PathStep(cur_thread, "run", wait.end.ts, cur_ts))
            edge = self.edge_for(wait)
            detail = f"{wait.source}>= {wait.level}" if wait.level is not None else wait.source
            jump = None
            if edge is not None:
                src = edge.origin if edge.origin is not None else edge.release
                if src.ts < wait.end.ts:
                    jump = (edge.from_thread, src.ts)
            if jump is not None:
                via = " over the wire" if edge.origin is not None else ""
                steps.append(
                    PathStep(cur_thread, "wakeup", jump[1], wait.end.ts,
                             detail=f"{detail} released by "
                                    f"{self.thread_name(edge.from_thread)}{via}")
                )
                if jump[0] == cur_thread and jump[1] >= cur_ts:
                    break  # no progress possible; malformed trace
                cur_thread, cur_ts = jump
            else:
                steps.append(PathStep(cur_thread, "wait", wait.park.ts, wait.end.ts,
                                      detail=detail))
                cur_ts = wait.park.ts
        steps.reverse()
        return steps

    def critical_path_duration(self) -> float:
        """End-to-end duration of the critical path (0.0 when trivial)."""
        path = self.critical_path()
        if not path:
            return 0.0
        return path[-1].end - path[0].start

    # ------------------------------------------------------------------ blame

    def blame(self) -> dict[object, list[dict]]:
        """Per-thread blocked time, attributed to what it waited on.

        For each thread key, entries ``{source, level, released_by,
        wait_s, count, pct}`` sorted by descending total wait;
        ``released_by`` is the releasing thread's key (None for timeouts
        / unmatched) and ``pct`` is the share of the thread's own span
        spent in that wait.
        """
        buckets: dict[object, dict[tuple, list[float]]] = defaultdict(lambda: defaultdict(list))
        for wait in self.waits:
            edge = self.edge_for(wait)
            releaser = edge.from_thread if edge is not None else None
            buckets[self._wkey(wait)][(wait.source, wait.level, releaser)].append(wait.duration)
        out: dict[object, list[dict]] = {}
        for key, groups in buckets.items():
            first, last = self.thread_span(key)
            span = max(last - first, 1e-12)
            entries = [
                {
                    "source": source,
                    "level": level,
                    "released_by": releaser,
                    "wait_s": sum(durations),
                    "count": len(durations),
                    "pct": 100.0 * sum(durations) / span,
                }
                for (source, level, releaser), durations in groups.items()
            ]
            entries.sort(key=lambda e: e["wait_s"], reverse=True)
            out[key] = entries
        return out

    def __repr__(self) -> str:
        pids = f", {len(self.pids)} pids" if self.multi_pid else ""
        return (
            f"<CausalGraph {len(self.events)} events, {len(self.thread_index)} threads"
            f"{pids}, {len(self.waits)} waits, {len(self.edges)} edges>"
        )
