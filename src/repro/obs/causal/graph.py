"""The causal graph: who released whom, reconstructed from a trace.

A schema-v2 trace is a flat event stream; this module rebuilds the two
structures the analyses need:

* **Wait intervals** — for every suspended ``check`` (and MultiWait
  wait), the ``park`` event and the ``unpark``/``timeout`` that ended
  it, matched per thread by correlation ``token`` (FIFO per
  ``(thread, source, level)`` for token-less pre-v2 / baseline events).
* **Release edges** — for every interval that ended in a wakeup, the
  ``release`` event that unlinked its wait node (same ``token``) and,
  through the release's ``cause_seq``, the increment whose advance did
  it.  An edge is the trace-level form of the paper's synchronization
  arrow: *thread R's increment happened-before thread W's resumption*.

Events are ordered by ``seq`` (the process-global emission counter),
not buffer position or timestamp: the deferred release emission means
physical append order can interleave, but seq order is causal order by
construction (:mod:`repro.obs.hooks` pre-allocates the seqs).  Traces
without seqs (pre-v2 JSONL) fall back to timestamp order.

Everything here is read-side analysis over a detached snapshot — it
never touches the live primitives and is free to take its time.
"""

from __future__ import annotations

import json
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import Event

__all__ = ["CausalGraph", "Edge", "WaitInterval", "PathStep"]

#: Event kinds that open a wait interval, mapped to the kinds that close it.
_PARK_KINDS = {
    "park": ("unpark", "timeout"),
    "mw_park": ("mw_wake", "mw_timeout"),
}
_END_KINDS = {"unpark", "timeout", "mw_wake", "mw_timeout"}


@dataclass(frozen=True)
class WaitInterval:
    """One thread's suspension: ``park`` event through its ending event."""

    thread: int
    source: str
    level: int | None
    token: int | None
    park: Event
    end: Event

    @property
    def timed_out(self) -> bool:
        return self.end.kind in ("timeout", "mw_timeout")

    @property
    def duration(self) -> float:
        return self.end.ts - self.park.ts


@dataclass(frozen=True)
class Edge:
    """A cross-thread wakeup: ``release`` (and its increment) → a wait's end."""

    release: Event
    increment: Event | None
    wait: WaitInterval

    @property
    def from_thread(self) -> int:
        return self.release.thread

    @property
    def to_thread(self) -> int:
        return self.wait.thread


@dataclass(frozen=True)
class PathStep:
    """One segment of the critical path, on one thread."""

    thread: int
    kind: str  # "run" | "wakeup" | "wait"
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CausalGraph:
    """The analyzed trace: events, wait intervals, release edges.

    Build with :meth:`from_events` (any iterable of :class:`Event` or
    ``as_dict``-shaped mappings) or :meth:`from_jsonl`.
    """

    events: list[Event]
    waits: list[WaitInterval] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    #: Release edge lookup by the wait interval's ending event.
    edge_by_end: dict[int, Edge] = field(default_factory=dict)
    #: Thread idents in order of first appearance, mapped to display index.
    thread_index: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_events(cls, events: Iterable[Event | dict]) -> "CausalGraph":
        evs = [e if isinstance(e, Event) else Event.from_dict(e) for e in events]
        if evs and all(e.seq is not None for e in evs):
            evs.sort(key=lambda e: e.seq)
        else:
            evs.sort(key=lambda e: e.ts)
        graph = cls(events=evs)
        graph._build()
        return graph

    @classmethod
    def from_jsonl(cls, path: str) -> "CausalGraph":
        with open(path, "r", encoding="utf-8") as fh:
            docs = [json.loads(line) for line in fh if line.strip()]
        return cls.from_events(docs)

    def _build(self) -> None:
        for event in self.events:
            if event.thread not in self.thread_index:
                self.thread_index[event.thread] = len(self.thread_index)
        # Pass 1: match each park with the event that ended it.  Tokened
        # parks match exactly (a thread has at most one live wait per
        # token); token-less ones (BroadcastCounter, pre-v2 traces) match
        # FIFO per (thread, source, level) — sound because one thread's
        # waits on one level cannot overlap.
        pending_token: dict[tuple[int, int], Event] = {}
        pending_fifo: dict[tuple[int, str, int | None], deque[Event]] = defaultdict(deque)
        releases_by_token: dict[int, list[Event]] = defaultdict(list)
        increments: dict[int, Event] = {}
        for event in self.events:
            kind = event.kind
            if kind == "increment" and event.seq is not None:
                increments[event.seq] = event
            elif kind == "release" and event.token is not None:
                releases_by_token[event.token].append(event)
            elif kind in _PARK_KINDS:
                if event.token is not None:
                    pending_token[(event.thread, event.token)] = event
                else:
                    pending_fifo[(event.thread, event.source, event.level)].append(event)
            elif kind in _END_KINDS:
                park = None
                if event.token is not None:
                    park = pending_token.pop((event.thread, event.token), None)
                if park is None:
                    queue = pending_fifo.get((event.thread, event.source, event.level))
                    if queue:
                        park = queue.popleft()
                if park is None:
                    continue  # truncated trace: the park fell off the ring
                self.waits.append(
                    WaitInterval(
                        thread=event.thread, source=event.source,
                        level=park.level, token=park.token, park=park, end=event,
                    )
                )
        # Pass 2: tie each woken wait to the release that caused it — the
        # release sharing its token with the greatest seq not after the
        # wakeup (tokens are per wait node, so normally exactly one).
        for wait in self.waits:
            if wait.timed_out or wait.token is None:
                continue
            candidates = releases_by_token.get(wait.token)
            if not candidates:
                continue
            release = None
            end_seq = wait.end.seq
            for cand in candidates:
                if end_seq is None or cand.seq is None or cand.seq < end_seq:
                    release = cand
            if release is None:
                continue
            increment = (
                increments.get(release.cause_seq)
                if release.cause_seq is not None else None
            )
            edge = Edge(release=release, increment=increment, wait=wait)
            self.edges.append(edge)
            if wait.end.seq is not None:
                self.edge_by_end[wait.end.seq] = edge

    # -------------------------------------------------------------- structure

    @property
    def threads(self) -> list[int]:
        """Thread idents, in order of first appearance in the trace."""
        return list(self.thread_index)

    def thread_name(self, ident: int) -> str:
        return f"T{self.thread_index.get(ident, '?')}"

    def span(self) -> tuple[float, float]:
        """(first, last) timestamp in the trace; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (min(e.ts for e in self.events), max(e.ts for e in self.events))

    def thread_span(self, ident: int) -> tuple[float, float]:
        ts = [e.ts for e in self.events if e.thread == ident]
        if not ts:
            return (0.0, 0.0)
        return (min(ts), max(ts))

    def segments(self, ident: int) -> list[tuple[str, float, float, WaitInterval | None]]:
        """The thread's timeline as ``(kind, start, end, wait)`` tuples.

        ``kind`` is ``"run"`` or ``"wait"``; consecutive segments tile the
        thread's span.  Run time here means "not suspended in a traced
        wait" — compute and untraced blocking are indistinguishable.
        """
        first, last = self.thread_span(ident)
        waits = sorted(
            (w for w in self.waits if w.thread == ident), key=lambda w: w.park.ts
        )
        out: list[tuple[str, float, float, WaitInterval | None]] = []
        cursor = first
        for wait in waits:
            if wait.park.ts > cursor:
                out.append(("run", cursor, wait.park.ts, None))
            out.append(("wait", wait.park.ts, wait.end.ts, wait))
            cursor = wait.end.ts
        if last > cursor or not out:
            out.append(("run", cursor, last, None))
        return out

    # ---------------------------------------------------------- critical path

    def critical_path(self) -> list[PathStep]:
        """The dependency chain ending at the trace's last event.

        Walks backward from the final event: across a thread's run
        segment, then — at a traced wait — jumps along the release edge
        to the thread whose increment ended it, and continues there.  A
        wait with no edge (timeout, truncated trace) is attributed to the
        waiting thread itself.  Returned oldest-first.
        """
        if not self.events:
            return []
        last = max(self.events, key=lambda e: e.ts)
        steps: list[PathStep] = []
        cur_thread, cur_ts = last.thread, last.ts
        waits_by_thread: dict[int, list[WaitInterval]] = defaultdict(list)
        for wait in self.waits:
            waits_by_thread[wait.thread].append(wait)
        for waits in waits_by_thread.values():
            waits.sort(key=lambda w: w.end.ts)
        fuel = 2 * len(self.waits) + 2 * len(self.thread_index) + 4
        while fuel > 0:
            fuel -= 1
            prior = [w for w in waits_by_thread.get(cur_thread, ()) if w.end.ts <= cur_ts]
            if not prior:
                first, _ = self.thread_span(cur_thread)
                if cur_ts > first:
                    steps.append(PathStep(cur_thread, "run", first, cur_ts))
                break
            wait = prior[-1]
            if cur_ts > wait.end.ts:
                steps.append(PathStep(cur_thread, "run", wait.end.ts, cur_ts))
            edge = self.edge_by_end.get(wait.end.seq) if wait.end.seq is not None else None
            detail = f"{wait.source}>= {wait.level}" if wait.level is not None else wait.source
            if edge is not None and edge.release.ts < wait.end.ts:
                steps.append(
                    PathStep(cur_thread, "wakeup", edge.release.ts, wait.end.ts,
                             detail=f"{detail} released by {self.thread_name(edge.from_thread)}")
                )
                if edge.from_thread == cur_thread and edge.release.ts >= cur_ts:
                    break  # no progress possible; malformed trace
                cur_thread, cur_ts = edge.from_thread, edge.release.ts
            else:
                steps.append(PathStep(cur_thread, "wait", wait.park.ts, wait.end.ts,
                                      detail=detail))
                cur_ts = wait.park.ts
        steps.reverse()
        return steps

    def critical_path_duration(self) -> float:
        """End-to-end duration of the critical path (0.0 when trivial)."""
        path = self.critical_path()
        if not path:
            return 0.0
        return path[-1].end - path[0].start

    # ------------------------------------------------------------------ blame

    def blame(self) -> dict[int, list[dict]]:
        """Per-thread blocked time, attributed to what it waited on.

        For each thread, entries ``{source, level, released_by, wait_s,
        count, pct}`` sorted by descending total wait; ``released_by`` is
        the releasing thread's ident (None for timeouts / unmatched) and
        ``pct`` is the share of the thread's own span spent in that wait.
        """
        buckets: dict[int, dict[tuple, list[float]]] = defaultdict(lambda: defaultdict(list))
        for wait in self.waits:
            edge = self.edge_by_end.get(wait.end.seq) if wait.end.seq is not None else None
            releaser = edge.from_thread if edge is not None else None
            buckets[wait.thread][(wait.source, wait.level, releaser)].append(wait.duration)
        out: dict[int, list[dict]] = {}
        for ident, groups in buckets.items():
            first, last = self.thread_span(ident)
            span = max(last - first, 1e-12)
            entries = [
                {
                    "source": source,
                    "level": level,
                    "released_by": releaser,
                    "wait_s": sum(durations),
                    "count": len(durations),
                    "pct": 100.0 * sum(durations) / span,
                }
                for (source, level, releaser), durations in groups.items()
            ]
            entries.sort(key=lambda e: e["wait_s"], reverse=True)
            out[ident] = entries
        return out

    def __repr__(self) -> str:
        return (
            f"<CausalGraph {len(self.events)} events, {len(self.thread_index)} threads, "
            f"{len(self.waits)} waits, {len(self.edges)} edges>"
        )
