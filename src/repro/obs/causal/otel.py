"""OpenTelemetry-shaped span export — plain dicts, no otel dependency.

Emits the OTLP/JSON resource-spans shape (the one ``otlp-json`` file
exporters and collectors ingest): one root span per thread, one child
span per wait interval, one zero-length span per increment, and a span
*link* from each woken wait to the increment that released it — the
release edge again, in OTel's vocabulary.  Merged multi-process traces
work unchanged: thread roots are per ``(pid, ident)`` key and every
span id folds the owning pid, so seqs from different processes (which
restart from 1 in each) cannot collide.

Ids are deterministic hex derived from the trace's own pids and seqs,
so two exports of the same trace are byte-identical.  The source clock
is ``time.monotonic``; span times are therefore nanoseconds relative to
an arbitrary epoch, which is fine for the consumers that matter here
(duration and structure, not wall-clock alignment).
"""

from __future__ import annotations

from repro.obs.causal.graph import CausalGraph

__all__ = ["to_otel"]


def _trace_id(graph: CausalGraph) -> str:
    first = graph.events[0].seq or 0 if graph.events else 0
    return f"{(len(graph.events) << 32) | (first & 0xFFFFFFFF):032x}"


def _span_id(kind: int, n: int, pid: int | None = None) -> str:
    # 64 bits: kind(4) | pid(24) | n(36) — per-pid seqs stay disjoint.
    folded = ((kind & 0xF) << 60) | (((pid or 0) & 0xFFFFFF) << 36) | (n & 0xFFFFFFFFF)
    return f"{folded:016x}"


def _nanos(ts: float) -> int:
    return int(ts * 1e9)


def _attr(key: str, value) -> dict:
    if isinstance(value, bool):
        val = {"boolValue": value}
    elif isinstance(value, int):
        val = {"intValue": str(value)}  # OTLP/JSON encodes int64 as string
    elif isinstance(value, float):
        val = {"doubleValue": value}
    else:
        val = {"stringValue": str(value)}
    return {"key": key, "value": val}


def to_otel(graph: CausalGraph) -> dict:
    """The graph as an OTLP/JSON ``resourceSpans`` document."""
    trace_id = _trace_id(graph)
    spans: list[dict] = []
    thread_roots: dict[object, str] = {}
    for key in graph.threads:
        first, last = graph.thread_span(key)
        span_id = _span_id(1, graph.thread_index[key], graph.thread_pid(key))
        thread_roots[key] = span_id
        attributes = [_attr("repro.thread.ident", graph.thread_tid(key))]
        pid = graph.thread_pid(key)
        if pid is not None:
            attributes.append(_attr("repro.pid", pid))
        spans.append(
            {
                "traceId": trace_id,
                "spanId": span_id,
                "name": f"thread {graph.thread_name(key)}",
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(_nanos(first)),
                "endTimeUnixNano": str(_nanos(last)),
                "attributes": attributes,
            }
        )
    increment_spans: dict[tuple, str] = {}
    for n, event in enumerate(graph.events):
        if event.kind != "increment":
            continue
        pid = graph._pid_of(event)
        span_id = _span_id(2, event.seq if event.seq is not None else n, pid)
        if event.seq is not None:
            increment_spans[(pid, event.seq)] = span_id
        spans.append(
            {
                "traceId": trace_id,
                "spanId": span_id,
                "parentSpanId": thread_roots.get(graph._tkey(event), ""),
                "name": f"increment {event.source}",
                "kind": "SPAN_KIND_PRODUCER",
                "startTimeUnixNano": str(_nanos(event.ts)),
                "endTimeUnixNano": str(_nanos(event.ts)),
                "attributes": [
                    _attr("repro.counter", event.source),
                    _attr("repro.amount", event.amount or 0),
                    _attr("repro.value", event.value or 0),
                ],
            }
        )
    for n, wait in enumerate(graph.waits):
        span_id = _span_id(3, wait.end.seq if wait.end.seq is not None else n,
                           wait.pid)
        attributes = [_attr("repro.counter", wait.source)]
        if wait.level is not None:
            attributes.append(_attr("repro.level", wait.level))
        attributes.append(_attr("repro.timed_out", wait.timed_out))
        span = {
            "traceId": trace_id,
            "spanId": span_id,
            "parentSpanId": thread_roots.get(graph._wkey(wait), ""),
            "name": f"wait {wait.source}"
                    + (f" >= {wait.level}" if wait.level is not None else ""),
            "kind": "SPAN_KIND_CONSUMER",
            "startTimeUnixNano": str(_nanos(wait.park.ts)),
            "endTimeUnixNano": str(_nanos(wait.end.ts)),
            "attributes": attributes,
        }
        edge = graph.edge_for(wait)
        if edge is not None and edge.increment is not None and edge.increment.seq is not None:
            cause = increment_spans.get(
                (graph._pid_of(edge.increment), edge.increment.seq)
            )
            if cause is not None:
                link_kind = "released_over_wire" if edge.origin is not None \
                    else "released_by"
                span["links"] = [
                    {
                        "traceId": trace_id,
                        "spanId": cause,
                        "attributes": [_attr("repro.link", link_kind)],
                    }
                ]
        spans.append(span)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [_attr("service.name", "repro.obs")],
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.causal"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }
