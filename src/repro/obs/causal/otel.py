"""OpenTelemetry-shaped span export — plain dicts, no otel dependency.

Emits the OTLP/JSON resource-spans shape (the one ``otlp-json`` file
exporters and collectors ingest): one root span per thread, one child
span per wait interval, one zero-length span per increment, and a span
*link* from each woken wait to the increment that released it — the
release edge again, in OTel's vocabulary.

Ids are deterministic hex derived from the trace's own seqs, so two
exports of the same trace are byte-identical.  The source clock is
``time.monotonic``; span times are therefore nanoseconds relative to an
arbitrary epoch, which is fine for the consumers that matter here
(duration and structure, not wall-clock alignment).
"""

from __future__ import annotations

from repro.obs.causal.graph import CausalGraph

__all__ = ["to_otel"]


def _trace_id(graph: CausalGraph) -> str:
    first = graph.events[0].seq or 0 if graph.events else 0
    return f"{(len(graph.events) << 32) | (first & 0xFFFFFFFF):032x}"


def _span_id(kind: int, n: int) -> str:
    return f"{(kind << 48) | (n & 0xFFFFFFFFFFFF):016x}"


def _nanos(ts: float) -> int:
    return int(ts * 1e9)


def _attr(key: str, value) -> dict:
    if isinstance(value, bool):
        val = {"boolValue": value}
    elif isinstance(value, int):
        val = {"intValue": str(value)}  # OTLP/JSON encodes int64 as string
    elif isinstance(value, float):
        val = {"doubleValue": value}
    else:
        val = {"stringValue": str(value)}
    return {"key": key, "value": val}


def to_otel(graph: CausalGraph) -> dict:
    """The graph as an OTLP/JSON ``resourceSpans`` document."""
    trace_id = _trace_id(graph)
    spans: list[dict] = []
    thread_roots: dict[int, str] = {}
    for ident in graph.threads:
        first, last = graph.thread_span(ident)
        span_id = _span_id(1, graph.thread_index[ident])
        thread_roots[ident] = span_id
        spans.append(
            {
                "traceId": trace_id,
                "spanId": span_id,
                "name": f"thread {graph.thread_name(ident)}",
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(_nanos(first)),
                "endTimeUnixNano": str(_nanos(last)),
                "attributes": [_attr("repro.thread.ident", ident)],
            }
        )
    increment_spans: dict[int, str] = {}
    for n, event in enumerate(graph.events):
        if event.kind != "increment":
            continue
        span_id = _span_id(2, event.seq if event.seq is not None else n)
        if event.seq is not None:
            increment_spans[event.seq] = span_id
        spans.append(
            {
                "traceId": trace_id,
                "spanId": span_id,
                "parentSpanId": thread_roots.get(event.thread, ""),
                "name": f"increment {event.source}",
                "kind": "SPAN_KIND_PRODUCER",
                "startTimeUnixNano": str(_nanos(event.ts)),
                "endTimeUnixNano": str(_nanos(event.ts)),
                "attributes": [
                    _attr("repro.counter", event.source),
                    _attr("repro.amount", event.amount or 0),
                    _attr("repro.value", event.value or 0),
                ],
            }
        )
    for n, wait in enumerate(graph.waits):
        span_id = _span_id(3, wait.end.seq if wait.end.seq is not None else n)
        attributes = [_attr("repro.counter", wait.source)]
        if wait.level is not None:
            attributes.append(_attr("repro.level", wait.level))
        attributes.append(_attr("repro.timed_out", wait.timed_out))
        span = {
            "traceId": trace_id,
            "spanId": span_id,
            "parentSpanId": thread_roots.get(wait.thread, ""),
            "name": f"wait {wait.source}"
                    + (f" >= {wait.level}" if wait.level is not None else ""),
            "kind": "SPAN_KIND_CONSUMER",
            "startTimeUnixNano": str(_nanos(wait.park.ts)),
            "endTimeUnixNano": str(_nanos(wait.end.ts)),
            "attributes": attributes,
        }
        edge = graph.edge_by_end.get(wait.end.seq) if wait.end.seq is not None else None
        if edge is not None and edge.increment is not None and edge.increment.seq is not None:
            cause = increment_spans.get(edge.increment.seq)
            if cause is not None:
                span["links"] = [
                    {
                        "traceId": trace_id,
                        "spanId": cause,
                        "attributes": [_attr("repro.link", "released_by")],
                    }
                ]
        spans.append(span)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [_attr("service.name", "repro.obs")],
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.causal"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }
