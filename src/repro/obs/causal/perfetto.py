"""Chrome/Perfetto ``trace_event`` export of a causal graph.

The output is the legacy JSON trace-event format, which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one ``M`` (metadata) event naming each thread track,
* one complete ``X`` slice per run/wait segment of every thread,
* one ``i`` instant per increment,
* one ``s``/``f`` flow-event pair per release edge — the arrow from the
  releasing increment's thread to the woken thread, which is the whole
  point: open the trace and the §4 wakeup structure is drawn for you.

No Perfetto/Chrome dependency: the format is plain JSON and the shape
is pinned by :func:`validate_perfetto`, which the tests (and the CLI
after every export) run so an emitted trace is schema-valid by
construction.  Timestamps are microseconds relative to the trace start
(the source clock is ``time.monotonic``, so absolute values would be
meaningless anyway).
"""

from __future__ import annotations

from repro.obs.causal.graph import CausalGraph

__all__ = ["to_perfetto", "validate_perfetto"]

_PID = 1  # one traced process; Perfetto requires some pid on every event


def _us(ts: float, t0: float) -> float:
    return round((ts - t0) * 1e6, 3)


def to_perfetto(graph: CausalGraph) -> dict:
    """The graph as a ``{"traceEvents": [...]}`` trace-event document."""
    t0, _ = graph.span()
    out: list[dict] = []
    for ident in graph.threads:
        out.append(
            {
                "ph": "M", "name": "thread_name", "pid": _PID, "tid": ident,
                "args": {"name": f"{graph.thread_name(ident)} ({ident})"},
            }
        )
    for ident in graph.threads:
        for kind, start, end, wait in graph.segments(ident):
            if end <= start:
                continue
            if kind == "wait" and wait is not None:
                level = f" >= {wait.level}" if wait.level is not None else ""
                name = f"wait {wait.source}{level}"
                args: dict = {"source": wait.source}
                if wait.level is not None:
                    args["level"] = wait.level
                if wait.token is not None:
                    args["token"] = wait.token
                if wait.timed_out:
                    args["timed_out"] = True
                cat = "wait"
            else:
                name, args, cat = "run", {}, "run"
            out.append(
                {
                    "ph": "X", "name": name, "cat": cat, "pid": _PID, "tid": ident,
                    "ts": _us(start, t0), "dur": max(_us(end, t0) - _us(start, t0), 0.001),
                    "args": args,
                }
            )
    for event in graph.events:
        if event.kind == "increment":
            out.append(
                {
                    "ph": "i", "s": "t",
                    "name": f"increment {event.source} +{event.amount} -> {event.value}",
                    "cat": "increment", "pid": _PID, "tid": event.thread,
                    "ts": _us(event.ts, t0),
                    "args": {"source": event.source, "amount": event.amount,
                             "value": event.value},
                }
            )
    for n, edge in enumerate(graph.edges):
        # One flow per release edge; ids only need to be unique per pair,
        # and the wait's ending seq is (n as fallback for seq-less ends).
        flow_id = edge.wait.end.seq if edge.wait.end.seq is not None else -(n + 1)
        name = f"release {edge.release.source}"
        common = {"name": name, "cat": "release", "pid": _PID, "id": flow_id}
        out.append(
            {**common, "ph": "s", "tid": edge.from_thread, "ts": _us(edge.release.ts, t0)}
        )
        out.append(
            {**common, "ph": "f", "bp": "e", "tid": edge.to_thread,
             "ts": _us(edge.wait.end.ts, t0)}
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def validate_perfetto(doc: dict) -> list[str]:
    """Schema check; returns problems (empty list == valid).

    Pins what the Perfetto UI actually requires: the ``traceEvents``
    array, per-phase required keys, numeric non-negative timestamps, and
    — for the flow arrows — that every ``s`` has a matching ``f`` (same
    id) at an equal-or-later timestamp.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    starts: dict[object, float] = {}
    finishes: dict[object, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "X", "i", "s", "f"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i} ({ph}): {key} missing or not an int")
        if ph == "M":
            if ev.get("name") != "thread_name" or "name" not in ev.get("args", {}):
                problems.append(f"event {i}: metadata without args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} ({ph}): ts missing, non-numeric, or negative")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i} ({ph}): name missing or empty")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"event {i} (X): dur missing or not positive")
        elif ph == "s":
            starts[ev.get("id")] = ts
        elif ph == "f":
            finishes[ev.get("id")] = ts
            if ev.get("bp") != "e":
                problems.append(f"event {i} (f): missing bp=e (arrow endpoint binding)")
    for flow_id, ts in starts.items():
        if flow_id is None:
            problems.append("flow start without id")
        elif flow_id not in finishes:
            problems.append(f"flow {flow_id}: start without finish")
        elif finishes[flow_id] < ts:
            problems.append(f"flow {flow_id}: finish precedes start")
    for flow_id in finishes:
        if flow_id not in starts:
            problems.append(f"flow {flow_id}: finish without start")
    return problems
