"""Chrome/Perfetto ``trace_event`` export of a causal graph.

The output is the legacy JSON trace-event format, which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one ``M`` (metadata) event naming each process and thread track,
* one complete ``X`` slice per run/wait segment of every thread,
* one ``i`` instant per increment and per dist fabric event
  (``push_deliver``, ``bell_ring``, ``gossip_round``, ...),
* one ``s``/``f`` flow-event pair per release edge — the arrow from the
  releasing increment's thread to the woken thread, which is the whole
  point: open the trace and the §4 wakeup structure is drawn for you —
  plus one pair per *wire* edge (``frame_send``/``push_deliver`` →
  ``frame_recv``), so a merged multi-process trace draws its RPCs as
  cross-process arrows between real pids.

Pids are real: a v3 trace stamps ``os.getpid()`` on events at
collection time and those pids become Perfetto pids (single-process or
pre-v3 traces fall back to pid 1 — Perfetto requires some pid on every
event).  No Perfetto/Chrome dependency: the format is plain JSON and
the shape is pinned by :func:`validate_perfetto`, which the tests (and
the CLI after every export) run so an emitted trace is schema-valid by
construction.  Timestamps are microseconds relative to the trace start
(the source clock is ``time.monotonic``, so absolute values would be
meaningless anyway).
"""

from __future__ import annotations

from repro.obs.causal.graph import CausalGraph

__all__ = ["to_perfetto", "validate_perfetto"]

_FALLBACK_PID = 1  # pre-v3 traces carry no pid; Perfetto requires one

#: Dist fabric kinds rendered as instants (beyond "increment").
_INSTANT_KINDS = {
    "push_deliver", "bell_ring", "bell_wake", "gossip_round",
    "slot_claim", "batch_flush",
}


def _us(ts: float, t0: float) -> float:
    return round((ts - t0) * 1e6, 3)


def to_perfetto(graph: CausalGraph) -> dict:
    """The graph as a ``{"traceEvents": [...]}`` trace-event document."""
    t0, _ = graph.span()
    out: list[dict] = []

    def pid_of(key) -> int:
        pid = graph.thread_pid(key)
        return pid if pid is not None else _FALLBACK_PID

    def event_pid(event) -> int:
        return pid_of(graph._tkey(event))

    seen_pids: list[int] = []
    for key in graph.threads:
        pid = pid_of(key)
        if graph.pids and pid not in seen_pids:
            # Real (stamped) pids get a process track name; pid-less v2
            # traces keep the fallback pid anonymous.
            seen_pids.append(pid)
            out.append(
                {
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"pid {pid}"},
                }
            )
        out.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": graph.thread_tid(key),
                "args": {"name": f"{graph.thread_name(key)} ({graph.thread_tid(key)})"},
            }
        )
    for key in graph.threads:
        pid, tid = pid_of(key), graph.thread_tid(key)
        for kind, start, end, wait in graph.segments(key):
            if end <= start:
                continue
            if kind == "wait" and wait is not None:
                level = f" >= {wait.level}" if wait.level is not None else ""
                name = f"wait {wait.source}{level}"
                args: dict = {"source": wait.source}
                if wait.level is not None:
                    args["level"] = wait.level
                if wait.token is not None:
                    args["token"] = wait.token
                if wait.timed_out:
                    args["timed_out"] = True
                cat = "wait"
            else:
                name, args, cat = "run", {}, "run"
            out.append(
                {
                    "ph": "X", "name": name, "cat": cat, "pid": pid, "tid": tid,
                    "ts": _us(start, t0), "dur": max(_us(end, t0) - _us(start, t0), 0.001),
                    "args": args,
                }
            )
    for event in graph.events:
        if event.kind == "increment":
            out.append(
                {
                    "ph": "i", "s": "t",
                    "name": f"increment {event.source} +{event.amount} -> {event.value}",
                    "cat": "increment", "pid": event_pid(event), "tid": event.thread,
                    "ts": _us(event.ts, t0),
                    "args": {"source": event.source, "amount": event.amount,
                             "value": event.value},
                }
            )
        elif event.kind in _INSTANT_KINDS:
            args = {"source": event.source}
            if event.corr is not None:
                args["corr"] = event.corr
            if event.op is not None:
                args["op"] = event.op
            out.append(
                {
                    "ph": "i", "s": "t", "name": event.kind, "cat": "dist",
                    "pid": event_pid(event), "tid": event.thread,
                    "ts": _us(event.ts, t0), "args": args,
                }
            )
    for n, edge in enumerate(graph.edges):
        # One flow per release edge; ids only need to be unique per pair,
        # and the wait's ending seq is (n as fallback for seq-less ends).
        end_key = graph._end_key(edge.wait.end)
        flow_id = str(end_key) if end_key is not None else f"e{n}"
        start_event = edge.origin if edge.origin is not None else edge.release
        name = f"release {start_event.source}"
        common = {"name": name, "cat": "release", "id": flow_id}
        start_ts = _us(start_event.ts, t0)
        out.append(
            {**common, "ph": "s", "pid": pid_of(edge.from_thread),
             "tid": graph.thread_tid(edge.from_thread), "ts": start_ts}
        )
        out.append(
            {**common, "ph": "f", "bp": "e", "pid": pid_of(edge.to_thread),
             "tid": graph.thread_tid(edge.to_thread),
             # Clock-offset estimation can leave µs-scale skew between
             # pids; the arrow must still point forward.
             "ts": max(_us(edge.wait.end.ts, t0), start_ts)}
        )
    for n, (send, recv) in enumerate(graph.wire_edges):
        name = f"wire {send.op or send.kind}"
        common = {"name": name, "cat": "wire", "id": f"w{n}"}
        start_ts = _us(send.ts, t0)
        out.append(
            {**common, "ph": "s", "pid": event_pid(send), "tid": send.thread,
             "ts": start_ts}
        )
        out.append(
            {**common, "ph": "f", "bp": "e", "pid": event_pid(recv),
             "tid": recv.thread, "ts": max(_us(recv.ts, t0), start_ts)}
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def validate_perfetto(doc: dict) -> list[str]:
    """Schema check; returns problems (empty list == valid).

    Pins what the Perfetto UI actually requires: the ``traceEvents``
    array, per-phase required keys, numeric non-negative timestamps, and
    — for the flow arrows — that every ``s`` has a matching ``f`` (same
    id) at an equal-or-later timestamp.  Multi-pid documents are the
    norm for merged traces: pids only need to be ints, and flow pairs
    may span pids (that is what draws the cross-process arrow).
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    starts: dict[object, float] = {}
    finishes: dict[object, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "X", "i", "s", "f"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i} ({ph}): {key} missing or not an int")
        if ph == "M":
            if ev.get("name") not in ("thread_name", "process_name") \
                    or "name" not in ev.get("args", {}):
                problems.append(f"event {i}: metadata without args.name")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} ({ph}): ts missing, non-numeric, or negative")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i} ({ph}): name missing or empty")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                problems.append(f"event {i} (X): dur missing or not positive")
        elif ph == "s":
            starts[ev.get("id")] = ts
        elif ph == "f":
            finishes[ev.get("id")] = ts
            if ev.get("bp") != "e":
                problems.append(f"event {i} (f): missing bp=e (arrow endpoint binding)")
    for flow_id, ts in starts.items():
        if flow_id is None:
            problems.append("flow start without id")
        elif flow_id not in finishes:
            problems.append(f"flow {flow_id}: start without finish")
        elif finishes[flow_id] < ts:
            problems.append(f"flow {flow_id}: finish precedes start")
    for flow_id in finishes:
        if flow_id not in starts:
            problems.append(f"flow {flow_id}: finish without start")
    return problems
