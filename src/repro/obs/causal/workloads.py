"""Real-thread workloads whose causal traces reproduce the paper's figures.

:func:`run_imbalanced_fw` is §4's Floyd-Warshall synchronization
structure under rotating load imbalance, on *actual* ``threading``
threads (costs are ``time.sleep``, which releases the GIL, so even a
single-CPU host executes the schedule the figures draw):

* ``mode="barrier"`` — every round ends at a
  :class:`~repro.sync.barrier.CounterBarrier` (§4.3): the whole gang
  convoys behind whichever thread is slow that round.
* ``mode="ragged"`` — per-thread progress counters (§4.5): thread *t*
  waits only for its predecessor's previous round, so one slow thread
  delays its successor chain, not the gang.

Both modes run under a scoped :func:`repro.obs.observe`, so the return
carries the full schema-v2 event trace; feed it to
:class:`~repro.obs.causal.graph.CausalGraph` and the analyzer reports a
shorter critical path (and a sooner finish) for the ragged version of
the *same* per-thread work — the §4 claim, measured live.

:func:`run_figure2` and :func:`run_lock_rank` are the determinacy-diff
pair: the same fan-in shape, synchronized through a counter (determinate
— canonical traces compare equal across any seeded schedule) versus
through a bare lock whose acquisition *order* leaks into the increment
amounts (canonical traces diverge between schedules).  Seeds perturb the
schedule via per-thread start jitter.
"""

from __future__ import annotations

import random
import threading
import time

import repro.obs as obs
from repro.core.counter import MonotonicCounter
from repro.obs.events import Event
from repro.sync.barrier import CounterBarrier

__all__ = ["run_imbalanced_fw", "run_figure2", "run_lock_rank"]


def _costs(threads: int, rounds: int, base_cost: float, imbalance: float,
           seed: int) -> list[list[float]]:
    """Per-(thread, round) sleep costs; round k's slow thread is -k mod T.

    The slow slot rotates *against* the ragged mode's dependence chain
    (thread t waits on t-1): rotating with it would put a slow cell on
    every edge of the pipeline diagonal, turning the ragged schedule
    into the barrier schedule.  Counter-rotating means no two
    consecutive dependence steps are both slow — the imbalance the
    ragged schedule can actually absorb, per §4.
    """
    rng = random.Random(seed)
    return [
        [
            base_cost * (imbalance if (-k) % threads == t else 1.0)
            * rng.uniform(0.9, 1.1)
            for k in range(rounds)
        ]
        for t in range(threads)
    ]


def run_imbalanced_fw(
    mode: str = "ragged",
    *,
    threads: int = 4,
    rounds: int = 8,
    base_cost: float = 0.002,
    imbalance: float = 4.0,
    seed: int = 7,
    capacity: int = 65536,
) -> dict:
    """Run the §4 imbalanced workload; returns events + wall time.

    ``{"mode", "threads", "rounds", "wall_s", "events"}`` — ``events``
    is the detached trace snapshot (list of :class:`Event`).
    """
    if mode not in ("barrier", "ragged"):
        raise ValueError(f"mode must be 'barrier' or 'ragged', got {mode!r}")
    costs = _costs(threads, rounds, base_cost, imbalance, seed)
    if mode == "barrier":
        barrier = CounterBarrier(threads, name="phase")

        def worker(t: int) -> None:
            for k in range(rounds):
                time.sleep(costs[t][k])
                barrier.pass_()

    else:
        progress = [MonotonicCounter(name=f"row_done_{t}") for t in range(threads)]

        def worker(t: int) -> None:
            pred = progress[(t - 1) % threads]
            for k in range(rounds):
                # Only the one dependence FW actually has: the k-th row
                # must have been staged by the thread that owns it.
                pred.check(k)
                time.sleep(costs[t][k])
                progress[t].increment(1)

    with obs.observe(metrics=False, capacity=capacity) as handle:
        gang = [
            threading.Thread(target=worker, args=(t,), name=f"fw-{mode}-{t}")
            for t in range(threads)
        ]
        t0 = time.monotonic()
        for thread in gang:
            thread.start()
        for thread in gang:
            thread.join()
        wall = time.monotonic() - t0
        events = handle.trace.snapshot()
    return {
        "mode": mode,
        "threads": threads,
        "rounds": rounds,
        "wall_s": wall,
        "events": events,
    }


#: Fixed per-worker increment amounts for the determinacy pair; the
#: canonical-trace multiset for the counter program is exactly this.
_FIG2_AMOUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


def run_figure2(seed: int, *, workers: int = 4, jitter: float = 0.004,
                capacity: int = 8192) -> list[Event]:
    """The Figure-2 fan-in, counter-synchronized: determinate by §6.

    ``workers`` threads each increment ``fig2`` by a fixed per-worker
    amount after a seeded start jitter (the schedule perturbation); a
    waiter checks for the fixed total.  Every seed yields the same
    canonical trace — that is the assertion the determinacy tests make
    across ≥20 seeds.
    """
    amounts = _FIG2_AMOUNTS[:workers]
    rng = random.Random(seed)
    delays = [rng.uniform(0.0, jitter) for _ in range(workers)]
    counter = MonotonicCounter(name="fig2")

    def incrementer(i: int) -> None:
        time.sleep(delays[i])
        counter.increment(amounts[i])

    def waiter() -> None:
        counter.check(sum(amounts))

    with obs.observe(metrics=False, capacity=capacity) as handle:
        gang = [threading.Thread(target=waiter, name="fig2-waiter")]
        gang += [
            threading.Thread(target=incrementer, args=(i,), name=f"fig2-{i}")
            for i in range(workers)
        ]
        for thread in gang:
            thread.start()
        for thread in gang:
            thread.join()
        return handle.trace.snapshot()


def run_lock_rank(seed: int, *, workers: int = 4, jitter: float = 0.004,
                  capacity: int = 8192) -> list[Event]:
    """The anti-example: lock-acquisition order leaks into the trace.

    Each worker takes a *rank* from a lock-protected box (first come,
    first ranked) and increments by ``amount * (rank + 1)`` — so the
    increment amounts record the schedule, and canonical traces from
    different seeds diverge.  This is not a §6-disciplined program: the
    rank box is a shared variable ordered by a lock, not by counter
    operations, which is exactly what
    :class:`~repro.determinism.DeterminismChecker` flags as a race when
    the same shape runs under instrumentation.
    """
    amounts = _FIG2_AMOUNTS[:workers]
    rng = random.Random(seed)
    delays = [rng.uniform(0.0, jitter) for _ in range(workers)]
    counter = MonotonicCounter(name="ranked")
    rank_lock = threading.Lock()
    rank_box = [0]

    def worker(i: int) -> None:
        time.sleep(delays[i])
        with rank_lock:
            rank = rank_box[0]
            rank_box[0] = rank + 1
        counter.increment(amounts[i] * (rank + 1))

    with obs.observe(metrics=False, capacity=capacity) as handle:
        gang = [
            threading.Thread(target=worker, args=(i,), name=f"rank-{i}")
            for i in range(workers)
        ]
        for thread in gang:
            thread.start()
        for thread in gang:
            thread.join()
        return handle.trace.snapshot()
