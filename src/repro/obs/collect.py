"""Merge per-process event rings into one cross-process timeline.

Each process's :class:`~repro.obs.events.TraceBuffer` is an island: its
``seq`` values order events *within* that process only, and its ``ts``
values come from that process's ``time.monotonic`` — which has an
arbitrary epoch (boot-relative on Linux, but suspend handling and
non-Linux platforms make "same epoch" an assumption, not a guarantee).
This module joins the islands:

* :func:`write_jsonl` / :func:`load_jsonl` — the on-disk form: one
  :meth:`~repro.obs.events.Event.as_dict` JSON object per line, with
  the writer's ``pid`` stamped on every event as it leaves its home
  process (the emit sites stay pid-free; see ``events.py``).
* :func:`clock_offsets` — NTP-style offset estimation from paired
  request/response frames: for a correlation token with all four wire
  events (requester ``frame_send`` at ``t0``, responder ``frame_recv``
  at ``t1``, responder ``frame_send`` at ``t2``, requester
  ``frame_recv`` at ``t3``), the responder clock leads the requester
  clock by approximately ``((t1 - t0) + (t2 - t3)) / 2`` — network
  asymmetry is the irreducible error, exactly as in NTP.  The estimate
  per pid pair is the median over every such quad, and offsets compose
  transitively across pid pairs that never spoke directly.
* :func:`merge` — one timeline: every ring concatenated, foreign
  timestamps rebased into the root pid's clock, ordered by
  ``(ts, pid, seq)``.  Within one pid that order is exactly the seq
  (causal) order whenever seqs are present — ties on the rebased
  cross-pid axis are broken deterministically, never causally.

Caveat for readers of merged traces: on one Linux host all processes
share ``CLOCK_MONOTONIC``, so estimated offsets hover near zero and
the merged order is trustworthy to network-roundtrip precision.
Across hosts (or after suspend) the offset does the heavy lifting and
sub-millisecond orderings between pids are estimates — the *wire
edges* (correlation tokens, ``cause_seq``) stay exact regardless,
which is why the causal graph trusts tokens over timestamps.
"""

from __future__ import annotations

import json
import os
from statistics import median
from typing import Iterable

from repro.obs.events import Event

__all__ = ["write_jsonl", "load_jsonl", "clock_offsets", "merge",
           "frame_riders"]

_WIRE_KINDS = ("frame_send", "frame_recv")


def _as_doc(event: "Event | dict") -> dict:
    return event.as_dict() if isinstance(event, Event) else dict(event)


def write_jsonl(events: Iterable["Event | dict"], path: str, *,
                pid: int | None = None) -> int:
    """Write one ring as JSONL, stamping ``pid`` on unstamped events.

    ``pid`` defaults to this process's; pass the origin pid explicitly
    when relaying a ring fetched from elsewhere.  Returns the number of
    events written.
    """
    if pid is None:
        pid = os.getpid()
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            doc = _as_doc(event)
            doc.setdefault("pid", pid)
            fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_jsonl(path: str) -> list[Event]:
    """Load one JSONL ring (any schema version; blank lines ignored)."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events


def _offset_samples(events: Iterable[Event]) -> dict[tuple[int, int], list[float]]:
    """Per (requester, responder) pid pair: raw offset samples.

    One sample per correlation token that shows a full request/response
    quad.  The requester is the pid whose ``frame_send`` is earliest in
    its own clock — for every RPC shape the fabric emits (get/ack,
    sub/reached, sync/sync_reply, fetch_*/\\*_reply) the initiating
    side sends first, and a late responder ``frame_send`` (e.g. a push
    delivered seconds after the sub) still yields an unbiased sample:
    only the *pairing* of send/recv matters, not the gap between them.
    """
    by_corr: dict[str, dict[tuple[int, str], float]] = {}
    for event in events:
        corr = event.corr
        if corr is None or event.kind not in _WIRE_KINDS or event.pid is None:
            continue
        slots = by_corr.setdefault(corr, {})
        key = (event.pid, event.kind)
        # Earliest occurrence wins (an unsub that reuses its sub's token
        # must not displace the sub's own send).
        if key not in slots or event.ts < slots[key]:
            slots[key] = event.ts
    samples: dict[tuple[int, int], list[float]] = {}
    for slots in by_corr.values():
        pids = {pid for pid, _ in slots}
        if len(pids) != 2:
            continue
        a, b = sorted(pids)
        quad = (slots.get((a, "frame_send")), slots.get((b, "frame_recv")),
                slots.get((b, "frame_send")), slots.get((a, "frame_recv")))
        if None in quad:
            continue
        t0, t1, t2, t3 = quad
        if t0 > t3 or t1 > t2:
            # a was not the requester for this token; swap roles.
            t0, t1, t2, t3 = t1, t0, t3, t2
            a, b = b, a
        # clock_b - clock_a, to network-asymmetry precision.
        samples.setdefault((a, b), []).append(((t1 - t0) + (t2 - t3)) / 2.0)
    return samples


def clock_offsets(events: Iterable[Event],
                  root: int | None = None) -> dict[int, float]:
    """Estimate each pid's clock offset relative to ``root``'s.

    ``offsets[p]`` is (approximately) ``clock_p - clock_root``; a
    foreign timestamp rebases into the root timeline as
    ``ts - offsets[pid]``.  ``root`` defaults to the pid with the most
    events (ties to the smallest pid), which is also :func:`merge`'s
    choice.  Pids with no wire path to the root keep offset 0.0 —
    on one host that is also the truth.
    """
    events = list(events)
    counts: dict[int, int] = {}
    for event in events:
        if event.pid is not None:
            counts[event.pid] = counts.get(event.pid, 0) + 1
    if not counts:
        return {}
    if root is None:
        root = min(counts, key=lambda p: (-counts[p], p))
    offsets = {root: 0.0}
    edges: dict[tuple[int, int], float] = {
        pair: median(vals) for pair, vals in _offset_samples(events).items()
    }
    # Compose transitively: BFS over the pid graph from the root.
    adjacency: dict[int, list[tuple[int, float]]] = {}
    for (a, b), off in edges.items():
        adjacency.setdefault(a, []).append((b, off))
        adjacency.setdefault(b, []).append((a, -off))
    frontier = [root]
    while frontier:
        here = frontier.pop()
        for there, off in adjacency.get(here, ()):
            if there not in offsets:
                offsets[there] = offsets[here] + off
                frontier.append(there)
    for pid in counts:
        offsets.setdefault(pid, 0.0)
    return offsets


def merge(*rings: Iterable["Event | dict"], align: bool = True,
          root: int | None = None) -> list[Event]:
    """Join per-process rings into one ``(ts, pid, seq)``-ordered timeline.

    Accepts :class:`Event` objects or ``as_dict`` mappings.  With
    ``align`` (the default), foreign timestamps are rebased into the
    root pid's clock using :func:`clock_offsets`; pass ``align=False``
    to keep every ring's native timestamps (single-host traces, where
    ``CLOCK_MONOTONIC`` is already shared).  Events without a ``pid``
    are treated as the root's.

    Rings may overlap: the same ``(pid, seq)`` appearing twice (a ring
    fetched twice, or a local ring merged with its own ``fetch_trace``
    echo) keeps only the first occurrence — duplicated park/unpark
    pairs would otherwise corrupt causal pairing downstream.
    """
    events: list[Event] = []
    seen: set[tuple[int, int]] = set()
    for ring in rings:
        for event in ring:
            if not isinstance(event, Event):
                event = Event.from_dict(event)
            if event.pid is not None and event.seq is not None:
                key = (event.pid, event.seq)
                if key in seen:
                    continue
                seen.add(key)
            events.append(event)
    if align:
        offsets = clock_offsets(events, root=root)
        if any(abs(off) > 1e-12 for off in offsets.values()):
            events = [
                event if event.pid is None or not offsets.get(event.pid)
                else event._replace(ts=event.ts - offsets[event.pid])
                for event in events
            ]
    events.sort(key=lambda e: (e.ts, e.pid or 0, e.seq or 0))
    return events


def frame_riders(events: Iterable[Event]) -> dict[str, str]:
    """Map each request corr to the frame corr that carried its increment.

    Reads the ``frame_ride`` events the dist client's batch flusher
    emits (``corr`` = request token, ``op`` = frame corr): the join that
    sees per-request attribution *through* the flusher's coalescing —
    given a tail request's corr, ``riders[corr]`` names the wire frame
    whose send/recv pair bounds that increment's trip to the server.  A
    request whose increment rode several frames (re-pooled after an rpc)
    keeps the first, which is the frame that actually carried it out.
    """
    riders: dict[str, str] = {}
    for event in events:
        if event.kind == "frame_ride" and event.corr is not None \
                and event.op is not None:
            riders.setdefault(event.corr, event.op)
    return riders
