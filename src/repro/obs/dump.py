"""Live state introspection: who waits on what, right now.

``dump_state()`` walks the weakref registry of live counters and renders
each one as a plain dict — current value, every waiting level with its
waiter count and signaled flag, and (for sharded counters) the per-shard
pending tallies next to the reconciled lower bound.  The result is
JSON-ready, suitable for a debug endpoint, a crash handler, or the
``python -m repro.obs dump`` CLI.

Consistency contract: every number is captured with the same discipline
the primitives' own ``snapshot()`` methods use, and for sharded counters
the published central value is read **before** the per-shard pendings
(see :meth:`repro.core.sharded.ShardedCounter.shard_snapshot`), so the
reported total is always a *lower bound* on the true total — a dump can
under-report in-flight units, it can never invent them.  Monotonicity is
what makes the stale read sound: the value only ever increases, so a
lower bound stays a lower bound.

The dump never blocks on a wedged counter (snapshot reads take the
counter lock only briefly) and never crashes on a racing asyncio
counter (a mid-mutation capture is retried, then skipped with a note).
"""

from __future__ import annotations

from typing import Any

from repro.core import engine
from repro.obs import registry

__all__ = ["dump_state", "dump_counter"]


def dump_counter(counter: object) -> dict[str, Any] | None:
    """One live counter as a JSON-ready dict; None if capture failed."""
    for _ in range(2):
        try:
            return _render(counter)
        except RuntimeError:
            # An asyncio counter's loop mutated the level dict mid-read;
            # one retry, then report the failure rather than guessing.
            continue
        except Exception as exc:
            return {
                "name": registry.label(counter),
                "type": type(counter).__name__,
                "error": f"{type(exc).__name__}: {exc}",
            }
    return {
        "name": registry.label(counter),
        "type": type(counter).__name__,
        "error": "capture raced concurrent mutation twice; skipped",
    }


def _render(counter: object) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "name": registry.label(counter),
        "type": type(counter).__name__,
    }
    shard_snapshot = getattr(counter, "shard_snapshot", None)
    if shard_snapshot is not None:
        shards = shard_snapshot()
        # published was read before the pendings, so this total is a
        # lower bound on the true count — never an over-report.
        doc["published"] = shards.published
        doc["pending"] = list(shards.pending)
        doc["value"] = shards.total
    dist_snapshot = getattr(counter, "dist_snapshot", None)
    if dist_snapshot is not None:
        # Fabric-backed counters (repro.dist): the published sum is read
        # with the same lower-bound discipline — a shm scan brackets
        # between the true totals at scan start and end, a service
        # handle reports the last server-acknowledged total.  Stale can
        # only under-report; monotonicity keeps the bound sound.
        doc["dist"] = dist_snapshot()
        doc.setdefault("published", doc["dist"]["published"])
    snap = counter.snapshot()
    doc.setdefault("value", snap.value)
    doc["waiting"] = [
        {"level": node.level, "waiters": node.count, "signaled": bool(node.signaled)}
        for node in snap.nodes
        if node.count > 0
    ]
    doc["waiting_levels"] = sum(1 for w in doc["waiting"] if not w["signaled"])
    doc["total_waiters"] = sum(w["waiters"] for w in doc["waiting"] if not w["signaled"])
    stats = getattr(counter, "stats", None)
    if stats is not None and getattr(stats, "enabled", False):
        doc["stats"] = stats.as_dict()
    return doc


def dump_state() -> dict[str, Any]:
    """Every live registered counter, rendered for humans and JSON alike.

    The top-level ``counters`` list is sorted by label for stable diffs;
    ``totals`` aggregates the headline numbers so a glance answers "is
    anything waiting, and how much".
    """
    counters = []
    for counter in registry.live_counters():
        doc = dump_counter(counter)
        if doc is not None:
            counters.append(doc)
    counters.sort(key=lambda d: d["name"])
    return {
        "counters": counters,
        "totals": {
            "counters": len(counters),
            "waiting_levels": sum(d.get("waiting_levels", 0) for d in counters),
            "waiters": sum(d.get("total_waiters", 0) for d in counters),
        },
        # Wakeup-engine internals: the shared timer wheel's armed
        # deadlines and the live parking-slot population.  Both reads
        # are diagnostic snapshots (wheel lock held briefly; the slot
        # count is a weak-set len) — a wedged waiter shows up here as an
        # armed entry whose deadline_in_s keeps shrinking.
        "engine": {
            "timer_wheel": engine.wheel().snapshot(),
            "parking_slots": engine.live_slot_count(),
        },
    }
