"""Typed trace events and the bounded ring buffer they land in.

One :class:`Event` is recorded per observable protocol action — an
increment, a release, a park/unpark pair, a spin exhaustion, a timeout, a
subscription fire, a shard flush, a stall report — when tracing is
enabled via :func:`repro.obs.enable`.  Events are immutable named
tuples so they serialize trivially (``as_dict`` drops unused fields),
a sink can pattern-match on ``kind`` without string parsing beyond the
kind itself, and — the reason they are tuples rather than the frozen
dataclasses they once were — construction is a single tuple allocation
instead of one guarded ``__setattr__`` per field, which is most of what
the enabled-mode wait-path tax used to be.

The :class:`TraceBuffer` is a fixed-capacity ring: appends never block
and never grow memory, the oldest events fall off the far end, and
``emitted`` keeps the lifetime total so a reader can tell how much
history the ring no longer holds.  Appends rely on ``deque.append``
being atomic under the GIL (and internally locked on free-threaded
builds); the tallies around it are racy by design — observability must
never add a lock to the paths it observes.

Internally the ring stores *payload tuples* in :class:`Event` field
order, not ``Event`` instances: the hot emit path (what
:meth:`TraceBuffer.emitter` hands the hooks — with no sink installed,
the deque's bound C ``append`` itself) lands the raw 16-tuple and the
``Event`` objects are materialized lazily by
:meth:`TraceBuffer.snapshot` — readers pay the namedtuple wrap once per
read instead of every park/unpark paying it per emit, and the per-event
lifetime tally is recovered from the seq counter's watermark instead of
being paid per emit (see :meth:`TraceBuffer.emitted`).  ``append``
still takes a full ``Event`` (an ``Event`` is itself a valid payload,
so the two populations coexist in the ring), and a sink always receives
constructed ``Event`` objects.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Iterator, NamedTuple

_tuple_new = tuple.__new__

__all__ = ["Event", "TraceBuffer", "KINDS", "next_seq", "next_token"]

#: Process-global monotonic event sequence (schema v2).  ``itertools.count``
#: advances in C, so allocation is a single atomic-under-the-GIL call; two
#: events allocated by racing threads get distinct, ordered seqs.  Seqs are
#: allocated at the emit site (or pre-allocated by the deferred release
#: emission) so *causal* order — increment before its releases before the
#: unparks they cause — is preserved even when the ring's physical append
#: order interleaves.  Consumers should sort by ``seq``, not buffer order.
_seq_counter = itertools.count(1)
next_seq = _seq_counter.__next__


def seq_watermark() -> int:
    """The seq :data:`next_seq` would hand out next, without consuming it.

    ``itertools.count`` exposes its current position through its pickle
    protocol (``count(n).__reduce__() == (count, (n,))``), which lets the
    trace ring account for hook-emitted events by *differencing
    watermarks* instead of paying a per-event tally on the hot emit path
    — see :meth:`TraceBuffer.emitted`.
    """
    return _seq_counter.__reduce__()[1][0]

#: Correlation-token space for wait nodes (schema v2): one token per
#: ``WaitNode`` / asyncio ``_Level`` / ``MultiWait``, allocated at
#: construction (the park slow path — never a lock-free fast path).  The
#: ``release`` event for a node and every ``park``/``unpark``/``timeout``/
#: ``sub_fire`` on it carry the same token, which is what lets the causal
#: analyzer tie a release to exactly the unparks it caused.
next_token = itertools.count(1).__next__

#: Every event kind the instrumented paths can emit.  Kept as data so the
#: docs and the self-tests can enumerate them; the strings at the emit
#: sites are the source of truth and are asserted against this registry.
KINDS = frozenset(
    {
        "increment",       # a counter's value advanced (amount, new value)
        "release",         # one wait node unlinked by an increment (level, waiters)
        "park",            # a check registered and is about to suspend
        "unpark",          # a suspended check resumed (wait + wakeup latency)
        "spin_exhausted",  # the spin phase burned its budget and fell to park
        "timeout",         # a check's wait expired (genuine timeout)
        "sub_fire",        # a level's subscription callbacks are about to run
        "flush",           # a shard published its pending batch centrally
        "drain",           # a reconciling sweep published pending tallies
        "mw_park",         # a MultiWait is about to suspend
        "mw_wake",         # a MultiWait wait completed
        "mw_timeout",      # a MultiWait wait expired
        "stall",           # the watchdog flagged a blocked check
        # --- schema v3: the cross-process fabric (repro.dist) ---
        "frame_send",      # one wire frame written to a peer (op, corr)
        "frame_recv",      # one wire frame read from a peer (op, corr)
        "batch_flush",     # a client flushed its dirty-counter batch
        "push_deliver",    # the service pushed a satisfied subscription
        "bell_ring",       # a shm writer rang a sleeping reader's doorbell
        "bell_wake",       # a shm watcher woke on its doorbell generation
        "gossip_round",    # one anti-entropy digest exchange completed
        "slot_claim",      # a shm process claimed (or reclaimed) a writer slot
        # --- schema v3.1: the load/SLO layer (repro.obs.load / .slo) ---
        "req_start",       # a load-generator request began executing (corr;
                           #   wait_s carries the open-loop queue delay:
                           #   actual start minus intended send time)
        "req_done",        # a request completed (corr; wait_s carries the
                           #   coordinated-omission-safe total latency,
                           #   stamped from intended send time; value is
                           #   1 admitted / 0 rejected-or-failed)
        "frame_ride",      # one logical client increment rode a batched inc
                           #   frame: corr is the *request's* token, op is
                           #   the frame's corr (see collect.frame_riders)
        "slo_breach",      # an SLO window burned past its budget (value is
                           #   the violation count, count the window total,
                           #   wait_s the observed objective quantile)
    }
)


class Event(NamedTuple):
    """One observed protocol action.

    ``ts`` is :func:`time.monotonic` at emit time; ``source`` is the
    emitting primitive's label (its ``name`` if given, else
    ``ClassName@0x...``); ``thread`` is the emitting thread's ident.
    The remaining fields are kind-specific and ``None`` when not
    applicable: ``level``/``value``/``count``/``amount`` carry the
    counter-shaped payload, ``wait_s`` is park-to-unpark latency and
    ``wakeup_s`` is release-to-unpark latency (the wakeup path itself).

    Schema v2 adds three correlation fields (``None`` on events emitted
    by pre-v2 writers, so old JSONL replays still load):

    * ``seq`` — position in the process-global emission order
      (:data:`next_seq`); the causal sort key.
    * ``token`` — the wait node's correlation token: a ``release`` and
      the ``park``/``unpark``/``timeout``/``sub_fire`` events on the
      same node share it (``mw_*`` events share their MultiWait's own
      token; ``sub_fire`` carries the *node* token so a MultiWait wake
      is still traceable to the releasing increment).
    * ``cause_seq`` — on ``release`` events, the ``seq`` of the
      increment whose advance unlinked the node (on ``push_deliver``
      events, the seq of the increment whose advance satisfied the
      pushed subscription).

    Schema v3 adds three cross-process fields (again ``None`` — and
    omitted from ``as_dict`` — on events emitted by pre-v3 writers, so
    v1/v2 JSONL consumers are untouched):

    * ``pid`` — the emitting process.  Not stamped at the emit sites
      (the hot paths stay pid-free); stamped at *collection* time by
      :func:`repro.obs.collect.write_jsonl` and the service's
      ``fetch_trace`` reply, which is where a trace first leaves its
      process.  ``seq`` is only meaningful *within* one pid — merged
      timelines order by ``(ts, seq)`` and qualify every seq lookup by
      pid (see :mod:`repro.obs.collect`).
    * ``op`` — on ``frame_send``/``frame_recv``, the wire op the frame
      carried (``"inc"``, ``"sub"``, ``"reached"``, ...).
    * ``corr`` — the wire correlation token (a string, globally unique
      across processes: ``"<pid:x>-<n:x>"``).  A client stamps it on
      each outgoing frame, the server echoes it on replies and stamps
      it on every event the frame causes, which is what lets the
      causal analyzer link a client-side ``check`` to the server-side
      ``increment`` that satisfied it.
    """

    ts: float
    kind: str
    source: str
    thread: int
    level: int | None = None
    value: int | None = None
    count: int | None = None
    amount: int | None = None
    wait_s: float | None = None
    wakeup_s: float | None = None
    seq: int | None = None
    token: int | None = None
    cause_seq: int | None = None
    pid: int | None = None
    op: str | None = None
    corr: str | None = None

    _OPTIONAL = ("level", "value", "count", "amount", "wait_s", "wakeup_s",
                 "seq", "token", "cause_seq", "pid", "op", "corr")

    def as_dict(self) -> dict:
        """JSON-ready mapping with the unused optional fields dropped.

        Backward-compatible with v1 consumers: the v2 fields appear only
        when set, so a pre-v2 event round-trips to exactly its old form.
        """
        doc = {"ts": self.ts, "kind": self.kind, "source": self.source, "thread": self.thread}
        for field in self._OPTIONAL:
            val = getattr(self, field)
            if val is not None:
                doc[field] = val
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Event":
        """Rebuild an event from an :meth:`as_dict`/JSONL mapping.

        Unknown keys are ignored (forward compatibility with later
        schema revisions); missing optional fields stay ``None``.
        """
        return cls(
            ts=doc["ts"], kind=doc["kind"], source=doc["source"], thread=doc["thread"],
            **{f: doc[f] for f in cls._OPTIONAL if f in doc},
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(
            f"{k}={v}" for k, v in self.as_dict().items() if k not in ("ts", "kind", "source")
        )
        return f"[{self.ts:.6f}] {self.kind} {self.source} {extras}"


class TraceBuffer:
    """Fixed-capacity event ring with an optional per-event sink.

    The sink (if given) is called with every event, in the emitting
    thread, possibly at delicate points of the synchronization protocol:
    it must be fast, must not raise, and must never call back into the
    primitives being traced.  A raising sink is dropped after the first
    failure (recorded in ``sink_errors``) rather than poisoning the hot
    path.
    """

    __slots__ = ("_events", "_sink", "capacity", "_appended", "_seq_base",
                 "_seq_final", "sink_errors")

    def __init__(
        self,
        capacity: int = 65536,
        sink: Callable[[Event], None] | None = None,
    ) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"capacity must be a positive int, got {capacity!r}")
        if sink is not None and not callable(sink):
            raise TypeError(f"sink must be callable, got {sink!r}")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._sink = sink
        self.capacity = capacity
        #: Events that arrived through :meth:`append` (racy tally).
        self._appended = 0
        #: Seq watermarks bracketing this ring's hot-emit window; see
        #: :meth:`emitted`.
        self._seq_base: int | None = None
        self._seq_final: int | None = None
        #: Sink invocations that raised (the sink is dropped on the first).
        self.sink_errors = 0

    def append(self, event: Event) -> None:
        self._appended += 1
        self._events.append(event)
        sink = self._sink
        if sink is not None:
            try:
                sink(event)
            except BaseException:
                self.sink_errors += 1
                self._sink = None

    def emitter(self):
        """The hot-path emit callable handed to the hooks at enable time.

        Takes one raw payload tuple in :class:`Event` field order.  With
        no sink installed this is the deque's bound C ``append`` itself —
        no Python frame per event; the lifetime tally is recovered by
        differencing seq watermarks (every hook emission allocates
        exactly one seq, so seqs-consumed-while-active ≈ events-emitted;
        :func:`repro.obs.disable` seals the window).  With a sink, it
        falls back to :meth:`append` so the sink contract (constructed
        ``Event``, in the emitting thread, dropped on first raise) is
        unchanged.
        """
        if self._sink is not None:
            append = self.append
            return lambda payload: append(_tuple_new(Event, payload))
        if self._seq_base is None:
            self._seq_base = seq_watermark()
        return self._events.append

    def seal(self) -> None:
        """Freeze the hot-emit accounting window (idempotent).

        Called by :func:`repro.obs.disable` (and by a re-``enable`` that
        replaces this ring) after emission stops, so :attr:`emitted`
        stops tracking the process-global seq counter on behalf of a
        ring that is no longer the active one.
        """
        if self._seq_base is not None and self._seq_final is None:
            self._seq_final = seq_watermark()

    @property
    def emitted(self) -> int:
        """Lifetime events recorded (approximate while hot-emitting).

        Direct :meth:`append` calls are tallied exactly; events from the
        hooks' hot emit path are counted as seqs allocated during the
        active window (exact once sealed, transiently high by the few
        seqs the deferred release emission pre-allocates before its
        events land — the same "racy by design" precision as every other
        tally here).
        """
        base = self._seq_base
        if base is None:
            return self._appended
        final = self._seq_final
        return self._appended + (seq_watermark() if final is None else final) - base

    @property
    def dropped(self) -> int:
        """Events that have fallen off the far end of the ring."""
        return max(0, self.emitted - len(self._events))

    def snapshot(self) -> list[Event]:
        """The buffered events, oldest first (detached copy).

        Materializes the lazily-stored payload tuples; wrapping an
        already-constructed ``Event`` yields an equal ``Event``, so the
        mixed ring needs no type branch.
        """
        return [_tuple_new(Event, payload) for payload in list(self._events)]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())

    def __repr__(self) -> str:
        return (
            f"<TraceBuffer {len(self._events)}/{self.capacity} buffered, "
            f"{self.emitted} emitted>"
        )
