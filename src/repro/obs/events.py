"""Typed trace events and the bounded ring buffer they land in.

One :class:`Event` is recorded per observable protocol action — an
increment, a release, a park/unpark pair, a spin exhaustion, a timeout, a
subscription fire, a shard flush, a stall report — when tracing is
enabled via :func:`repro.obs.enable`.  Events are plain frozen
dataclasses so they serialize trivially (``as_dict`` drops unused
fields) and so a sink can pattern-match on ``kind`` without string
parsing beyond the kind itself.

The :class:`TraceBuffer` is a fixed-capacity ring: appends never block
and never grow memory, the oldest events fall off the far end, and
``emitted`` keeps the lifetime total so a reader can tell how much
history the ring no longer holds.  Appends rely on ``deque.append``
being atomic under the GIL (and internally locked on free-threaded
builds); the tallies around it are racy by design — observability must
never add a lock to the paths it observes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Event", "TraceBuffer", "KINDS"]

#: Every event kind the instrumented paths can emit.  Kept as data so the
#: docs and the self-tests can enumerate them; the strings at the emit
#: sites are the source of truth and are asserted against this registry.
KINDS = frozenset(
    {
        "increment",       # a counter's value advanced (amount, new value)
        "release",         # one wait node unlinked by an increment (level, waiters)
        "park",            # a check registered and is about to suspend
        "unpark",          # a suspended check resumed (wait + wakeup latency)
        "spin_exhausted",  # the spin phase burned its budget and fell to park
        "timeout",         # a check's wait expired (genuine timeout)
        "sub_fire",        # a level's subscription callbacks are about to run
        "flush",           # a shard published its pending batch centrally
        "drain",           # a reconciling sweep published pending tallies
        "mw_park",         # a MultiWait is about to suspend
        "mw_wake",         # a MultiWait wait completed
        "mw_timeout",      # a MultiWait wait expired
        "stall",           # the watchdog flagged a blocked check
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One observed protocol action.

    ``ts`` is :func:`time.monotonic` at emit time; ``source`` is the
    emitting primitive's label (its ``name`` if given, else
    ``ClassName@0x...``); ``thread`` is the emitting thread's ident.
    The remaining fields are kind-specific and ``None`` when not
    applicable: ``level``/``value``/``count``/``amount`` carry the
    counter-shaped payload, ``wait_s`` is park-to-unpark latency and
    ``wakeup_s`` is release-to-unpark latency (the wakeup path itself).
    """

    ts: float
    kind: str
    source: str
    thread: int
    level: int | None = None
    value: int | None = None
    count: int | None = None
    amount: int | None = None
    wait_s: float | None = None
    wakeup_s: float | None = None

    def as_dict(self) -> dict:
        """JSON-ready mapping with the unused optional fields dropped."""
        doc = {"ts": self.ts, "kind": self.kind, "source": self.source, "thread": self.thread}
        for field in ("level", "value", "count", "amount", "wait_s", "wakeup_s"):
            val = getattr(self, field)
            if val is not None:
                doc[field] = val
        return doc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(
            f"{k}={v}" for k, v in self.as_dict().items() if k not in ("ts", "kind", "source")
        )
        return f"[{self.ts:.6f}] {self.kind} {self.source} {extras}"


class TraceBuffer:
    """Fixed-capacity event ring with an optional per-event sink.

    The sink (if given) is called with every event, in the emitting
    thread, possibly at delicate points of the synchronization protocol:
    it must be fast, must not raise, and must never call back into the
    primitives being traced.  A raising sink is dropped after the first
    failure (recorded in ``sink_errors``) rather than poisoning the hot
    path.
    """

    __slots__ = ("_events", "_sink", "capacity", "emitted", "sink_errors")

    def __init__(
        self,
        capacity: int = 65536,
        sink: Callable[[Event], None] | None = None,
    ) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"capacity must be a positive int, got {capacity!r}")
        if sink is not None and not callable(sink):
            raise TypeError(f"sink must be callable, got {sink!r}")
        self._events: deque[Event] = deque(maxlen=capacity)
        self._sink = sink
        self.capacity = capacity
        #: Lifetime events appended (racy tally; >= len() once the ring wraps).
        self.emitted = 0
        #: Sink invocations that raised (the sink is dropped on the first).
        self.sink_errors = 0

    def append(self, event: Event) -> None:
        self.emitted += 1
        self._events.append(event)
        sink = self._sink
        if sink is not None:
            try:
                sink(event)
            except BaseException:
                self.sink_errors += 1
                self._sink = None

    @property
    def dropped(self) -> int:
        """Events that have fallen off the far end of the ring."""
        return max(0, self.emitted - len(self._events))

    def snapshot(self) -> list[Event]:
        """The buffered events, oldest first (detached copy)."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._events))

    def __repr__(self) -> str:
        return (
            f"<TraceBuffer {len(self._events)}/{self.capacity} buffered, "
            f"{self.emitted} emitted>"
        )
