"""Fleet metrics: merge per-node registry snapshots, render one scrape.

The service's ``fetch_metrics`` op ships a node's
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as plain JSON; this
module folds any number of those into one fleet-wide view and renders
it in Prometheus text exposition format — the body of the aggregating
endpoint :meth:`repro.dist.service.CounterService.serve_metrics`
serves, so one scrape covers the whole fabric.

Merging is per metric kind:

* monotone tallies (increments, parks, ...) and ``dropped_series`` sum;
* high-water gauges take the max (a fleet-wide high water);
* histograms merge bucket-wise — same-bound counts add, ``count`` and
  ``sum`` add — which is exact because every node uses the same fixed
  bounds (:data:`~repro.obs.metrics.LATENCY_BOUNDS` et al.), and safe
  even if bounds ever diverge (the union of bounds is kept);
* the unified ``CounterStats`` tallies sum per (label, tally);
* trace-ring health sums (fleet totals of emitted/dropped/buffered).

Same-label series from different nodes *merge* rather than collide —
labels in this codebase name counters (``service:.../orders``), and a
counter replicated on three nodes is one logical series.  Per-node
liveness is exported separately as ``repro_fleet_node_up``.
"""

from __future__ import annotations

__all__ = ["merge_histograms", "merge_series", "merge_snapshots", "render_fleet"]


def merge_histograms(into: dict, other: dict) -> dict:
    """Merge two histogram snapshots (``{"count","sum","buckets"}``)."""
    buckets = dict(into.get("buckets", {}))
    for bound, n in other.get("buckets", {}).items():
        buckets[bound] = buckets.get(bound, 0) + n
    return {
        "count": into.get("count", 0) + other.get("count", 0),
        "sum": into.get("sum", 0.0) + other.get("sum", 0.0),
        "buckets": buckets,
    }


_SERIES_TALLIES = ("increments", "releases", "parks", "unparks",
                   "timeouts", "flushes")
_SERIES_HIGH_WATERS = ("live_levels_hw", "live_waiters_hw")
_SERIES_HISTOGRAMS = ("wait_latency", "wakeup_latency", "spin_exhausted")


def merge_series(into: dict, other: dict) -> dict:
    """Merge two per-label series snapshots (``CounterMetrics.snapshot``)."""
    merged = dict(into)
    for key in _SERIES_TALLIES:
        merged[key] = merged.get(key, 0) + other.get(key, 0)
    for key in _SERIES_HIGH_WATERS:
        merged[key] = max(merged.get(key, 0), other.get(key, 0))
    for key in _SERIES_HISTOGRAMS:
        merged[key] = merge_histograms(merged.get(key, {}), other.get(key, {}))
    return merged


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold node registry snapshots into one fleet-wide snapshot.

    ``None`` entries (a node with metrics disabled) are skipped.  The
    result has the same shape as one registry snapshot, so everything
    that can read a node's snapshot can read the fleet's.
    """
    series: dict[str, dict] = {}
    stats: dict[str, dict] = {}
    trace: dict | None = None
    dropped = 0
    for snapshot in snapshots:
        if not snapshot:
            continue
        for label, node_series in snapshot.get("series", {}).items():
            if label in series:
                series[label] = merge_series(series[label], node_series)
            else:
                series[label] = dict(node_series)
        for label, tallies in (snapshot.get("stats") or {}).items():
            slot = stats.setdefault(label, {})
            for tally, value in tallies.items():
                slot[tally] = slot.get(tally, 0) + value
        health = snapshot.get("trace")
        if health:
            if trace is None:
                trace = dict(health)
            else:
                for key, value in health.items():
                    trace[key] = trace.get(key, 0) + value
        dropped += snapshot.get("dropped_series", 0)
    return {"series": series, "stats": stats, "trace": trace,
            "dropped_series": dropped}


def _escape(label: str) -> str:
    return str(label).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _bound_key(bound: str) -> float:
    return float("inf") if bound == "+Inf" else float(bound)


def render_fleet(nodes: list[dict]) -> str:
    """Prometheus exposition for a fleet of node metric replies.

    ``nodes`` entries are ``{"node", "pid", "snapshot", "up"}`` — the
    shape :meth:`CounterService.fetch_peer_metrics` returns; a down or
    metrics-disabled node contributes liveness gauges only.  Metric
    names match :meth:`MetricsRegistry.prometheus` so dashboards work
    against a node or the fleet unchanged.
    """
    merged = merge_snapshots([n.get("snapshot") for n in nodes
                              if n.get("snapshot")])
    lines: list[str] = []
    lines.append("# HELP repro_fleet_nodes Nodes aggregated in this scrape")
    lines.append("# TYPE repro_fleet_nodes gauge")
    lines.append(f"repro_fleet_nodes {len(nodes)}")
    lines.append("# HELP repro_fleet_node_up Whether the node answered the scrape")
    lines.append("# TYPE repro_fleet_node_up gauge")
    for node in nodes:
        pid = node.get("pid")
        lines.append(
            f'repro_fleet_node_up{{node="{_escape(node.get("node", "?"))}"'
            f',pid="{pid if pid is not None else ""}"}} '
            f'{1 if node.get("up") else 0}'
        )
    series = sorted(merged["series"].items())
    counters = (
        ("increments", "repro_counter_increments_total", "Increment operations observed (fleet)"),
        ("releases", "repro_counter_releases_total", "Wait nodes released by increments (fleet)"),
        ("parks", "repro_counter_parks_total", "Checks that suspended (fleet)"),
        ("unparks", "repro_counter_unparks_total", "Suspended checks that resumed (fleet)"),
        ("timeouts", "repro_counter_timeouts_total", "Checks whose wait expired (fleet)"),
        ("flushes", "repro_counter_flushes_total", "Shard batch publications (fleet)"),
    )
    gauges = (
        ("live_levels_hw", "repro_counter_live_levels_high_water", "Max simultaneous distinct waiting levels (fleet max)"),
        ("live_waiters_hw", "repro_counter_live_waiters_high_water", "Max simultaneous suspended threads (fleet max)"),
    )
    histograms = (
        ("wait_latency", "repro_counter_wait_latency_seconds", "Park-to-unpark latency of suspended checks (fleet)"),
        ("wakeup_latency", "repro_counter_wakeup_latency_seconds", "Release-to-unpark latency (fleet)"),
        ("spin_exhausted", "repro_counter_spin_exhausted_iterations", "Spin budgets burned without satisfaction (fleet)"),
    )
    for attr, metric, help_text in counters:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} counter")
        for label, m in series:
            lines.append(f'{metric}{{counter="{_escape(label)}"}} {m.get(attr, 0)}')
    for attr, metric, help_text in gauges:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        for label, m in series:
            lines.append(f'{metric}{{counter="{_escape(label)}"}} {m.get(attr, 0)}')
    for attr, metric, help_text in histograms:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} histogram")
        for label, m in series:
            hist = m.get(attr) or {}
            buckets = hist.get("buckets", {})
            esc = _escape(label)
            cumulative = 0
            for bound in sorted(buckets, key=_bound_key):
                if bound == "+Inf":
                    continue
                cumulative += buckets[bound]
                lines.append(
                    f'{metric}_bucket{{counter="{esc}",le="{float(bound):g}"}} {cumulative}'
                )
            cumulative += buckets.get("+Inf", 0)
            lines.append(f'{metric}_bucket{{counter="{esc}",le="+Inf"}} {cumulative}')
            lines.append(f'{metric}_sum{{counter="{esc}"}} {hist.get("sum", 0.0):g}')
            lines.append(f'{metric}_count{{counter="{esc}"}} {cumulative}')
    trace = merged.get("trace")
    if trace:
        trace_gauges = (
            ("emitted", "repro_trace_emitted_total", "Events appended to trace rings (fleet lifetime)"),
            ("dropped", "repro_trace_dropped_total", "Events that fell off ring far ends (fleet)"),
            ("sink_errors", "repro_trace_sink_errors_total", "Sink invocations that raised (fleet)"),
            ("buffered", "repro_trace_buffered", "Events currently held in rings (fleet)"),
            ("capacity", "repro_trace_capacity", "Summed ring capacity (fleet)"),
        )
        for key, metric, help_text in trace_gauges:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {trace.get(key, 0)}")
    stats = merged.get("stats")
    if stats:
        lines.append("# HELP repro_counter_stats_total Unified opt-in CounterStats tallies (fleet)")
        lines.append("# TYPE repro_counter_stats_total counter")
        for label, tallies in sorted(stats.items()):
            esc = _escape(label)
            for tally, value in tallies.items():
                lines.append(
                    f'repro_counter_stats_total{{counter="{esc}",tally="{tally}"}} {value}'
                )
    lines.append("")
    return "\n".join(lines)
