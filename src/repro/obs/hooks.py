"""The zero-cost-when-off observability seam.

This module is the production twin of :mod:`repro.core.syncpoints` and
reuses its trick verbatim: every instrumented site in the counter code
compiles to

.. code-block:: python

    if _obs.enabled:
        _obs.on_park(self, level, value, live_levels, live_waiters)

so the disabled cost is one module-attribute read and an untaken branch
— and, exactly as with the sync points, **no site lies on the lock-free
fast paths** (`MonotonicCounter.check`'s immediate return, the sharded
counter's published-value return, the spin loop's inner iterations): an
already-satisfied ``check`` never touches this module at all, so its
cost is unchanged *by construction*, enabled or not.  The quick bench's
``obs_overhead`` series records the measurement.

``enabled`` is flipped only by :func:`repro.obs.enable` /
:func:`repro.obs.disable`, which install the active
:class:`~repro.obs.events.TraceBuffer` and
:class:`~repro.obs.metrics.MetricsRegistry` here.  The ``on_*``
functions below are the only writers; each snapshots the tracer/metrics
reference before use so a concurrent ``disable`` can never produce a
``None`` call — late emissions from threads mid-operation simply fall
through.

Emission sites are chosen to run **outside** the primitives' locks
wherever the protocol allows (the coalesced release pass, the unpark
path); the exceptions — :class:`~repro.core.counter.BroadcastCounter`'s
park and the MultiWait timeout — are noted at the call sites.  Sink
callbacks therefore must be quick, must not raise, and must never call
back into the primitives being traced.

Enabled-mode cost: the unified engine (PR 6) cut the *disabled* wait
path roughly in half, which turned the per-event emission cost into the
dominant share of the enabled-mode handoff tax — so the hot sites here
are tuned to the same standard as the paths they observe:

* Events are emitted as raw *payload tuples* in declaration order —
  ``(ts, kind, source, thread, level, value, count, amount, wait_s,
  wakeup_s, seq, token, cause_seq, pid, op, corr)`` — through ``_emit``, the callable
  :meth:`~repro.obs.events.TraceBuffer.emitter` hands over at enable
  time (the ring deque's bound C ``append`` when no sink is installed);
  the ``Event`` objects are materialized lazily at snapshot time, and
  the ring's lifetime tally is recovered from the seq watermark rather
  than paid per emit — which is why **every** ``next_seq()`` call here
  is paired with exactly one emit.  Unused fields are spelled ``None``
  explicitly; keep the order in lockstep with
  :class:`~repro.obs.events.Event` if the schema grows.
* The label → metrics-series resolution is memoized per primitive in
  its ``_obs_chan`` slot as ``(generation, label, series, wait_append,
  wakeup_append)`` — the last two are the latency histograms' bound
  staging-deque appends, so the unpark sites record a latency sample
  with one C call; :func:`enable`/:func:`disable` bump the generation,
  invalidating every cache at once (see :func:`_chan`).
* The hottest sites (:func:`on_park`, :func:`on_wake`) inline the
  high-water update — keep them in lockstep with
  ``CounterMetrics.note_levels``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from repro.obs.events import TraceBuffer, next_seq
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry import label

__all__ = ["enabled", "clock", "next_corr", "WireContext",
           "set_wire_context", "wire_context", "last_increment_seq"]

#: Read by every instrumented site; True only while obs is enabled.
enabled = False

#: The timestamp source for every event and latency measurement.
clock = time.monotonic

_trace: TraceBuffer | None = None
_metrics: MetricsRegistry | None = None

#: The active trace ring's fast emit closure (None while tracing is
#: off); takes one raw payload tuple in Event field order.
_emit = None

#: Enable/disable generation.  Bumped by repro.obs.enable()/disable();
#: stale ``_obs_chan`` caches are detected by comparing against it.
_gen = 0

_get_ident = threading.get_ident


def _chan(obj: object) -> tuple:
    """The per-primitive emission channel:
    ``(generation, label, series, wait_append, wakeup_append)``.

    Memoized on the instance's ``_obs_chan`` slot so a hot emit site
    pays one attribute read and an int compare instead of the label
    lookup plus the registry's dict hit; a new :func:`repro.obs.enable`
    (or disable) bumps ``_gen``, invalidating every cached channel.
    ``series`` (and with it the two bound histogram staging appends) is
    ``None`` when metrics are off.  Objects without the slot just
    rebuild the channel per call.
    """
    ch = getattr(obj, "_obs_chan", None)
    if ch is not None and ch[0] == _gen:
        return ch
    metrics = _metrics
    src = label(obj)
    if metrics is None:
        ch = (_gen, src, None, None, None)
    else:
        series = metrics.series(src)
        ch = (_gen, src, series,
              series.wait_latency._pending.append,
              series.wakeup_latency._pending.append)
    try:
        obj._obs_chan = ch  # type: ignore[attr-defined]
    except AttributeError:
        pass  # no slot / frozen object: skip the memo
    return ch


# -------------------------------------------------------- wire correlation
#
# Schema v3: the dist layer (repro.dist) stamps a *correlation token* on
# every wire frame, and the side that processes the frame stamps the
# same token on the events the frame causes.  Tokens are strings,
# globally unique across processes (``"<pid:x>-<n:x>"``); the pid prefix
# is refreshed after fork so a forked shm worker never collides with its
# parent.  The ambient :class:`WireContext` is a thread-local the
# service/watcher sets around frame dispatch — core emit sites read it
# only on the *enabled* tracing path, so the disabled contract (one
# attr-read + false branch) is untouched.

_corr_pid = os.getpid()
_next_corr_n = itertools.count(1).__next__


def _refresh_corr_pid() -> None:
    global _corr_pid
    _corr_pid = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on POSIX
    os.register_at_fork(after_in_child=_refresh_corr_pid)


def next_corr() -> str:
    """A fresh wire correlation token, unique across cooperating pids."""
    return f"{_corr_pid:x}-{_next_corr_n():x}"


class WireContext:
    """The ambient "this thread is processing wire frame X" marker.

    ``corr`` is the frame's correlation token (or ``None``).  ``inc_seq``
    is filled in by the increment emit sites below: the seq of the
    increment event the frame's processing produced, which is what the
    service's subscription callback reads to stamp ``cause_seq`` on the
    ``push_deliver`` it emits — the wire half of the causal chain.
    """

    __slots__ = ("corr", "inc_seq")

    def __init__(self, corr: str | None) -> None:
        self.corr = corr
        self.inc_seq: int | None = None


_wire_local = threading.local()


def set_wire_context(ctx: "WireContext | None") -> "WireContext | None":
    """Install ``ctx`` as this thread's ambient wire context.

    Returns the previous context so a dispatcher can restore it (frame
    dispatch nests during anti-entropy: a sync_reply is processed while
    the gossip round's own context is live).
    """
    prev = getattr(_wire_local, "ctx", None)
    _wire_local.ctx = ctx
    return prev


def wire_context() -> "WireContext | None":
    return getattr(_wire_local, "ctx", None)


def last_increment_seq() -> int | None:
    """The seq of the newest increment event emitted by *this thread*.

    Subscription callbacks fire synchronously inside the increment's
    release/signal pass, on the incrementing thread — so at fire time
    this is exactly the satisfying increment, even when the increment
    was process-local and no :class:`WireContext` is ambient (a service
    node raising its own counter, an anti-entropy merge).  Stale between
    increments; only meaningful from within a subscription callback.
    """
    return getattr(_wire_local, "last_inc_seq", None)


# --------------------------------------------------------------- increment

def on_increment(counter: object, amount: int, value: int) -> int | None:
    """An increment's critical section completed (emitted outside the lock).

    Returns the increment event's ``seq`` when tracing is on (the caller
    threads it into the ``cause_seq`` of the releases this increment
    performs), else ``None``.
    """
    ch = _chan(counter)
    series = ch[2]
    if series is not None:
        series.increments += 1
    emit = _emit
    if emit is not None:
        seq = next_seq()
        _wire_local.last_inc_seq = seq
        ctx = getattr(_wire_local, "ctx", None)
        if ctx is None:
            corr = None
        else:
            ctx.inc_seq = seq
            corr = ctx.corr
        emit((clock(), "increment", ch[1], _get_ident(),
              None, value, None, amount,
              None, None, seq, None, None, None, None, corr))
        return seq
    return None


def on_release(
    counter: object, value: int, released: list, cause_seq: int | None = None
) -> None:
    """Satisfied nodes were unlinked; stamps each node's release time.

    Runs after the increment's critical section, before the coalesced
    signal pass, so the release timestamp brackets the whole wakeup path
    the ``wakeup_latency`` histogram measures.  Used by the asyncio
    counter, whose signal pass is a synchronous ``Event.set`` loop; the
    threaded counter uses the split :func:`on_release_stamp` /
    :func:`on_increment_released` pair instead so event construction
    stays out of the release→signal handoff window.
    """
    now = clock()
    ch = _chan(counter)
    series = ch[2]
    if series is not None:
        series.releases += len(released)
    emit = _emit
    ident = _get_ident() if emit is not None else 0
    ctx = getattr(_wire_local, "ctx", None) if emit is not None else None
    corr = None if ctx is None else ctx.corr
    for node in released:
        node.released_ts = now
        if emit is not None:
            emit((now, "release", ch[1], ident,
                  node.level, value, node.count, None,
                  None, None, next_seq(), node.token, cause_seq,
                  None, None, corr))


def on_release_stamp(released: list) -> tuple:
    """Pre-signal half of a threaded release: stamp, don't construct.

    Runs between the increment's critical section and the coalesced
    signal pass.  Deliberately minimal — one ``clock()`` read, the
    per-node ``released_ts`` stores, and (when tracing) seq
    pre-allocation plus a small capture of each node's payload — because
    everything here sits inside the release→signal handoff window the
    ping-pong benchmark measures.  The increment/release *events* are
    constructed by :func:`on_increment_released` after the signals are
    out.  Pre-allocating the seqs here keeps causal order sound:
    ``increment.seq < release.seq < unpark.seq`` even though the woken
    thread may physically append its ``unpark`` first.

    Node payloads (``count`` especially) are captured now because woken
    waiters start decrementing ``count`` the moment they are signaled.
    """
    now = clock()
    if _emit is None:
        for node in released:
            node.released_ts = now
        return (now, None, len(released))
    inc_seq = next_seq()
    # Published before the signal pass so a subscription callback fired
    # by node.signal() (the service's push) can already name the
    # increment it is reacting to — via the wire context when a frame is
    # being dispatched, via last_increment_seq() for local increments.
    _wire_local.last_inc_seq = inc_seq
    ctx = getattr(_wire_local, "ctx", None)
    if ctx is not None:
        ctx.inc_seq = inc_seq
    if len(released) == 1:
        # The ping-pong-shaped common case: one node, no list growth.
        node = released[0]
        node.released_ts = now
        return (now, inc_seq, ((next_seq(), node.token, node.level, node.count),))
    captured = []
    for node in released:
        node.released_ts = now
        captured.append((next_seq(), node.token, node.level, node.count))
    return (now, inc_seq, captured)


def on_increment_released(counter: object, amount: int, value: int, ctx: tuple) -> None:
    """Post-signal half: construct and append the deferred events.

    ``ctx`` is :func:`on_release_stamp`'s return.  Metrics tallies land
    here too — nothing in this function delays a wakeup.
    """
    now, inc_seq, captured = ctx
    ch = _chan(counter)
    series = ch[2]
    if series is not None:
        series.increments += 1
        series.releases += captured if type(captured) is int else len(captured)
    emit = _emit
    if emit is not None and inc_seq is not None:
        src = ch[1]
        ident = _get_ident()
        ctx = getattr(_wire_local, "ctx", None)
        corr = None if ctx is None else ctx.corr
        emit((now, "increment", src, ident,
              None, value, None, amount,
              None, None, inc_seq, None, None, None, None, corr))
        for seq, token, lvl, cnt in captured:
            emit((now, "release", src, ident,
                  lvl, value, cnt, None,
                  None, None, seq, token, inc_seq, None, None, corr))


def on_sub_fire(counter: object, level: int, count: int, token: int | None = None) -> None:
    """A released level's subscription callbacks are about to run."""
    emit = _emit
    if emit is not None:
        ctx = getattr(_wire_local, "ctx", None)
        emit((clock(), "sub_fire", label(counter), _get_ident(),
              level, None, count, None,
              None, None, next_seq(), token, None,
              None, None, None if ctx is None else ctx.corr))


# -------------------------------------------------------------------- check

def on_park(
    counter: object, level: int, value: int, live_levels: int, live_waiters: int,
    token: int | None = None,
) -> float:
    """A check registered its wait node and is about to suspend.

    Returns the timestamp it stamped on the event so the caller can
    reuse it as the park time for the ``wait_s`` measurement — one
    ``clock()`` read per park, not two.
    """
    now = clock()
    ch = _chan(counter)
    series = ch[2]
    if series is not None:
        series.parks += 1
        # note_levels, inlined (racy high-water updates; see metrics.py).
        if live_levels > series.live_levels_hw:
            series.live_levels_hw = live_levels
        if live_waiters > series.live_waiters_hw:
            series.live_waiters_hw = live_waiters
    emit = _emit
    if emit is not None:
        emit((now, "park", ch[1], _get_ident(),
              level, value, live_waiters, None,
              None, None, next_seq(), token, None, None, None, None))
    return now


def on_unpark(
    counter: object, level: int, wait_s: float | None, wakeup_s: float | None,
    token: int | None = None, ts: float | None = None,
) -> None:
    """A suspended check resumed (normal wakeup or adjudicated success).

    ``wait_s`` is park-to-unpark (None when obs was enabled mid-wait);
    ``wakeup_s`` is release-to-unpark (None when the releasing increment
    predates enablement, or on the adjudicated path where the release
    timestamp may not have been stamped yet).  ``ts`` lets a caller that
    already read the clock (to compute those latencies) stamp the event
    without a second read.
    """
    ch = _chan(counter)
    if ch[2] is not None:
        ch[2].unparks += 1
        if wait_s is not None:
            ch[3](wait_s)
        if wakeup_s is not None and wakeup_s >= 0.0:
            ch[4](wakeup_s)
    emit = _emit
    if emit is not None:
        emit((ts if ts is not None else clock(), "unpark",
              ch[1], _get_ident(),
              level, None, None, None,
              wait_s, wakeup_s, next_seq(), token, None, None, None, None))


def on_wake(counter: object, node: object, level: int,
            t_parked: float | None) -> None:
    """A suspended counter check resumed: the fused unpark emission.

    Semantically ``on_unpark`` with the latency math pulled in — the
    caller passes its wait node and park timestamp and this one call
    reads the clock, derives ``wait_s``/``wakeup_s`` (``None`` when obs
    was enabled mid-wait / mid-release), and emits.  Exists because the
    unpark site sits on the serial wakeup path the handoff bench
    measures; keep the body in lockstep with :func:`on_unpark`.
    """
    now = clock()
    wait_s = None if t_parked is None else now - t_parked
    released_ts = node.released_ts
    wakeup_s = None if released_ts is None else now - released_ts
    ch = _chan(counter)
    if ch[2] is not None:
        ch[2].unparks += 1
        if wait_s is not None:
            ch[3](wait_s)
        if wakeup_s is not None and wakeup_s >= 0.0:
            ch[4](wakeup_s)
    emit = _emit
    if emit is not None:
        emit((now, "unpark", ch[1], _get_ident(),
              level, None, None, None,
              wait_s, wakeup_s, next_seq(), node.token, None,
              None, None, None))


def on_spin_exhausted(counter: object, level: int, budget: int) -> None:
    """The spin phase burned ``budget`` re-reads and fell through to park."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).spin_exhausted.observe(float(budget))
    emit = _emit
    if emit is not None:
        emit((clock(), "spin_exhausted", src, _get_ident(),
              level, None, budget, None,
              None, None, next_seq(), None, None, None, None, None))


def on_timeout(
    counter: object, level: int, value: int, waited_s: float | None,
    token: int | None = None,
) -> None:
    """A check's wait genuinely expired (adjudicated under the counter lock)."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.timeouts += 1
        if waited_s is not None:
            series.wait_latency.observe(waited_s)
    emit = _emit
    if emit is not None:
        emit((clock(), "timeout", src, _get_ident(),
              level, value, None, None,
              waited_s, None, next_seq(), token, None, None, None, None))


# ------------------------------------------------------------------ sharded

def on_flush(counter: object, amount: int) -> None:
    """A shard published its pending batch into the central counter."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).flushes += 1
    emit = _emit
    if emit is not None:
        emit((clock(), "flush", src, _get_ident(),
              None, None, None, amount,
              None, None, next_seq(), None, None, None, None, None))


def on_drain(counter: object, amount: int) -> None:
    """A reconciling sweep published ``amount`` of pending tallies."""
    emit = _emit
    if emit is not None:
        emit((clock(), "drain", label(counter), _get_ident(),
              None, None, None, amount,
              None, None, next_seq(), None, None, None, None, None))


# ---------------------------------------------------------------- multiwait
#
# mw_* events carry the MultiWait's own token (one per instance), tying a
# park to its wake/timeout; the node-token → increment correlation for a
# MultiWait wake runs through the sub_fire events its subscriptions emit.

def on_mw_park(mw: object, conditions: int, satisfied: int,
               token: int | None = None) -> None:
    emit = _emit
    if emit is not None:
        emit((clock(), "mw_park", label(mw), _get_ident(),
              None, satisfied, conditions, None,
              None, None, next_seq(), token, None, None, None, None))


def on_mw_wake(mw: object, satisfied: int, wait_s: float | None,
               token: int | None = None) -> None:
    emit = _emit
    if emit is not None:
        emit((clock(), "mw_wake", label(mw), _get_ident(),
              None, satisfied, None, None,
              wait_s, None, next_seq(), token, None, None, None, None))


def on_mw_timeout(mw: object, conditions: int, satisfied: int,
                  token: int | None = None) -> None:
    emit = _emit
    if emit is not None:
        emit((clock(), "mw_timeout", label(mw), _get_ident(),
              None, satisfied, conditions, None,
              None, None, next_seq(), token, None, None, None, None))


# ----------------------------------------------------------------- watchdog

def on_stall(source: str, level: int, waiters: int, value: int, stalled_s: float) -> None:
    """The stall watchdog flagged a check blocked beyond its threshold."""
    emit = _emit
    if emit is not None:
        emit((clock(), "stall", source, _get_ident(),
              level, value, waiters, None,
              stalled_s, None, next_seq(), None, None, None, None, None))


# --------------------------------------------------------------------- dist
#
# One generic emit site for the cross-process fabric (frame_send /
# frame_recv / batch_flush / push_deliver / bell_ring / bell_wake /
# gossip_round / slot_claim).  The dist paths are network- or
# poll-bound, so a single keyword-argument hook is the right trade:
# clarity over the last nanosecond.  The zero-cost-when-off contract
# still holds — every call site is guarded by ``if _obs.enabled`` and
# none sits on the lock-free shm scan.

def on_dist(
    source: object,
    kind: str,
    *,
    op: str | None = None,
    corr: str | None = None,
    level: int | None = None,
    value: int | None = None,
    count: int | None = None,
    amount: int | None = None,
    wait_s: float | None = None,
    token: int | None = None,
    cause_seq: int | None = None,
) -> int | None:
    """Emit one dist-fabric event; returns its ``seq`` when tracing is on.

    ``source`` may be a primitive (labelled via the registry) or an
    already-resolved label string.
    """
    emit = _emit
    if emit is None:
        return None
    seq = next_seq()
    emit((clock(), kind, source if type(source) is str else label(source),
          _get_ident(),
          level, value, count, amount,
          wait_s, None, seq, token, cause_seq, None, op, corr))
    return seq
