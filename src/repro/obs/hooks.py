"""The zero-cost-when-off observability seam.

This module is the production twin of :mod:`repro.core.syncpoints` and
reuses its trick verbatim: every instrumented site in the counter code
compiles to

.. code-block:: python

    if _obs.enabled:
        _obs.on_park(self, level, value, live_levels, live_waiters)

so the disabled cost is one module-attribute read and an untaken branch
— and, exactly as with the sync points, **no site lies on the lock-free
fast paths** (`MonotonicCounter.check`'s immediate return, the sharded
counter's published-value return, the spin loop's inner iterations): an
already-satisfied ``check`` never touches this module at all, so its
cost is unchanged *by construction*, enabled or not.  The quick bench's
``obs_overhead`` series records the measurement.

``enabled`` is flipped only by :func:`repro.obs.enable` /
:func:`repro.obs.disable`, which install the active
:class:`~repro.obs.events.TraceBuffer` and
:class:`~repro.obs.metrics.MetricsRegistry` here.  The ``on_*``
functions below are the only writers; each snapshots the tracer/metrics
reference before use so a concurrent ``disable`` can never produce a
``None`` call — late emissions from threads mid-operation simply fall
through.

Emission sites are chosen to run **outside** the primitives' locks
wherever the protocol allows (the coalesced release pass, the unpark
path); the exceptions — :class:`~repro.core.counter.BroadcastCounter`'s
park and the MultiWait timeout — are noted at the call sites.  Sink
callbacks therefore must be quick, must not raise, and must never call
back into the primitives being traced.
"""

from __future__ import annotations

import threading
import time

from repro.obs.events import Event, TraceBuffer, next_seq
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry import label

__all__ = ["enabled", "clock"]

#: Read by every instrumented site; True only while obs is enabled.
enabled = False

#: The timestamp source for every event and latency measurement.
clock = time.monotonic

_trace: TraceBuffer | None = None
_metrics: MetricsRegistry | None = None

_get_ident = threading.get_ident


def _emit(event: Event) -> None:
    trace = _trace
    if trace is not None:
        trace.append(event)


# --------------------------------------------------------------- increment

def on_increment(counter: object, amount: int, value: int) -> int | None:
    """An increment's critical section completed (emitted outside the lock).

    Returns the increment event's ``seq`` when tracing is on (the caller
    threads it into the ``cause_seq`` of the releases this increment
    performs), else ``None``.
    """
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).increments += 1
    trace = _trace
    if trace is not None:
        seq = next_seq()
        trace.append(Event(clock(), "increment", src, _get_ident(),
                           amount=amount, value=value, seq=seq))
        return seq
    return None


def on_release(
    counter: object, value: int, released: list, cause_seq: int | None = None
) -> None:
    """Satisfied nodes were unlinked; stamps each node's release time.

    Runs after the increment's critical section, before the coalesced
    signal pass, so the release timestamp brackets the whole wakeup path
    the ``wakeup_latency`` histogram measures.  Used by the asyncio
    counter, whose signal pass is a synchronous ``Event.set`` loop; the
    threaded counter uses the split :func:`on_release_stamp` /
    :func:`on_increment_released` pair instead so event construction
    stays out of the release→signal handoff window.
    """
    now = clock()
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).releases += len(released)
    trace = _trace
    for node in released:
        node.released_ts = now
        if trace is not None:
            trace.append(
                Event(now, "release", src, _get_ident(), level=node.level,
                      value=value, count=node.count, seq=next_seq(),
                      token=node.token, cause_seq=cause_seq)
            )


def on_release_stamp(released: list) -> tuple:
    """Pre-signal half of a threaded release: stamp, don't construct.

    Runs between the increment's critical section and the coalesced
    signal pass.  Deliberately minimal — one ``clock()`` read, the
    per-node ``released_ts`` stores, and (when tracing) seq
    pre-allocation plus a small capture of each node's payload — because
    everything here sits inside the release→signal handoff window the
    ping-pong benchmark measures.  The increment/release *events* are
    constructed by :func:`on_increment_released` after the signals are
    out.  Pre-allocating the seqs here keeps causal order sound:
    ``increment.seq < release.seq < unpark.seq`` even though the woken
    thread may physically append its ``unpark`` first.

    Node payloads (``count`` especially) are captured now because woken
    waiters start decrementing ``count`` the moment they are signaled.
    """
    now = clock()
    if _trace is None:
        for node in released:
            node.released_ts = now
        return (now, None, len(released))
    inc_seq = next_seq()
    captured = []
    for node in released:
        node.released_ts = now
        captured.append((next_seq(), node.token, node.level, node.count))
    return (now, inc_seq, captured)


def on_increment_released(counter: object, amount: int, value: int, ctx: tuple) -> None:
    """Post-signal half: construct and append the deferred events.

    ``ctx`` is :func:`on_release_stamp`'s return.  Metrics tallies land
    here too — nothing in this function delays a wakeup.
    """
    now, inc_seq, captured = ctx
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.increments += 1
        series.releases += captured if type(captured) is int else len(captured)
    trace = _trace
    if trace is not None and inc_seq is not None:
        ident = _get_ident()
        trace.append(Event(now, "increment", src, ident,
                           amount=amount, value=value, seq=inc_seq))
        for seq, token, lvl, cnt in captured:
            trace.append(Event(now, "release", src, ident, level=lvl, value=value,
                               count=cnt, seq=seq, token=token, cause_seq=inc_seq))


def on_sub_fire(counter: object, level: int, count: int, token: int | None = None) -> None:
    """A released level's subscription callbacks are about to run."""
    if _trace is not None:
        _emit(Event(clock(), "sub_fire", label(counter), _get_ident(),
                    level=level, count=count, seq=next_seq(), token=token))


# -------------------------------------------------------------------- check

def on_park(
    counter: object, level: int, value: int, live_levels: int, live_waiters: int,
    token: int | None = None,
) -> float:
    """A check registered its wait node and is about to suspend.

    Returns the timestamp it stamped on the event so the caller can
    reuse it as the park time for the ``wait_s`` measurement — one
    ``clock()`` read per park, not two.
    """
    now = clock()
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.parks += 1
        series.note_levels(live_levels, live_waiters)
    if _trace is not None:
        _emit(Event(now, "park", src, _get_ident(), level=level, value=value,
                    count=live_waiters, seq=next_seq(), token=token))
    return now


def on_unpark(
    counter: object, level: int, wait_s: float | None, wakeup_s: float | None,
    token: int | None = None, ts: float | None = None,
) -> None:
    """A suspended check resumed (normal wakeup or adjudicated success).

    ``wait_s`` is park-to-unpark (None when obs was enabled mid-wait);
    ``wakeup_s`` is release-to-unpark (None when the releasing increment
    predates enablement, or on the adjudicated path where the release
    timestamp may not have been stamped yet).  ``ts`` lets a caller that
    already read the clock (to compute those latencies) stamp the event
    without a second read.
    """
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.unparks += 1
        if wait_s is not None:
            series.wait_latency.observe(wait_s)
        if wakeup_s is not None and wakeup_s >= 0.0:
            series.wakeup_latency.observe(wakeup_s)
    if _trace is not None:
        _emit(Event(ts if ts is not None else clock(), "unpark", src, _get_ident(),
                    level=level, wait_s=wait_s, wakeup_s=wakeup_s,
                    seq=next_seq(), token=token))


def on_spin_exhausted(counter: object, level: int, budget: int) -> None:
    """The spin phase burned ``budget`` re-reads and fell through to park."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).spin_exhausted.observe(float(budget))
    if _trace is not None:
        _emit(Event(clock(), "spin_exhausted", src, _get_ident(), level=level,
                    count=budget, seq=next_seq()))


def on_timeout(
    counter: object, level: int, value: int, waited_s: float | None,
    token: int | None = None,
) -> None:
    """A check's wait genuinely expired (adjudicated under the counter lock)."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.timeouts += 1
        if waited_s is not None:
            series.wait_latency.observe(waited_s)
    if _trace is not None:
        _emit(Event(clock(), "timeout", src, _get_ident(), level=level, value=value,
                    wait_s=waited_s, seq=next_seq(), token=token))


# ------------------------------------------------------------------ sharded

def on_flush(counter: object, amount: int) -> None:
    """A shard published its pending batch into the central counter."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).flushes += 1
    if _trace is not None:
        _emit(Event(clock(), "flush", src, _get_ident(), amount=amount, seq=next_seq()))


def on_drain(counter: object, amount: int) -> None:
    """A reconciling sweep published ``amount`` of pending tallies."""
    if _trace is not None:
        _emit(Event(clock(), "drain", label(counter), _get_ident(), amount=amount,
                    seq=next_seq()))


# ---------------------------------------------------------------- multiwait
#
# mw_* events carry the MultiWait's own token (one per instance), tying a
# park to its wake/timeout; the node-token → increment correlation for a
# MultiWait wake runs through the sub_fire events its subscriptions emit.

def on_mw_park(mw: object, conditions: int, satisfied: int,
               token: int | None = None) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_park", label(mw), _get_ident(), count=conditions,
                    value=satisfied, seq=next_seq(), token=token))


def on_mw_wake(mw: object, satisfied: int, wait_s: float | None,
               token: int | None = None) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_wake", label(mw), _get_ident(), value=satisfied,
                    wait_s=wait_s, seq=next_seq(), token=token))


def on_mw_timeout(mw: object, conditions: int, satisfied: int,
                  token: int | None = None) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_timeout", label(mw), _get_ident(), count=conditions,
                    value=satisfied, seq=next_seq(), token=token))


# ----------------------------------------------------------------- watchdog

def on_stall(source: str, level: int, waiters: int, value: int, stalled_s: float) -> None:
    """The stall watchdog flagged a check blocked beyond its threshold."""
    if _trace is not None:
        _emit(Event(clock(), "stall", source, _get_ident(), level=level,
                    count=waiters, value=value, wait_s=stalled_s, seq=next_seq()))
