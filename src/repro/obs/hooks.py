"""The zero-cost-when-off observability seam.

This module is the production twin of :mod:`repro.core.syncpoints` and
reuses its trick verbatim: every instrumented site in the counter code
compiles to

.. code-block:: python

    if _obs.enabled:
        _obs.on_park(self, level, value, live_levels, live_waiters)

so the disabled cost is one module-attribute read and an untaken branch
— and, exactly as with the sync points, **no site lies on the lock-free
fast paths** (`MonotonicCounter.check`'s immediate return, the sharded
counter's published-value return, the spin loop's inner iterations): an
already-satisfied ``check`` never touches this module at all, so its
cost is unchanged *by construction*, enabled or not.  The quick bench's
``obs_overhead`` series records the measurement.

``enabled`` is flipped only by :func:`repro.obs.enable` /
:func:`repro.obs.disable`, which install the active
:class:`~repro.obs.events.TraceBuffer` and
:class:`~repro.obs.metrics.MetricsRegistry` here.  The ``on_*``
functions below are the only writers; each snapshots the tracer/metrics
reference before use so a concurrent ``disable`` can never produce a
``None`` call — late emissions from threads mid-operation simply fall
through.

Emission sites are chosen to run **outside** the primitives' locks
wherever the protocol allows (the coalesced release pass, the unpark
path); the exceptions — :class:`~repro.core.counter.BroadcastCounter`'s
park and the MultiWait timeout — are noted at the call sites.  Sink
callbacks therefore must be quick, must not raise, and must never call
back into the primitives being traced.
"""

from __future__ import annotations

import threading
import time

from repro.obs.events import Event, TraceBuffer
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry import label

__all__ = ["enabled", "clock"]

#: Read by every instrumented site; True only while obs is enabled.
enabled = False

#: The timestamp source for every event and latency measurement.
clock = time.monotonic

_trace: TraceBuffer | None = None
_metrics: MetricsRegistry | None = None

_get_ident = threading.get_ident


def _emit(event: Event) -> None:
    trace = _trace
    if trace is not None:
        trace.append(event)


# --------------------------------------------------------------- increment

def on_increment(counter: object, amount: int, value: int) -> None:
    """An increment's critical section completed (emitted outside the lock)."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).increments += 1
    if _trace is not None:
        _emit(Event(clock(), "increment", src, _get_ident(), amount=amount, value=value))


def on_release(counter: object, value: int, released: list) -> None:
    """Satisfied nodes were unlinked; stamps each node's release time.

    Runs after the increment's critical section, before the coalesced
    signal pass, so the release timestamp brackets the whole wakeup path
    the ``wakeup_latency`` histogram measures.
    """
    now = clock()
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).releases += len(released)
    trace = _trace
    for node in released:
        node.released_ts = now
        if trace is not None:
            trace.append(
                Event(now, "release", src, _get_ident(), level=node.level,
                      value=value, count=node.count)
            )


def on_sub_fire(counter: object, level: int, count: int) -> None:
    """A released level's subscription callbacks are about to run."""
    if _trace is not None:
        _emit(Event(clock(), "sub_fire", label(counter), _get_ident(),
                    level=level, count=count))


# -------------------------------------------------------------------- check

def on_park(
    counter: object, level: int, value: int, live_levels: int, live_waiters: int
) -> None:
    """A check registered its wait node and is about to suspend."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.parks += 1
        series.note_levels(live_levels, live_waiters)
    if _trace is not None:
        _emit(Event(clock(), "park", src, _get_ident(), level=level, value=value,
                    count=live_waiters))


def on_unpark(
    counter: object, level: int, wait_s: float | None, wakeup_s: float | None
) -> None:
    """A suspended check resumed (normal wakeup or adjudicated success).

    ``wait_s`` is park-to-unpark (None when obs was enabled mid-wait);
    ``wakeup_s`` is release-to-unpark (None when the releasing increment
    predates enablement, or on the adjudicated path where the release
    timestamp may not have been stamped yet).
    """
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.unparks += 1
        if wait_s is not None:
            series.wait_latency.observe(wait_s)
        if wakeup_s is not None and wakeup_s >= 0.0:
            series.wakeup_latency.observe(wakeup_s)
    if _trace is not None:
        _emit(Event(clock(), "unpark", src, _get_ident(), level=level,
                    wait_s=wait_s, wakeup_s=wakeup_s))


def on_spin_exhausted(counter: object, level: int, budget: int) -> None:
    """The spin phase burned ``budget`` re-reads and fell through to park."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).spin_exhausted.observe(float(budget))
    if _trace is not None:
        _emit(Event(clock(), "spin_exhausted", src, _get_ident(), level=level,
                    count=budget))


def on_timeout(counter: object, level: int, value: int, waited_s: float | None) -> None:
    """A check's wait genuinely expired (adjudicated under the counter lock)."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        series = metrics.series(src)
        series.timeouts += 1
        if waited_s is not None:
            series.wait_latency.observe(waited_s)
    if _trace is not None:
        _emit(Event(clock(), "timeout", src, _get_ident(), level=level, value=value,
                    wait_s=waited_s))


# ------------------------------------------------------------------ sharded

def on_flush(counter: object, amount: int) -> None:
    """A shard published its pending batch into the central counter."""
    src = label(counter)
    metrics = _metrics
    if metrics is not None:
        metrics.series(src).flushes += 1
    if _trace is not None:
        _emit(Event(clock(), "flush", src, _get_ident(), amount=amount))


def on_drain(counter: object, amount: int) -> None:
    """A reconciling sweep published ``amount`` of pending tallies."""
    if _trace is not None:
        _emit(Event(clock(), "drain", label(counter), _get_ident(), amount=amount))


# ---------------------------------------------------------------- multiwait

def on_mw_park(mw: object, conditions: int, satisfied: int) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_park", label(mw), _get_ident(), count=conditions,
                    value=satisfied))


def on_mw_wake(mw: object, satisfied: int, wait_s: float | None) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_wake", label(mw), _get_ident(), value=satisfied,
                    wait_s=wait_s))


def on_mw_timeout(mw: object, conditions: int, satisfied: int) -> None:
    if _trace is not None:
        _emit(Event(clock(), "mw_timeout", label(mw), _get_ident(), count=conditions,
                    value=satisfied))


# ----------------------------------------------------------------- watchdog

def on_stall(source: str, level: int, waiters: int, value: int, stalled_s: float) -> None:
    """The stall watchdog flagged a check blocked beyond its threshold."""
    if _trace is not None:
        _emit(Event(clock(), "stall", source, _get_ident(), level=level,
                    count=waiters, value=value, wait_s=stalled_s))
