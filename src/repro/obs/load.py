"""Open-loop load generation with coordinated-omission-safe recording.

The measurement half of the tail-attribution pipeline: drive a target
(normally a :class:`repro.apps.ratelimit.RateLimiter`) with a seeded
Poisson arrival process and record per-request latency **from the
intended send time**, not from when the generator got around to
sending.  The distinction is the whole point:

* **open loop** (the default) — arrivals come from a schedule fixed
  before the run (:func:`arrival_schedule`); a slow response does not
  delay the requests behind it, it *queues* them, and their latency
  includes the queueing.  This is how real traffic behaves and the only
  mode whose p99 means anything under saturation.
* **closed loop** — each worker issues its next request only after the
  previous one returns (``intended == start``).  Kept for contrast: a
  closed-loop generator *coordinates* with the system under test and
  silently omits exactly the latencies a stall produces, which is the
  classic coordinated-omission mistake.

Every request draws a schema-v3 ``corr`` token and emits ``req_start``
(``wait_s`` = queue delay) and ``req_done`` (``wait_s`` = total latency
from intended time, ``value`` = admitted) when tracing is enabled — the
token also rides the limiter's counter traffic (increment riders, sub
frames), so a tail request's whole causal story is recoverable from the
merged trace (:mod:`repro.obs.slo`).  With observability disabled the
generator stamps no tokens and emits nothing.

Determinism: the schedule is a pure function of ``(rate, count or
duration, seed)`` — :func:`schedule_digest` hashes the packed doubles,
and the testsuite replays 20 runs byte-identical.  Execution timing is
of course not deterministic; the *offered load* is.
"""

from __future__ import annotations

import hashlib
import math
import queue
import random
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.obs import hooks as _obs

__all__ = [
    "arrival_schedule",
    "schedule_digest",
    "RequestRecord",
    "LoadResult",
    "run_load",
]


def arrival_schedule(rate: float, *, count: int | None = None,
                     duration: float | None = None,
                     seed: int = 0) -> list[float]:
    """Poisson arrival offsets (seconds from run start), seeded.

    Inter-arrival gaps are ``Random(seed).expovariate(rate)``; pass
    ``count`` for exactly that many arrivals or ``duration`` to stop at
    the first arrival past it (exactly one of the two).  The same
    arguments always produce the same floats — the determinism the
    replay test pins.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if (count is None) == (duration is None):
        raise ValueError("exactly one of count/duration is required")
    rng = random.Random(seed)
    offsets: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if duration is not None and t >= duration:
            break
        offsets.append(t)
        if count is not None and len(offsets) >= count:
            break
    return offsets


def schedule_digest(offsets: Sequence[float]) -> str:
    """SHA-256 over the schedule's IEEE-754 bytes: byte-identity check."""
    return hashlib.sha256(
        struct.pack(f"<{len(offsets)}d", *offsets)
    ).hexdigest()


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One request's timing, stamped from intended send time."""

    index: int                #: position in the arrival schedule
    key: str                  #: the quota key this request hit
    corr: str | None          #: its schema-v3 token (None with obs off)
    intended: float           #: when the schedule said to send
    start: float              #: when a worker actually began
    end: float                #: when the target returned
    ok: bool                  #: admitted (False: rejected or timed out)

    @property
    def latency(self) -> float:
        """End-to-end latency from *intended* time (CO-safe)."""
        return self.end - self.intended

    @property
    def queue_s(self) -> float:
        """Generator-side queue delay (intended → actually started)."""
        return self.start - self.intended

    @property
    def service_s(self) -> float:
        """Time inside the target (started → returned)."""
        return self.end - self.start


@dataclass(slots=True)
class LoadResult:
    """A finished run: every record plus the derived rates/percentiles."""

    mode: str
    rate: float               #: offered rate (arrivals/s of the schedule)
    seed: int
    digest: str               #: the schedule's :func:`schedule_digest`
    t0: float                 #: run start (target clock)
    t_end: float              #: last request completion
    records: list[RequestRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(self.t_end - self.t0, 0.0)

    @property
    def achieved_rate(self) -> float:
        """Completions per second — diverges from offered at the knee."""
        return len(self.records) / self.duration if self.duration else 0.0

    @property
    def admit_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.ok) / len(self.records)

    def latencies(self) -> list[float]:
        return sorted(r.latency for r in self.records)

    def percentile(self, q: float) -> float:
        """Exact order-statistic percentile over recorded latencies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        lats = self.latencies()
        if not lats:
            return 0.0
        return lats[min(len(lats) - 1, max(0, math.ceil(q * len(lats)) - 1))]

    def worst(self, k: int = 3) -> list[RequestRecord]:
        """The ``k`` slowest requests — the tail exemplar candidates."""
        return sorted(self.records, key=lambda r: r.latency, reverse=True)[:k]

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "offered_rate": self.rate,
            "achieved_rate": round(self.achieved_rate, 3),
            "requests": len(self.records),
            "admit_rate": round(self.admit_rate, 4),
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "seed": self.seed,
            "digest": self.digest,
        }


def run_load(limiter, *, rate: float, count: int | None = None,
             duration: float | None = None, seed: int = 0,
             keys: Sequence[str] = ("user0",), mode: str = "open",
             workers: int = 4, timeout: float | None = None,
             observers: Iterable[Callable[[RequestRecord], None]] = (),
             clock: Callable[[], float] = time.monotonic,
             label: str = "load") -> LoadResult:
    """Drive ``limiter.acquire`` with a seeded schedule; return the run.

    ``limiter`` needs ``acquire(key, timeout=..., corr=...) -> bool`` —
    the rate limiter's blocking surface.  Keys round-robin over
    ``keys``.  ``observers`` are called with each finished
    :class:`RequestRecord` from the worker threads (the live feed an
    :class:`~repro.obs.slo.SloTracker` consumes); they must be cheap
    and must not raise.

    Open loop: a dispatcher thread releases work at the scheduled
    instants (never skipping — when behind, requests queue and their
    queue delay is part of their latency) while ``workers`` threads
    execute.  Closed loop: the same workers simply take the next
    request as soon as they are free, ``intended == start``.
    """
    if mode not in ("open", "closed"):
        raise ValueError(f"mode must be 'open' or 'closed', got {mode!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    if not keys:
        raise ValueError("at least one key is required")
    offsets = arrival_schedule(rate, count=count, duration=duration, seed=seed)
    digest = schedule_digest(offsets)
    observers = tuple(observers)
    records: list[RequestRecord | None] = [None] * len(offsets)
    work: queue.Queue = queue.Queue()
    t0 = clock()

    def execute(index: int, key: str, intended: float) -> None:
        obs_on = _obs.enabled
        corr = _obs.next_corr() if obs_on else None
        start = clock()
        if obs_on:
            _obs.on_dist(label, "req_start", corr=corr,
                         wait_s=start - intended)
        ok = limiter.acquire(key, timeout=timeout, corr=corr)
        end = clock()
        if obs_on and _obs.enabled:
            _obs.on_dist(label, "req_done", corr=corr, wait_s=end - intended,
                         value=1 if ok else 0)
        record = RequestRecord(index=index, key=key, corr=corr,
                               intended=intended, start=start, end=end, ok=ok)
        records[index] = record
        for observer in observers:
            try:
                observer(record)
            except Exception:
                pass  # an observer must never kill a worker

    def worker() -> None:
        while True:
            item = work.get()
            if item is None:
                return
            index, key, intended = item
            if intended is None:  # closed loop stamps at execution
                intended = clock()
            execute(index, key, intended)

    pool = [
        threading.Thread(target=worker, name=f"repro-load-{i}", daemon=True)
        for i in range(workers)
    ]
    for thread in pool:
        thread.start()
    if mode == "open":
        for index, offset in enumerate(offsets):
            target = t0 + offset
            delay = target - clock()
            if delay > 0:
                time.sleep(delay)
            work.put((index, keys[index % len(keys)], target))
    else:
        for index in range(len(offsets)):
            work.put((index, keys[index % len(keys)], None))
    for _ in pool:
        work.put(None)
    for thread in pool:
        thread.join()
    done = [r for r in records if r is not None]
    t_end = max((r.end for r in done), default=t0)
    return LoadResult(mode=mode, rate=rate, seed=seed, digest=digest,
                      t0=t0, t_end=t_end, records=done)
