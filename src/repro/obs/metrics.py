"""Per-counter latency/shape metrics with a Prometheus-able export.

The §4/§5 performance-shape claims are about *where threads wait and for
how long*; these metrics quantify exactly that on a live system:

* ``wait_latency`` — park to unpark, per suspended ``check`` (how long
  waits actually are);
* ``wakeup_latency`` — release decision to unpark (the wakeup path PR-2
  optimized, measured end to end in production rather than only on the
  bench);
* ``spin_exhausted`` — spin budgets that were burned without satisfying
  the level (how often the spin phase pays for nothing);
* ``live_levels`` / ``live_waiters`` high-water marks — the L of the
  paper's O(L) bounds, observed rather than asserted.

Histograms are exponential-bucket and **lock-free-ish**: ``observe``
stages the raw sample in a bounded deque (one C ``append``, the
cheapest thing the hot path can do) and the bucket/count/sum rollup
happens lazily when a reader looks — so concurrent observations can
occasionally lose a race and undercount, the same documented trade the
fast path's ``immediate_checks`` tally makes, and a reader that never
scrapes loses the oldest staged samples once the staging deque wraps
(64Ki per histogram — scrape more often than that per series for exact
tallies).  Observability must never serialize the paths it observes;
bounds, not bookkeeping, are exact.

The registry also *unifies* the older opt-in
:class:`repro.core.stats.CounterStats` tallies: a metrics snapshot (and
the Prometheus text export) folds in the stats of every live registered
counter that carries them, so there is one export surface for both
generations of bookkeeping.  ``stats=False`` counters keep their
``NOOP_STATS`` null object and contribute nothing, exactly as before.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque

__all__ = [
    "Histogram",
    "HistogramMark",
    "CounterMetrics",
    "MetricsRegistry",
    "LATENCY_BOUNDS",
    "SPIN_BOUNDS",
    "quantile_from_buckets",
]

#: Exponential latency buckets: 1µs .. ~8s, doubling.  The +Inf bucket is
#: implicit (the final slot of ``Histogram.buckets``).
LATENCY_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**k for k in range(24))

#: Spin-iteration buckets: 1 .. 2**20, doubling.
SPIN_BOUNDS: tuple[float, ...] = tuple(float(1 << k) for k in range(21))


def quantile_from_buckets(
    bounds: tuple[float, ...], buckets, count: int, q: float
) -> float:
    """Approximate quantile over a raw bucket vector (upper bucket bound).

    The shared implementation behind :meth:`Histogram.quantile` and the
    interval-delta :meth:`HistogramMark.quantile`: ``buckets[i]`` counts
    observations ``<= bounds[i]``, the final slot is +Inf.  Returns 0.0
    for an empty vector.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if count <= 0:
        return 0.0
    rank = q * count
    seen = 0
    for i, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            return bounds[i] if i < len(bounds) else float("inf")
    return float("inf")


class HistogramMark:
    """A frozen bucket/count/sum triple: a cursor into a histogram.

    Produced by :meth:`Histogram.mark` (a cumulative cursor) and by
    :meth:`Histogram.since` / :meth:`MetricsRegistry.delta_since` (the
    interval accumulated after a cursor).  Interval marks carry the
    bounds so windowed quantiles read exactly like cumulative ones.
    """

    __slots__ = ("count", "sum", "buckets", "bounds")

    def __init__(self, *, count: int, sum: float, buckets: tuple,
                 bounds: tuple[float, ...] = ()) -> None:
        self.count = count
        self.sum = sum
        self.buckets = buckets
        self.bounds = bounds

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(self.bounds, self.buckets, self.count, q)

    def snapshot(self) -> dict:
        """Same shape as :meth:`Histogram.snapshot`, for the interval."""
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                **{str(b): n for b, n in zip(self.bounds, self.buckets)},
                "+Inf": self.buckets[-1] if self.buckets else 0,
            },
        }


class Histogram:
    """Fixed-bound histogram with racy (lock-free) observation.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final slot
    counts the overflow (+Inf bucket).  Observation is **write-cheap,
    read-deferred**: ``observe`` stages the raw sample in a bounded
    deque and the bucketization (one ``bisect`` plus the count/sum
    bumps per sample) runs when ``buckets``/``count``/``sum`` is next
    read — off the wait paths being measured.  The obs hooks' hottest
    sites bypass ``observe`` and append to the staging deque's bound C
    ``append`` directly (cached in their emission channel), so keep the
    staging contract in mind when refactoring.  Cumulative counts — the
    Prometheus ``le`` convention — are computed at export time.
    """

    #: Staging capacity per histogram; oldest samples drop if a reader
    #: never drains (see the module docstring).
    STAGING = 65536

    __slots__ = ("bounds", "_buckets", "_count", "_sum", "_pending")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._pending: deque[float] = deque(maxlen=self.STAGING)

    def observe(self, value: float) -> None:
        # Racy by design: a lost sample under contention is preferable
        # to a lock on the wait path.  See the module docstring.
        self._pending.append(value)

    def _drain(self) -> None:
        """Roll staged samples into the buckets (reader-side, racy-safe).

        ``popleft`` until empty: samples appended concurrently either
        make this sweep or the next one; two concurrent drains can lose
        a bucket-increment race, which is the histogram's documented
        precision anyway.
        """
        pending = self._pending
        if not pending:
            return
        buckets = self._buckets
        bounds = self.bounds
        n = 0
        total = 0.0
        while True:
            try:
                value = pending.popleft()
            except IndexError:
                break
            buckets[bisect_left(bounds, value)] += 1
            n += 1
            total += value
        self._count += n
        self._sum += total

    @property
    def buckets(self) -> list:
        self._drain()
        return self._buckets

    @property
    def count(self) -> int:
        self._drain()
        return self._count

    @property
    def sum(self) -> float:
        self._drain()
        return self._sum

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper bucket bound); 0.0 when empty."""
        self._drain()
        return quantile_from_buckets(self.bounds, self._buckets, self._count, q)

    def snapshot(self) -> dict:
        self._drain()
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                **{str(b): n for b, n in zip(self.bounds, self._buckets)},
                "+Inf": self._buckets[-1],
            },
        }

    # ------------------------------------------------- interval snapshots

    def mark(self) -> "HistogramMark":
        """Freeze the cumulative state for a later :meth:`since` read.

        Non-destructive: marks are reader-side bookkeeping, the
        cumulative buckets are never reset — so any number of
        independent readers (a sliding SLO window, a Prometheus scrape,
        an interval report) can window the same histogram without
        stealing each other's samples.
        """
        self._drain()
        return HistogramMark(
            count=self._count, sum=self._sum,
            buckets=tuple(self._buckets), bounds=self.bounds,
        )

    def since(self, mark: "HistogramMark") -> "HistogramMark":
        """The interval delta accumulated after ``mark`` was taken.

        Returns another :class:`HistogramMark` (a plain bucket/count/sum
        triple), so interval quantiles come from
        :meth:`HistogramMark.quantile` with the same upper-bound
        convention as the cumulative :meth:`quantile`.
        """
        self._drain()
        if mark.count > self._count:
            # The histogram was replaced/reset under the mark: fall back
            # to the full cumulative state rather than negative deltas.
            return HistogramMark(
                count=self._count, sum=self._sum,
                buckets=tuple(self._buckets), bounds=self.bounds,
            )
        return HistogramMark(
            count=self._count - mark.count,
            sum=self._sum - mark.sum,
            buckets=tuple(n - o for n, o in zip(self._buckets, mark.buckets)),
            bounds=self.bounds,
        )


class CounterMetrics:
    """One counter's (or one label's) metric series."""

    __slots__ = (
        "wait_latency",
        "wakeup_latency",
        "spin_exhausted",
        "live_levels_hw",
        "live_waiters_hw",
        "increments",
        "releases",
        "parks",
        "unparks",
        "timeouts",
        "flushes",
    )

    def __init__(self) -> None:
        self.wait_latency = Histogram(LATENCY_BOUNDS)
        self.wakeup_latency = Histogram(LATENCY_BOUNDS)
        self.spin_exhausted = Histogram(SPIN_BOUNDS)
        self.live_levels_hw = 0
        self.live_waiters_hw = 0
        self.increments = 0
        self.releases = 0
        self.parks = 0
        self.unparks = 0
        self.timeouts = 0
        self.flushes = 0

    def note_levels(self, live_levels: int, live_waiters: int) -> None:
        # High-water updates lose races harmlessly: a stale maximum is
        # corrected by the next observation at or above it.
        if live_levels > self.live_levels_hw:
            self.live_levels_hw = live_levels
        if live_waiters > self.live_waiters_hw:
            self.live_waiters_hw = live_waiters

    def snapshot(self) -> dict:
        return {
            "increments": self.increments,
            "releases": self.releases,
            "parks": self.parks,
            "unparks": self.unparks,
            "timeouts": self.timeouts,
            "flushes": self.flushes,
            "live_levels_hw": self.live_levels_hw,
            "live_waiters_hw": self.live_waiters_hw,
            "wait_latency": self.wait_latency.snapshot(),
            "wakeup_latency": self.wakeup_latency.snapshot(),
            "spin_exhausted": self.spin_exhausted.snapshot(),
        }


class MetricsRegistry:
    """Label-keyed :class:`CounterMetrics` with dict and Prometheus export.

    Series creation takes a small lock (rare); every subsequent
    observation is a plain dict hit plus the histogram's lock-free bump.
    Labels come from the counter's ``name`` when given, else a
    per-instance ``ClassName@0x...`` — name your long-lived counters so
    their series are stable across restarts.  ``max_series`` bounds the
    registry against label churn from short-lived unnamed counters;
    overflowed observations are tallied in ``dropped_series`` and folded
    into a shared ``"(overflow)"`` series rather than silently vanishing.
    """

    OVERFLOW_LABEL = "(overflow)"

    __slots__ = ("_series", "_lock", "max_series", "dropped_series")

    def __init__(self, max_series: int = 1024) -> None:
        if not isinstance(max_series, int) or isinstance(max_series, bool) or max_series < 1:
            raise ValueError(f"max_series must be a positive int, got {max_series!r}")
        self._series: dict[str, CounterMetrics] = {}
        self._lock = threading.Lock()
        self.max_series = max_series
        self.dropped_series = 0

    def series(self, label: str) -> CounterMetrics:
        metrics = self._series.get(label)
        if metrics is not None:
            return metrics
        with self._lock:
            metrics = self._series.get(label)
            if metrics is None:
                if len(self._series) >= self.max_series and label != self.OVERFLOW_LABEL:
                    self.dropped_series += 1
                    label = self.OVERFLOW_LABEL
                    metrics = self._series.get(label)
                if metrics is None:
                    metrics = self._series[label] = CounterMetrics()
        return metrics

    def labels(self) -> list[str]:
        return sorted(self._series)

    # ------------------------------------------------- interval snapshots

    _HISTOGRAMS = ("wait_latency", "wakeup_latency", "spin_exhausted")
    _TALLIES = ("increments", "releases", "parks", "unparks",
                "timeouts", "flushes")

    def mark(self) -> dict:
        """Freeze every series' cumulative state for :meth:`delta_since`.

        Non-destructive (satellite of ISSUE 10): the fix for "snapshot
        has no way to window a histogram" is a reader-side cursor, not a
        reset — resetting would steal samples from every other consumer
        of the same registry (the Prometheus endpoint, a second SLO
        window).  Any number of marks may be outstanding at once.
        """
        out: dict = {}
        with self._lock:
            series = list(self._series.items())
        for label, m in series:
            out[label] = {
                "tallies": {t: getattr(m, t) for t in self._TALLIES},
                "histograms": {h: getattr(m, h).mark() for h in self._HISTOGRAMS},
            }
        return out

    def delta_since(self, mark: dict) -> dict:
        """Snapshot-shaped per-series deltas accumulated after ``mark``.

        Series born after the mark report their full cumulative state
        (their delta since a zero baseline).  The returned histograms
        are :class:`HistogramMark` interval objects — call
        ``.quantile(q)`` for windowed percentiles or ``.snapshot()``
        for the dict form.
        """
        out: dict = {}
        with self._lock:
            series = list(self._series.items())
        for label, m in series:
            base = mark.get(label)
            tallies = {}
            for t in self._TALLIES:
                now = getattr(m, t)
                before = base["tallies"].get(t, 0) if base else 0
                tallies[t] = now - before if now >= before else now
            histograms = {}
            for h in self._HISTOGRAMS:
                hist: Histogram = getattr(m, h)
                if base and h in base["histograms"]:
                    histograms[h] = hist.since(base["histograms"][h])
                else:
                    histograms[h] = hist.mark()
            out[label] = {"tallies": tallies, "histograms": histograms}
        return out

    def snapshot(self) -> dict:
        """Dict export: per-label series plus the unified live counter stats.

        Includes a ``trace`` section with the *active* trace ring's
        health (``None`` when tracing is off): a scrape that sees
        ``dropped`` climbing knows its JSONL sink is losing history.
        """
        return {
            "series": {label: m.snapshot() for label, m in sorted(self._series.items())},
            "stats": self._live_stats(),
            "trace": self._trace_health(),
            "dropped_series": self.dropped_series,
        }

    @staticmethod
    def _trace_health() -> dict | None:
        """The live trace ring's counters (lazy import, like _live_stats)."""
        from repro.obs import hooks

        trace = hooks._trace
        if trace is None:
            return None
        return {
            "emitted": trace.emitted,
            "dropped": trace.dropped,
            "sink_errors": trace.sink_errors,
            "buffered": len(trace),
            "capacity": trace.capacity,
        }

    @staticmethod
    def _live_stats() -> dict[str, dict]:
        """CounterStats of live registered counters, unified into the export.

        Only counters constructed with ``stats=True`` contribute (the
        ``NOOP_STATS`` null object identifies itself via ``enabled``);
        the per-tally caveats — ``immediate_checks``/``spin_checks`` may
        undercount under contention, everything else is exact — carry
        over unchanged and are quantified by
        ``tests/obs/test_stats_undercount.py``.
        """
        from repro.obs import registry

        out: dict[str, dict] = {}
        for counter in registry.live_counters():
            stats = getattr(counter, "stats", None)
            if stats is None or not getattr(stats, "enabled", False):
                continue
            out[registry.label(counter)] = stats.as_dict()
        return out

    # ----------------------------------------------------------- Prometheus

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Histograms follow the cumulative-``le`` convention; the unified
        ``CounterStats`` tallies export as
        ``repro_counter_stats_total{counter=...,tally=...}``.
        """
        lines: list[str] = []
        counters = (
            ("increments", "repro_counter_increments_total", "Increment operations observed"),
            ("releases", "repro_counter_releases_total", "Wait nodes released by increments"),
            ("parks", "repro_counter_parks_total", "Checks that suspended"),
            ("unparks", "repro_counter_unparks_total", "Suspended checks that resumed"),
            ("timeouts", "repro_counter_timeouts_total", "Checks whose wait expired"),
            ("flushes", "repro_counter_flushes_total", "Shard batch publications"),
        )
        gauges = (
            ("live_levels_hw", "repro_counter_live_levels_high_water", "Max simultaneous distinct waiting levels (the paper's L)"),
            ("live_waiters_hw", "repro_counter_live_waiters_high_water", "Max simultaneous suspended threads"),
        )
        histograms = (
            ("wait_latency", "repro_counter_wait_latency_seconds", "Park-to-unpark latency of suspended checks"),
            ("wakeup_latency", "repro_counter_wakeup_latency_seconds", "Release-to-unpark latency (the wakeup path)"),
            ("spin_exhausted", "repro_counter_spin_exhausted_iterations", "Spin budgets burned without satisfaction"),
        )
        series = sorted(self._series.items())
        for attr, metric, help_text in counters:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for label, m in series:
                lines.append(f'{metric}{{counter="{_escape(label)}"}} {getattr(m, attr)}')
        for attr, metric, help_text in gauges:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            for label, m in series:
                lines.append(f'{metric}{{counter="{_escape(label)}"}} {getattr(m, attr)}')
        for attr, metric, help_text in histograms:
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} histogram")
            for label, m in series:
                hist: Histogram = getattr(m, attr)
                esc = _escape(label)
                # One drain per histogram: read buckets once so the le
                # lines and the +Inf/count totals describe one sweep.
                buckets = hist.buckets
                cumulative = 0
                for bound, n in zip(hist.bounds, buckets):
                    cumulative += n
                    lines.append(f'{metric}_bucket{{counter="{esc}",le="{bound:g}"}} {cumulative}')
                cumulative += buckets[-1]
                lines.append(f'{metric}_bucket{{counter="{esc}",le="+Inf"}} {cumulative}')
                lines.append(f'{metric}_sum{{counter="{esc}"}} {hist.sum:g}')
                lines.append(f'{metric}_count{{counter="{esc}"}} {cumulative}')
        trace_health = self._trace_health()
        if trace_health is not None:
            trace_gauges = (
                ("emitted", "repro_trace_emitted_total", "Events appended to the trace ring (lifetime)"),
                ("dropped", "repro_trace_dropped_total", "Events that fell off the ring's far end"),
                ("sink_errors", "repro_trace_sink_errors_total", "Sink invocations that raised (sink detached on first)"),
                ("buffered", "repro_trace_buffered", "Events currently held in the ring"),
                ("capacity", "repro_trace_capacity", "Ring capacity"),
            )
            for key, metric, help_text in trace_gauges:
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {trace_health[key]}")
        stats = self._live_stats()
        if stats:
            lines.append("# HELP repro_counter_stats_total Unified opt-in CounterStats tallies")
            lines.append("# TYPE repro_counter_stats_total counter")
            for label, tallies in sorted(stats.items()):
                esc = _escape(label)
                for tally, value in tallies.items():
                    lines.append(
                        f'repro_counter_stats_total{{counter="{esc}",tally="{tally}"}} {value}'
                    )
        lines.append("")
        return "\n".join(lines)


def _escape(label: str) -> str:
    return label.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
