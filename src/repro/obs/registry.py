"""Weakref registry of live counters — who can be observed right now.

Every concrete counter registers itself at construction (one
``WeakSet.add``, off every hot path); the set holds only weak
references, so a counter that the program drops disappears from the
registry with it — observation never extends a counter's lifetime.

The registry is what makes ambient introspection possible at all: the
stall watchdog scans it, ``repro.obs.dump_state()`` renders it, and the
metrics registry folds the live counters' opt-in ``CounterStats`` into
its export.  Wrapper counters (:class:`~repro.core.sharded.ShardedCounter`
and its asyncio twin) deregister their inner central counter so each
logical counter appears exactly once.
"""

from __future__ import annotations

import weakref

__all__ = ["register", "deregister", "live_counters", "label"]

_counters: "weakref.WeakSet[object]" = weakref.WeakSet()


def register(counter: object) -> None:
    """Add ``counter`` to the live registry (constructor-time, weakly)."""
    _counters.add(counter)


def deregister(counter: object) -> None:
    """Drop ``counter`` from the registry (used by wrapping counters)."""
    _counters.discard(counter)


def live_counters() -> list[object]:
    """A snapshot list of every registered counter still alive."""
    return list(_counters)


def label(obj: object) -> str:
    """Stable display label: the primitive's ``name`` if given, else
    ``ClassName@0xADDR``.  Name long-lived counters — unnamed ones get
    per-instance labels, which fragment metric series.

    The computed label is memoized on the instance (the ``_obs_label``
    slot the instrumented primitives carry) so the per-event cost is one
    attribute read instead of a string format; objects without the slot
    just recompute.  Sound to cache: ``_name`` is set once at
    construction and never mutated.
    """
    cached = getattr(obj, "_obs_label", None)
    if cached is not None:
        return cached
    name = getattr(obj, "_name", None)
    text = str(name) if name else f"{type(obj).__name__}@{id(obj):#x}"
    try:
        obj._obs_label = text  # type: ignore[attr-defined]
    except AttributeError:
        pass  # no slot / frozen object: skip the memo
    return text
