"""SLO evaluation and per-request tail attribution ("why is p99 high").

Closes the loop the ISSUE-10 pipeline opens: :mod:`repro.obs.load`
records coordinated-omission-safe latencies tagged with schema-v3
``corr`` tokens; this module (a) watches them against an SLO in a
sliding window and (b) *explains* the worst ones from the merged trace.

**Watching** — :class:`SloTracker` consumes
:class:`~repro.obs.load.RequestRecord` objects live (it is a valid
``observers`` entry for :func:`~repro.obs.load.run_load`), feeds an
exponential :class:`~repro.obs.metrics.Histogram`, and windows it with
the non-destructive interval marks that PR's
:meth:`~repro.obs.metrics.Histogram.mark` machinery provides — no
draining, so a Prometheus scrape and the SLO window coexist on one
histogram.  Evaluation piggybacks on the
:class:`~repro.obs.watchdog.StallWatchdog` poll loop
(:meth:`SloTracker.attach`): one periodic thread for both liveness and
SLO burn.  Burn rate is the error-budget convention: with a ``q``
objective, a fraction ``v`` of violating requests burns at
``v / (1 - q)`` — 1.0 means exactly on budget, 10 means ten times too
fast.  A window over budget emits one ``slo_breach`` event and invokes
``on_breach``.

**Explaining** — :func:`explain` takes one tail request's corr token
plus the merged event timeline and renders the answer the title
promises: the trace is sliced around the request, a
:class:`~repro.obs.causal.CausalGraph` is built, the critical path is
anchored at the request's own ``req_done``
(``critical_path(end=...)``), and the latency is decomposed into
generator queueing, traced counter waits, wire time, and service time.
The releaser that ended the request's longest wait is named
thread-and-pid-qualified — for a two-process run the report literally
says ``released by p<pid>/T<n> over the wire``, which is the
acceptance criterion of the tail-attribution issue.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.obs import hooks as _obs
from repro.obs.causal.analyze import render_gantt
from repro.obs.causal.graph import CausalGraph, PathStep
from repro.obs.events import Event
from repro.obs.metrics import LATENCY_BOUNDS, Histogram

__all__ = ["SloPolicy", "SloTracker", "ExemplarReport", "explain",
           "slice_around"]


@dataclass(frozen=True, slots=True)
class SloPolicy:
    """A latency objective: ``quantile`` of requests under ``objective_s``."""

    objective_s: float            #: the latency bound (seconds)
    quantile: float = 0.99        #: fraction of requests that must meet it
    window_s: float = 10.0        #: sliding evaluation window
    burn_threshold: float = 1.0   #: burn-rate multiple that counts as breach

    def __post_init__(self) -> None:
        if self.objective_s <= 0:
            raise ValueError(f"objective_s must be positive, got {self.objective_s!r}")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile!r}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s!r}")


class SloTracker:
    """Sliding-window SLO evaluation over live request records.

    Call the tracker with each finished record (or pass it in
    ``run_load(observers=[tracker])``); drive :meth:`poll` periodically
    — directly, or by :meth:`attach`-ing to a stall watchdog.  The
    worst ``keep_worst`` requests are retained with their corr tokens
    as tail-exemplar candidates for :func:`explain`.
    """

    def __init__(self, policy: SloPolicy, *, label: str = "slo",
                 keep_worst: int = 8,
                 on_breach: Callable[[dict], None] | None = None,
                 rearm: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.label = label
        self.keep_worst = keep_worst
        self._on_breach = on_breach
        self.rearm = rearm
        self._clock = clock
        self._lock = threading.Lock()
        self.histogram = Histogram(LATENCY_BOUNDS)
        self.total = 0
        self.violations = 0
        #: (ts, HistogramMark, total, violations) cursors, oldest first.
        self._marks: list[tuple] = []
        self._worst: list = []  # RequestRecords, slowest first
        self._last_breach: float | None = None
        self.breaches: list[dict] = []

    # ------------------------------------------------------------- ingest

    def __call__(self, record) -> None:
        self.observe(record.latency, record=record)

    def observe(self, latency: float, record=None) -> None:
        self.histogram.observe(latency)
        with self._lock:
            self.total += 1
            if latency > self.policy.objective_s:
                self.violations += 1
            if record is not None:
                worst = self._worst
                worst.append(record)
                worst.sort(key=lambda r: r.latency, reverse=True)
                del worst[self.keep_worst:]

    def exemplars(self, k: int | None = None):
        """The slowest retained records (tail-exemplar candidates)."""
        with self._lock:
            worst = list(self._worst)
        return worst if k is None else worst[:k]

    # ---------------------------------------------------------- evaluation

    def _window_base(self, now: float) -> tuple:
        """The newest cursor at or before ``now - window_s`` (pruning)."""
        horizon = now - self.policy.window_s
        base = None
        with self._lock:
            marks = self._marks
            while marks and marks[0][0] <= horizon:
                base = marks.pop(0)
            if base is not None:
                marks.insert(0, base)
        return base

    def evaluate(self, now: float | None = None) -> dict:
        """The current window's burn state (no emission, no side effects
        beyond cursor pruning)."""
        if now is None:
            now = self._clock()
        base = self._window_base(now)
        with self._lock:
            total, violations = self.total, self.violations
        if base is None:
            base_mark, base_total, base_viol = None, 0, 0
        else:
            _, base_mark, base_total, base_viol = base
        window_total = total - base_total
        window_viol = violations - base_viol
        if base_mark is not None:
            interval = self.histogram.since(base_mark)
        else:
            interval = self.histogram.mark()
        observed = interval.quantile(self.policy.quantile)
        rate = window_viol / window_total if window_total else 0.0
        burn = rate / (1.0 - self.policy.quantile)
        return {
            "window_total": window_total,
            "window_violations": window_viol,
            "violation_rate": rate,
            "burn_rate": burn,
            "observed_quantile_s": observed,
            "p50": interval.quantile(0.50),
            "p99": interval.quantile(0.99),
            "p999": interval.quantile(0.999),
            "breached": window_total > 0 and burn >= self.policy.burn_threshold,
        }

    def poll(self, now: float | None = None) -> dict:
        """One evaluation sweep: cursor, evaluate, emit on breach.

        The shape :meth:`attach` wires into the watchdog's poll
        listeners — safe to call from any thread, returns the
        evaluation for direct drivers.
        """
        if now is None:
            now = self._clock()
        state = self.evaluate(now)
        if state["breached"]:
            rearmed = (
                self._last_breach is None
                or (self.rearm is not None
                    and now - self._last_breach >= self.rearm)
            )
            if rearmed:
                self._last_breach = now
                self.breaches.append(state)
                if _obs.enabled:
                    _obs.on_dist(self.label, "slo_breach",
                                 value=state["window_violations"],
                                 count=state["window_total"],
                                 wait_s=state["observed_quantile_s"])
                if self._on_breach is not None:
                    try:
                        self._on_breach(state)
                    except Exception:
                        pass
        with self._lock:
            self._marks.append(
                (now, self.histogram.mark(), self.total, self.violations)
            )
        return state

    def attach(self, watchdog) -> "SloTracker":
        """Ride the stall watchdog's poll loop (one timer, two monitors)."""
        watchdog.add_poll_listener(self.poll)
        return self


# --------------------------------------------------------------- attribution


def slice_around(events: Sequence[Event], corr: str, *,
                 margin: float = 0.05) -> list[Event]:
    """The trace ring sliced around one request.

    Everything inside the request's ``[req_start - margin, req_done +
    margin]`` bracket (other threads' activity is what blame needs) plus
    every event sharing the request's corr regardless of time (frame
    riders and server-side pushes can precede or trail the bracket).
    """
    lo = hi = None
    for event in events:
        if event.corr == corr and event.kind == "req_start":
            lo = event.ts if lo is None else min(lo, event.ts)
        elif event.corr == corr and event.kind == "req_done":
            hi = event.ts if hi is None else max(hi, event.ts)
    if lo is None:
        lo = min((e.ts for e in events if e.corr == corr), default=0.0)
    if hi is None:
        hi = max((e.ts for e in events if e.corr == corr), default=lo)
    lo -= margin
    hi += margin
    return [e for e in events if lo <= e.ts <= hi or e.corr == corr]


@dataclass(slots=True)
class ExemplarReport:
    """One tail request, explained."""

    corr: str
    ok: bool                       #: admitted?
    latency: float                 #: end-to-end, from intended send time
    queue_s: float                 #: generator-side queue delay
    wait_s: float                  #: traced counter waits (request thread)
    wire_s: float                  #: send→recv time of corr-linked frames
    service_s: float               #: the remainder (untraced execution)
    releaser: str | None           #: "pX/TY" that ended the longest wait
    over_wire: bool                #: did the wakeup cross a process?
    blocked_on: str | None         #: "source >= level" of the longest wait
    path: list[PathStep] = field(default_factory=list)
    gantt: str = ""

    @property
    def crosses_pid(self) -> bool:
        """True when the critical path spans more than one process."""
        pids = {
            step.thread[0]
            for step in self.path
            if isinstance(step.thread, tuple)
        }
        return len(pids) > 1

    def render(self) -> str:
        ms = lambda s: f"{s * 1e3:.2f}ms"  # noqa: E731 - local formatter
        verdict = "admitted" if self.ok else "rejected/timed out"
        lines = [
            f"exemplar {self.corr}: {ms(self.latency)} ({verdict})",
            (f"  queue {ms(self.queue_s)} | wait {ms(self.wait_s)} | "
             f"wire {ms(self.wire_s)} | service {ms(self.service_s)}"),
        ]
        if self.blocked_on:
            lines.append(f"  blocked on {self.blocked_on}")
        if self.releaser:
            via = " over the wire" if self.over_wire else ""
            lines.append(f"  released by {self.releaser}{via}")
        if self.path:
            lines.append("  critical path:")
            for step in self.path:
                detail = f"  {step.detail}" if step.detail else ""
                lines.append(
                    f"    {step.kind:<6} {ms(step.duration):>10}{detail}"
                )
        if self.gantt:
            lines.append("  gantt:")
            lines.extend(f"    {row}" for row in self.gantt.splitlines())
        return "\n".join(lines)


def explain(corr: str, events: Iterable[Event], *,
            margin: float = 0.05, gantt_width: int = 72) -> ExemplarReport:
    """Explain one request's latency from the merged timeline.

    ``events`` is the full (ideally :func:`repro.obs.collect.merge`-d)
    timeline; ``corr`` is the request's token (from
    :attr:`~repro.obs.load.RequestRecord.corr` /
    :meth:`SloTracker.exemplars`).  Raises :class:`ValueError` if the
    request's ``req_done`` never made it into the ring.
    """
    events = list(events)
    done = start = None
    for event in events:
        if event.corr != corr:
            continue
        if event.kind == "req_done":
            done = event
        elif event.kind == "req_start":
            start = event
    if done is None:
        raise ValueError(f"no req_done with corr {corr!r} in the trace "
                         f"(ring wrapped? obs disabled?)")
    graph = CausalGraph.from_events(slice_around(events, corr, margin=margin))
    # Re-find the anchor inside the graph (from_events re-parses dicts).
    anchor = next(
        e for e in graph.events if e.kind == "req_done" and e.corr == corr
    )
    req_key = graph._tkey(anchor)
    latency = done.wait_s if done.wait_s is not None else 0.0
    queue_s = start.wait_s if start is not None and start.wait_s else 0.0
    # The request's own traced waits: corr-stamped intervals on the
    # thread that ran it (the nested loop-thread wait shares the corr
    # but lives on the client loop; counting both would double-bill).
    waits = [
        w for w in graph.waits
        if (w.park.corr == corr or w.end.corr == corr)
        and graph._wkey(w) == req_key
    ]
    if not waits:
        # In-process limiters park through the core counter, whose
        # events carry tokens but no corr: fall back to time overlap on
        # the request's own thread within its execution bracket.
        t_lo = anchor.ts - max(latency - queue_s, 0.0) - 1e-9
        waits = [
            w for w in graph.waits
            if graph._wkey(w) == req_key
            and w.park.ts >= t_lo and w.end.ts <= anchor.ts + 1e-9
        ]
    if not waits:  # last resort: any wait carrying the corr
        waits = [w for w in graph.waits
                 if w.park.corr == corr or w.end.corr == corr]
    wait_s = sum(w.duration for w in waits)
    wire_s = sum(
        max(recv.ts - send.ts, 0.0)
        for send, recv in graph.wire_edges
        if send.corr == corr
    )
    releaser = blocked_on = None
    over_wire = False
    if waits:
        longest = max(waits, key=lambda w: w.duration)
        blocked_on = (f"{longest.source} >= {longest.level}"
                      if longest.level is not None else longest.source)
        edge = graph.edge_for(longest)
        if edge is not None:
            releaser = graph.thread_name(edge.from_thread)
            over_wire = edge.origin is not None
    service_s = max(latency - queue_s - wait_s, 0.0)
    return ExemplarReport(
        corr=corr,
        ok=bool(done.value),
        latency=latency,
        queue_s=queue_s,
        wait_s=wait_s,
        wire_s=wire_s,
        service_s=service_s,
        releaser=releaser,
        over_wire=over_wire,
        blocked_on=blocked_on,
        path=graph.critical_path(end=anchor),
        gantt=render_gantt(graph, width=gantt_width),
    )
