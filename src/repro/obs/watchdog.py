"""The stall watchdog: flag checks blocked beyond a threshold, with a dump.

The runtime cousin of the testkit's deadlock detector
(:class:`repro.testkit.harness.Controller` reports a schedule whose
gated workers all blocked; this watchdog reports a *production* system
whose parked checks stopped making progress).  It scans the weakref
registry of live counters, tracks how long each ``(counter, level)``
pair has continuously had suspended waiters, and — once a pair crosses
the threshold — produces a :class:`StallReport` naming the counter, the
stalled level, its waiter count, the counter's current value, and the
full who-waits-on-what dump of every waiting level on that counter.

Two driving modes:

* **deterministic** — call :meth:`StallWatchdog.poll` yourself, with an
  injected ``now`` if you want virtual time (the testkit tests do);
* **background** — :meth:`StallWatchdog.start` runs a daemon thread that
  polls every ``interval`` seconds until :meth:`StallWatchdog.stop`.

Scanning uses only ``snapshot()``-style reads (counter lock, briefly)
and never calls blocking counter operations, so the watchdog can observe
a wedged system without joining it.  Reports are appended to a bounded
``reports`` deque, delivered to the optional ``on_stall`` callback, and
emitted as ``stall`` trace events when tracing is enabled.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import hooks as _obs
from repro.obs import registry

__all__ = ["StallWatchdog", "StallReport", "WaitingLevel", "capture_waiting"]


@dataclass(frozen=True, slots=True)
class WaitingLevel:
    """One waiting level in a stall report's who-waits-on-what dump."""

    level: int
    waiters: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"level {self.level}: {self.waiters} waiter(s)"


@dataclass(frozen=True, slots=True)
class StallReport:
    """One check (or group of checks at one level) blocked past threshold."""

    counter: str                 #: registry label of the stalled counter
    counter_repr: str            #: its repr at scan time
    level: int                   #: the level the stalled waiters need
    waiters: int                 #: how many threads are parked at it
    value: int                   #: the counter's value at scan time
    stalled_s: float             #: continuous time the pair has been waiting
    #: Every waiting level on the counter (the full wait-list dump), so a
    #: report shows not just the flagged level but the whole shape.
    levels: tuple[WaitingLevel, ...] = field(default_factory=tuple)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        others = "; ".join(str(lv) for lv in self.levels)
        return (
            f"STALL {self.counter}: check({self.level}) blocked {self.stalled_s:.1f}s "
            f"with {self.waiters} waiter(s), value={self.value} "
            f"(all waits: {others or 'none'})"
        )


def capture_waiting(counter: object) -> tuple[int, list[tuple[int, int]]] | None:
    """(value lower bound, [(level, waiters), ...]) for one counter.

    Sharded counters report published + pending (the never-over-reporting
    capture of ``shard_snapshot``); asyncio counters may be mutated by
    their loop mid-read, so a racing capture is retried once and then
    skipped — the watchdog must never crash on a live system.  Also the
    who-waits-on-what source for the testkit's instant deadlock reports
    (:class:`repro.testkit.harness.DeadlockReport`).
    """
    for _ in range(2):
        try:
            shard_snapshot = getattr(counter, "shard_snapshot", None)
            if shard_snapshot is not None:
                sharded = shard_snapshot()
                value = sharded.total
            else:
                value = None
            snap = counter.snapshot()
            if value is None:
                value = snap.value
            waiting = [
                (node.level, node.count)
                for node in snap.nodes
                if node.count > 0 and not node.signaled and node.level > value
            ]
            return value, waiting
        except RuntimeError:  # e.g. dict mutated during an asyncio snapshot
            continue
        except Exception:
            return None
    return None


#: Backwards-compatible private alias (pre-testkit-reuse name).
_capture = capture_waiting


class StallWatchdog:
    """Track continuously-waiting (counter, level) pairs; report stalls.

    Parameters
    ----------
    threshold:
        Seconds a pair must wait continuously before it is reported.
    interval:
        Background polling period (:meth:`start` mode only).
    clock:
        Timestamp source — injectable for deterministic tests.
    on_stall:
        Optional callback invoked with each :class:`StallReport` (in the
        watchdog/polling thread; must not block or raise).
    rearm:
        Seconds after which an already-reported pair is reported again if
        still stalled (``None`` reports each pair once per stall).
    """

    def __init__(
        self,
        *,
        threshold: float = 5.0,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_stall: Callable[[StallReport], None] | None = None,
        rearm: float | None = None,
        max_reports: int = 256,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold!r}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.threshold = threshold
        self.interval = interval
        self.rearm = rearm
        self._clock = clock
        self._on_stall = on_stall
        # (id(counter), level) -> [weakref, first_seen, last_reported|None].
        # The weakref guards against id reuse after a counter dies.
        self._waiting: dict[tuple[int, int], list] = {}
        self.reports: deque[StallReport] = deque(maxlen=max_reports)
        self._poll_listeners: list[Callable[[float], None]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def add_poll_listener(self, fn: Callable[[float], None]) -> None:
        """Piggyback ``fn(now)`` on every :meth:`poll` sweep.

        The hook the SLO engine rides (:meth:`repro.obs.slo.SloTracker.attach`):
        periodic evaluation without a second timer thread, in both
        driving modes (deterministic ``poll(now=...)`` passes the
        injected clock through).  Listeners must not block; one that
        raises is skipped for that sweep, never unsubscribed.
        """
        if not callable(fn):
            raise TypeError(f"poll listener must be callable, got {fn!r}")
        self._poll_listeners.append(fn)

    # ------------------------------------------------------------- scanning

    def poll(self, now: float | None = None) -> list[StallReport]:
        """One deterministic scan; returns the stalls crossing threshold."""
        if now is None:
            now = self._clock()
        reports: list[StallReport] = []
        seen: set[tuple[int, int]] = set()
        for counter in registry.live_counters():
            captured = _capture(counter)
            if captured is None:
                continue
            value, waiting = captured
            if not waiting:
                continue
            levels = tuple(WaitingLevel(level, count) for level, count in waiting)
            for level, count in waiting:
                key = (id(counter), level)
                entry = self._waiting.get(key)
                if entry is None or entry[0]() is not counter:
                    entry = self._waiting[key] = [weakref.ref(counter), now, None]
                seen.add(key)
                stalled = now - entry[1]
                if stalled < self.threshold:
                    continue
                last_reported = entry[2]
                if last_reported is not None and (
                    self.rearm is None or now - last_reported < self.rearm
                ):
                    continue
                entry[2] = now
                reports.append(
                    StallReport(
                        counter=registry.label(counter),
                        counter_repr=repr(counter),
                        level=level,
                        waiters=count,
                        value=value,
                        stalled_s=stalled,
                        levels=levels,
                    )
                )
        # A pair not seen this scan made progress (or its counter died):
        # forget it so a later wait at the same level starts a fresh clock.
        for key in list(self._waiting):
            if key not in seen:
                del self._waiting[key]
        for report in reports:
            self.reports.append(report)
            if _obs.enabled:
                _obs.on_stall(
                    report.counter, report.level, report.waiters,
                    report.value, report.stalled_s,
                )
            if self._on_stall is not None:
                self._on_stall(report)
        for listener in self._poll_listeners:
            try:
                listener(now)
            except Exception:
                # Same contract as on_stall: observers never take the
                # watchdog down with them.
                continue
        return reports

    # ----------------------------------------------------------- background

    def start(self) -> "StallWatchdog":
        """Run :meth:`poll` every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.poll()
            except Exception:
                # A scan must never kill the watchdog; the next interval
                # retries against fresh state.
                continue

    def stop(self) -> None:
        """Stop the background thread (idempotent; joins briefly)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "StallWatchdog":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"<StallWatchdog {state} threshold={self.threshold}s "
            f"tracked={len(self._waiting)} reports={len(self.reports)}>"
        )
