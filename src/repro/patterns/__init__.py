"""Reusable counter synchronization patterns (paper §5).

* :class:`~repro.patterns.ragged.RaggedBarrier` — §5.1 pairwise neighbour
  synchronization replacing full barriers.
* :class:`~repro.patterns.ordered.OrderedRegion` — §5.2 mutual exclusion
  *with sequential ordering*.
* :class:`~repro.patterns.broadcast.SingleWriterBroadcast` /
  :class:`~repro.patterns.broadcast.ClosableBroadcast` — §5.3
  single-writer multiple-reader broadcast, fixed- and unknown-length.
* :func:`~repro.patterns.wavefront.wavefront_run` — 2-D dataflow
  wavefront, the natural generalization the paper gestures at.
"""

from repro.patterns.broadcast import SEAL, ClosableBroadcast, SingleWriterBroadcast
from repro.patterns.cells import DataflowArray, DataflowCell
from repro.patterns.ordered import OrderedRegion
from repro.patterns.ragged import RaggedBarrier
from repro.patterns.taskgraph import CycleError, DependencyError, TaskGraph
from repro.patterns.wavefront import wavefront_run

__all__ = [
    "RaggedBarrier",
    "OrderedRegion",
    "SingleWriterBroadcast",
    "ClosableBroadcast",
    "SEAL",
    "DataflowCell",
    "DataflowArray",
    "TaskGraph",
    "CycleError",
    "DependencyError",
    "wavefront_run",
]
