"""Single-writer multiple-reader broadcast (paper §5.3).

One writer publishes a sequence of items; any number of readers each read
the *entire* sequence independently (reading does not consume).  One
counter synchronizes everybody: the writer's increments broadcast
availability to every reader, each of which may be suspended at a
different level — the pattern that showcases counters' dynamically-varying
suspension queues.

Two variants:

* :class:`SingleWriterBroadcast` — the paper's listing: the total item
  count ``n`` is known up front; readers iterate ``0..n-1``.  Supports the
  paper's *blocked* granularity on both sides (``block_size`` per thread,
  independently chosen).
* :class:`ClosableBroadcast` — a practical extension for unknown ``n``:
  ``close()`` bumps the counter past every conceivable level, so blocked
  readers wake and observe completion without any probe operation.  The
  protocol stays race-free because it relies only on monotonicity.
"""

from __future__ import annotations

from typing import Generic, Iterator, Sequence, TypeVar

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter

T = TypeVar("T")

__all__ = ["SingleWriterBroadcast", "ClosableBroadcast", "SEAL"]

#: Counter jump used by :meth:`ClosableBroadcast.close`; far above any real
#: item count, so ``check(i + 1)`` passes for every i once closed.
SEAL = 1 << 62


class SingleWriterBroadcast(Generic[T]):
    """Fixed-length broadcast buffer: one writer, many independent readers.

    >>> bc = SingleWriterBroadcast(3)
    >>> for i in range(3):
    ...     bc.publish(i * 10)
    >>> list(bc.read())
    [0, 10, 20]
    """

    __slots__ = ("_data", "_count", "_counter", "_published")

    def __init__(self, n_items: int, *, counter: CounterProtocol | None = None) -> None:
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        self._count = n_items
        self._data: list[T | None] = [None] * n_items
        self._counter = counter if counter is not None else MonotonicCounter(name="dataCount")
        self._published = 0

    @property
    def n_items(self) -> int:
        return self._count

    @property
    def counter(self) -> CounterProtocol:
        return self._counter

    # ---------------------------------------------------------------- writer

    def publish(self, item: T) -> None:
        """Write the next item and announce it (synchronize every item)."""
        index = self._published
        if index >= self._count:
            raise IndexError(f"broadcast full: all {self._count} items published")
        self._data[index] = item
        self._published = index + 1
        self._counter.increment(1)

    def publish_blocked(self, items: Sequence[T], block_size: int) -> None:
        """The paper's blocked writer: announce in ``block_size`` batches.

        ``items`` must be exactly the remaining capacity.  Increments the
        counter once per full block and once for the final partial block —
        the ``(i+1) % blockSize`` logic of the §5.3 listing.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if self._published + len(items) > self._count:
            raise IndexError("publish_blocked would exceed the broadcast capacity")
        pending = 0
        for item in items:
            self._data[self._published] = item
            self._published += 1
            pending += 1
            if pending == block_size:
                self._counter.increment(pending)
                pending = 0
        if pending:
            self._counter.increment(pending)

    # ---------------------------------------------------------------- reader

    def read(self, block_size: int = 1, timeout: float | None = None) -> Iterator[T]:
        """Iterate all items, synchronizing every ``block_size`` items.

        Each reader chooses its own granularity (the paper's point): a
        larger block means fewer ``check`` calls but coarser pipelining.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        for i in range(self._count):
            if i % block_size == 0:
                self._counter.check(min(i + block_size, self._count), timeout=timeout)
            yield self._data[i]  # type: ignore[misc]

    def get(self, index: int, timeout: float | None = None) -> T:
        """Random access to one item, waiting until it is published."""
        if not 0 <= index < self._count:
            raise IndexError(f"index {index} out of range [0, {self._count})")
        self._counter.check(index + 1, timeout=timeout)
        return self._data[index]  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"<SingleWriterBroadcast {self._published}/{self._count} published>"


class ClosableBroadcast(Generic[T]):
    """Unknown-length broadcast: publish any number of items, then close.

    Readers iterate with ``check(i + 1)``; :meth:`close` increments the
    counter by :data:`SEAL`, releasing every suspension queue at once.  A
    woken reader distinguishes "item i exists" from "stream ended" by the
    published length, which is safe to read because the close increment
    happens-after the final publish.

    >>> bc = ClosableBroadcast()
    >>> bc.publish('a'); bc.publish('b'); bc.close()
    >>> list(bc.read())
    ['a', 'b']
    """

    __slots__ = ("_data", "_counter", "_closed")

    def __init__(self, *, counter: CounterProtocol | None = None) -> None:
        self._data: list[T] = []
        self._counter = counter if counter is not None else MonotonicCounter(name="dataCount")
        self._closed = False

    @property
    def counter(self) -> CounterProtocol:
        return self._counter

    def publish(self, item: T) -> None:
        if self._closed:
            raise RuntimeError("publish() after close()")
        self._data.append(item)
        self._counter.increment(1)

    def close(self) -> None:
        """End the stream, waking all readers.  Idempotent."""
        if not self._closed:
            self._closed = True
            self._counter.increment(SEAL)

    def read(self, timeout: float | None = None) -> Iterator[T]:
        """Iterate every item ever published, ending cleanly after close."""
        i = 0
        while True:
            self._counter.check(i + 1, timeout=timeout)
            # Either item i was published (i < len) or the stream closed
            # with only i items; both facts are stable under monotonicity.
            if i < len(self._data):
                yield self._data[i]
                i += 1
            else:
                return

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<ClosableBroadcast {state} items={len(self._data)}>"
