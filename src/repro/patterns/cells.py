"""Dataflow cells: single-assignment semantics rebuilt ON counters.

Section 8 positions counters as extending the single-assignment variable
of dataflow languages by "(i) separating the synchronization and
data-holding functionality, and (ii) allowing synchronization on many
different values of a single object."  These classes make the first half
concrete by *composition*: a :class:`DataflowCell` is nothing but a
payload slot plus ``counter.check(1)`` / ``increment(1)``, and a
:class:`DataflowArray` is a value array plus ONE counter whose level
``i + 1`` means "slots 0..i are written" — the ``kRow`` staging idiom of
§4.4/§4.5 packaged as a reusable component.

Contrast with :class:`repro.sync.single_assignment.SingleAssignment`,
which implements the same cell semantics directly on a condition
variable: the counter build gets N cells for one synchronization object,
the direct build needs N objects.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterator, TypeVar

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter
from repro.sync.errors import AlreadyAssignedError

T = TypeVar("T")

__all__ = ["DataflowCell", "DataflowArray"]


class DataflowCell(Generic[T]):
    """A write-once cell: a payload + a counter used at one level.

    >>> cell = DataflowCell()
    >>> cell.assign(42)
    >>> cell.read()
    42
    """

    __slots__ = ("_value", "_counter", "_assign_lock", "_assigned")

    def __init__(self, *, counter: CounterProtocol | None = None) -> None:
        self._value: T | None = None
        self._counter = counter if counter is not None else MonotonicCounter(name="cell")
        # Writer-side bookkeeping only: readers synchronize exclusively
        # through the counter.  The lock serializes racing *writers* so a
        # double assignment is detected reliably, not just usually.
        self._assign_lock = threading.Lock()
        self._assigned = False

    def assign(self, value: T) -> None:
        """Write the value; the counter's 0→1 step publishes it."""
        with self._assign_lock:
            if self._assigned:
                raise AlreadyAssignedError(f"{self!r} already assigned")
            self._value = value
            self._assigned = True
        self._counter.increment(1)

    def read(self, timeout: float | None = None) -> T:
        """Suspend until assigned, then return the value."""
        self._counter.check(1, timeout=timeout)
        return self._value  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "assigned" if self._counter.value >= 1 else "unassigned"
        return f"<DataflowCell {state}>"


class DataflowArray(Generic[T]):
    """N write-once slots published in index order over ONE counter.

    The writer must assign slots 0, 1, 2, ... consecutively (the §4.4
    ``kRow`` discipline); any number of readers block per-slot with
    ``check(i + 1)``.  One synchronization object total — the §8 claim,
    executable.

    >>> arr = DataflowArray(3)
    >>> for i in range(3):
    ...     arr.assign_next(i * 10)
    >>> arr.read(2)
    20
    >>> list(arr)
    [0, 10, 20]
    """

    __slots__ = ("_values", "_counter", "_next", "_assign_lock")

    def __init__(self, size: int, *, counter: CounterProtocol | None = None) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._values: list[T | None] = [None] * size
        self._counter = counter if counter is not None else MonotonicCounter(name="cells")
        self._next = 0
        self._assign_lock = threading.Lock()

    @property
    def size(self) -> int:
        return len(self._values)

    @property
    def counter(self) -> CounterProtocol:
        """The one synchronization object behind all slots."""
        return self._counter

    def assign_next(self, value: T) -> int:
        """Write the next unwritten slot; returns its index.

        Multiple writers may call this; the slot handoff is serialized
        writer-side (readers still synchronize only through the counter).
        """
        with self._assign_lock:
            index = self._next
            if index >= len(self._values):
                raise IndexError(f"all {len(self._values)} slots already assigned")
            self._values[index] = value
            self._next = index + 1
        self._counter.increment(1)
        return index

    def read(self, index: int, timeout: float | None = None) -> T:
        """Suspend until slot ``index`` is written, then return it."""
        if not 0 <= index < len(self._values):
            raise IndexError(f"index {index} out of range [0, {len(self._values)})")
        self._counter.check(index + 1, timeout=timeout)
        return self._values[index]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        for index in range(len(self._values)):
            yield self.read(index)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"<DataflowArray {self._next}/{len(self._values)} assigned>"
