"""Mutual exclusion with sequential ordering (paper §5.2).

Replacing a lock/unlock pair with a counter check/increment pair buys
*order* on top of mutual exclusion: thread ``i`` enters its critical
section only after thread ``i-1`` has left.  The result is deterministic
accumulation of non-associative operations (list append, float addition)
at the cost of reduced concurrency — §5.2's stated trade.

:class:`OrderedRegion` packages the pair as a context manager::

    region = OrderedRegion()
    ...
    with region.turn(i):          # Check(i)
        accumulate(result, sub)   # exclusive AND i-th in order
    ...                           # Increment(1) on exit

Exactly one thread can be between ``Check(i)`` succeeding and
``Increment(1)``, because the counter equals ``i`` only until that
increment — so mutual exclusion holds with no extra lock.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter

T = TypeVar("T")

__all__ = ["OrderedRegion"]


class OrderedRegion:
    """A critical section whose entrants are admitted in sequence 0, 1, 2, ...

    Parameters
    ----------
    counter:
        Optional counter to synchronize on (traced/simulated substitutes);
        defaults to a fresh :class:`~repro.core.counter.MonotonicCounter`.
    """

    __slots__ = ("_counter",)

    def __init__(self, *, counter: CounterProtocol | None = None) -> None:
        self._counter = counter if counter is not None else MonotonicCounter(name="ordered")

    @property
    def counter(self) -> CounterProtocol:
        return self._counter

    @property
    def completed(self) -> int:
        """How many turns have fully completed (diagnostic only)."""
        return self._counter.value

    @contextmanager
    def turn(self, index: int, timeout: float | None = None) -> Iterator[None]:
        """Enter the region as the ``index``-th entrant (0-based).

        Blocks until all earlier turns have completed.  The turn is marked
        complete on normal exit; on exception the turn is **still marked
        complete** so later turns are not deadlocked — the exception then
        propagates.
        """
        if index < 0:
            raise ValueError(f"turn index must be >= 0, got {index}")
        self._counter.check(index, timeout=timeout)
        try:
            yield
        finally:
            self._counter.increment(1)

    def run_turn(self, index: int, fn: Callable[[], T], timeout: float | None = None) -> T:
        """Run ``fn`` as the ``index``-th entrant and return its result."""
        with self.turn(index, timeout=timeout):
            return fn()

    def __repr__(self) -> str:
        return f"<OrderedRegion completed={self._counter.value}>"
