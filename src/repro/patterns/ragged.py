"""Ragged barriers (paper §5.1).

A traditional barrier makes every thread wait for *all* threads each
step.  A ragged barrier keeps the same program structure but each thread
waits only until *its own* data dependencies are satisfied — in the
paper's words, synchronization "between pairs of neighboring threads via
an array of counters".

:class:`RaggedBarrier` packages the §5.1 protocol: participant ``i`` owns
counter ``c[i]``; it announces progress with :meth:`advance` and waits for
a specific neighbour's progress with :meth:`wait_for`.  Boundary
participants that never compute (the constant end cells of the heat
simulation) are emulated with :meth:`preload`, which pushes their counter
past every level anyone will ever check — the exact
``c[0].Increment(2*numSteps)`` trick of the paper's listing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter
from repro.core.multiwait import check_all

__all__ = ["RaggedBarrier"]


class RaggedBarrier:
    """An array of per-participant counters for neighbour synchronization.

    Parameters
    ----------
    participants:
        Number of participant slots (counters).
    counter_factory:
        Optional factory so callers can substitute traced or simulated
        counters; defaults to :class:`~repro.core.counter.MonotonicCounter`.
    """

    __slots__ = ("_counters",)

    def __init__(
        self,
        participants: int,
        *,
        counter_factory: Callable[[str], CounterProtocol] | None = None,
    ) -> None:
        if participants < 1:
            raise ValueError(f"participants must be >= 1, got {participants}")
        factory = counter_factory or (lambda name: MonotonicCounter(name=name))
        self._counters: Sequence[CounterProtocol] = tuple(
            factory(f"ragged[{i}]") for i in range(participants)
        )

    @property
    def participants(self) -> int:
        return len(self._counters)

    def counter(self, i: int) -> CounterProtocol:
        """Participant ``i``'s counter (for inspection)."""
        return self._counters[i]

    def advance(self, i: int, ticks: int = 1) -> None:
        """Announce that participant ``i`` made ``ticks`` units of progress."""
        self._counters[i].increment(ticks)

    def wait_for(self, j: int, ticks: int, timeout: float | None = None) -> None:
        """Suspend until participant ``j`` has made at least ``ticks`` progress."""
        self._counters[j].check(ticks, timeout=timeout)

    def wait_for_all(
        self, needs: Iterable[tuple[int, int]], timeout: float | None = None
    ) -> None:
        """Suspend until EVERY ``(participant, ticks)`` need is satisfied.

        The batched form of :meth:`wait_for` for steps that depend on
        several neighbours (e.g. both stencil edges): the waits are
        delegated to :func:`repro.core.multiwait.check_all`.  Correct for
        the same stability reason sequential waits are — a neighbour's
        progress cannot regress, so while the thread is parked on the
        first lagging neighbour the others keep satisfying their
        conditions — and with a ``timeout`` the budget is shared across
        all needs.
        """
        check_all(
            [(self._counters[j], ticks) for j, ticks in needs], timeout=timeout
        )

    def preload(self, i: int, ticks: int) -> None:
        """Mark participant ``i`` as pre-completed through ``ticks`` progress.

        Used for boundary participants whose state never changes, so their
        neighbours' ``wait_for`` calls always pass (§5.1's
        ``c[0].Increment(2*numSteps)``).
        """
        self._counters[i].increment(ticks)

    def progress(self, i: int) -> int:
        """Participant ``i``'s announced progress (diagnostic only)."""
        return self._counters[i].value

    def __repr__(self) -> str:
        values = ", ".join(str(c.value) for c in self._counters)
        return f"<RaggedBarrier [{values}]>"
