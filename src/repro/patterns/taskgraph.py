"""A task-DAG runner synchronized entirely by counters.

The general form of the paper's dataflow style (§5.3, §8): a directed
acyclic graph of tasks, each produced-once and consumed by any number of
dependents.  Every task gets a :class:`~repro.patterns.cells.DataflowCell`
(a payload + one counter level); a dependent simply ``read()``s its
inputs — monotone conditions mean no wait loops, no condition-variable
choreography, and by §6 the whole execution is deterministic and
equivalent to any topological sequential order.

Failure semantics: a failing task poisons its cell so dependents fail
fast with :class:`DependencyError` instead of suspending forever; the
original exceptions surface through the structured construct's
``MultithreadedBlockError``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.patterns.cells import DataflowCell
from repro.structured.forloop import multithreaded_for

__all__ = ["TaskGraph", "CycleError", "DependencyError"]


class CycleError(ValueError):
    """The graph contains a dependency cycle (reported with a witness)."""


class DependencyError(RuntimeError):
    """A task's dependency failed; carries the upstream task's name."""


class _Poison:
    __slots__ = ("source",)

    def __init__(self, source: str) -> None:
        self.source = source


class TaskGraph:
    """Build a DAG of named tasks, then run it with one thread per task.

    >>> graph = TaskGraph()
    >>> graph.add("a", lambda: 2)
    >>> graph.add("b", lambda: 3)
    >>> graph.add("sum", lambda a, b: a + b, deps=("a", "b"))
    >>> graph.run()["sum"]
    5
    """

    def __init__(self) -> None:
        self._tasks: dict[str, tuple[Callable[..., Any], tuple[str, ...]]] = {}

    def add(self, name: str, fn: Callable[..., Any], deps: tuple[str, ...] | list[str] = ()) -> None:
        """Register task ``name`` computing ``fn(*dep_results)``.

        Dependencies must already be registered (which incidentally makes
        cycles impossible to *construct*; :meth:`run` still validates, so
        graphs assembled by other means fail loudly too).
        """
        if not callable(fn):
            raise TypeError(f"task {name!r}: fn must be callable, got {fn!r}")
        if name in self._tasks:
            raise ValueError(f"task {name!r} already registered")
        deps = tuple(deps)
        for dep in deps:
            if dep not in self._tasks:
                raise ValueError(f"task {name!r}: unknown dependency {dep!r}")
        self._tasks[name] = (fn, deps)

    def __len__(self) -> int:
        return len(self._tasks)

    def _check_acyclic(self) -> list[str]:
        """Topological order (raises :class:`CycleError` with a witness)."""
        order: list[str] = []
        state: dict[str, int] = {}  # 0 visiting, 1 done
        stack: list[str] = []

        def visit(node: str) -> None:
            mark = state.get(node)
            if mark == 1:
                return
            if mark == 0:
                cycle = stack[stack.index(node):] + [node]
                raise CycleError(" -> ".join(cycle))
            state[node] = 0
            stack.append(node)
            for dep in self._tasks[node][1]:
                visit(dep)
            stack.pop()
            state[node] = 1
            order.append(node)

        for name in self._tasks:
            visit(name)
        return order

    def run(self, *, timeout: float | None = None) -> dict[str, Any]:
        """Execute the graph; returns ``{task name: result}``.

        One thread per task (the paper's model); each suspends on its
        inputs' cells and publishes its own.  ``timeout`` bounds every
        individual dependency wait.
        """
        self._check_acyclic()
        cells: dict[str, DataflowCell[Any]] = {
            name: DataflowCell() for name in self._tasks
        }

        def runner(name: str) -> Any:
            fn, deps = self._tasks[name]
            inputs = []
            for dep in deps:
                value = cells[dep].read(timeout=timeout)
                if isinstance(value, _Poison):
                    poison = _Poison(value.source)
                    cells[name].assign(poison)
                    raise DependencyError(
                        f"task {name!r} cannot run: upstream {value.source!r} failed"
                    )
                inputs.append(value)
            try:
                result = fn(*inputs)
            except BaseException:
                cells[name].assign(_Poison(name))
                raise
            cells[name].assign(result)
            return result

        names = list(self._tasks)
        results = multithreaded_for(runner, names, name="taskgraph")
        return dict(zip(names, results))

    def __repr__(self) -> str:
        edges = sum(len(deps) for _, deps in self._tasks.values())
        return f"<TaskGraph tasks={len(self._tasks)} edges={edges}>"
