"""2-D wavefront dataflow (a §5 "many other situations" pattern).

Dynamic-programming grids where cell ``(i, j)`` depends on ``(i-1, j)``
and ``(i, j-1)`` (edit distance, LCS, Smith-Waterman, ...) are a classic
dataflow workload.  With one thread per row-block and one counter per
thread, thread ``t`` increments its counter after finishing each column
block, and thread ``t+1`` checks it before starting the same column block
— a diagonal "wavefront" sweeps the grid with no barrier anywhere.

This is the same ragged-barrier idea as §5.1 but with a genuinely 2-D
dependency structure, which makes it the sharpest demonstration of
"threads can be many iterations apart" (here: many *columns* apart).
"""

from __future__ import annotations

from typing import Callable

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter
from repro.structured.forloop import block_range, multithreaded_for

__all__ = ["wavefront_run"]


def wavefront_run(
    rows: int,
    cols: int,
    cell_fn: Callable[[int, int], None],
    *,
    num_threads: int,
    col_block: int = 1,
    sync_tile: int = 1,
    counter_factory: Callable[[str], CounterProtocol] | None = None,
) -> None:
    """Execute ``cell_fn(i, j)`` for every grid cell, respecting
    (i-1, j) and (i, j-1) dependencies, with row-block parallelism.

    Rows are partitioned into ``num_threads`` contiguous blocks (one
    thread each); each thread walks its rows column-by-column in blocks of
    ``col_block`` columns, waiting on the previous thread's counter before
    each column block.  ``cell_fn`` must only read cells above/left of the
    one it computes (the usual DP contract); within one thread's block the
    row-major order satisfies that automatically.

    ``sync_tile`` coarsens the *synchronization* granularity on top of the
    compute granularity: a thread handles ``sync_tile`` column blocks per
    synchronization round, issuing one ``check`` for the **highest** level
    the tile needs and one batched ``increment(tile)`` when it completes —
    2 counter operations per tile instead of per block.  Checking ahead is
    sound because dependencies only flow from thread ``t-1`` to ``t``
    (the predecessor finishes its blocks regardless of its successors, so
    waiting for more of its progress can only delay, never deadlock) —
    the monotone level ordering makes the coarser wait equivalent to the
    conjunction of the per-block waits it replaces.  The price is
    pipeline slack: thread ``t`` cannot start a tile until ``t-1``
    finished *all* of it, so very large tiles serialize the wavefront.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if col_block < 1:
        raise ValueError(f"col_block must be >= 1, got {col_block}")
    if sync_tile < 1:
        raise ValueError(f"sync_tile must be >= 1, got {sync_tile}")
    factory = counter_factory or (lambda name: MonotonicCounter(name=name))
    num_threads = min(num_threads, rows)
    done = [factory(f"wavefront[{t}]") for t in range(num_threads)]
    blocks = [
        (j_start, min(j_start + col_block, cols))
        for j_start in range(0, cols, col_block)
    ]

    def worker(t: int) -> None:
        my_rows = block_range(t, rows, num_threads)
        for tile_start in range(0, len(blocks), sync_tile):
            tile = blocks[tile_start : tile_start + sync_tile]
            if t > 0:
                # One wait for the whole tile: the thread above must have
                # finished ALL these column blocks for all of its rows
                # (its counter counts column blocks).
                done[t - 1].check(tile_start + len(tile))
            for j_start, j_end in tile:
                for i in my_rows:
                    for j in range(j_start, j_end):
                        cell_fn(i, j)
            done[t].increment(len(tile))

    multithreaded_for(worker, range(num_threads), name="wavefront")
