"""Deterministic virtual-time thread simulator.

The performance substrate of this reproduction: simulated threads are
generators yielding syscalls (:class:`Compute`, ``counter.check(...)``,
...); the :class:`Simulation` scheduler interprets them against virtual
time, so the makespan of a program is the critical path of its
synchronization structure — measured exactly, deterministically, and
GIL-free.  See ``DESIGN.md`` §2 for why this substitution preserves the
paper's performance claims.
"""

from repro.simthread.primitives import (
    SimBarrier,
    SimChannel,
    SimCounter,
    SimDeadlockError,
    SimEvent,
    SimLock,
    SimSemaphore,
)
from repro.simthread.scheduler import Simulation, SimResult, SimTaskError
from repro.simthread.syscalls import (
    BarrierPass,
    ChannelGet,
    ChannelPut,
    CheckOp,
    Compute,
    Delay,
    EventCheck,
    EventSet,
    IncrementOp,
    LockAcquire,
    LockRelease,
    SemAcquire,
    SemRelease,
    Syscall,
)
from repro.simthread.task import Task, TaskState, TaskStats
from repro.simthread.tracing import TraceEvent, TraceRecorder, render_gantt

__all__ = [
    "Simulation",
    "SimResult",
    "SimTaskError",
    "SimCounter",
    "SimEvent",
    "SimBarrier",
    "SimLock",
    "SimSemaphore",
    "SimChannel",
    "SimDeadlockError",
    "Task",
    "TaskState",
    "TaskStats",
    "TraceEvent",
    "TraceRecorder",
    "render_gantt",
    "Syscall",
    "Compute",
    "Delay",
    "CheckOp",
    "IncrementOp",
    "EventSet",
    "EventCheck",
    "BarrierPass",
    "LockAcquire",
    "LockRelease",
    "SemAcquire",
    "SemRelease",
    "ChannelPut",
    "ChannelGet",
]
