"""Simulated synchronization primitives.

Virtual-time counterparts of :mod:`repro.core` and :mod:`repro.sync`:
``SimCounter``, ``SimEvent``, ``SimBarrier``, ``SimLock``,
``SimSemaphore``, ``SimChannel``.  User code calls the familiar method
names, which **construct syscalls** to be yielded::

    yield counter.check(level)
    yield counter.increment(1)

The underscore methods implement the operational semantics and are called
by the scheduler when it interprets the syscall.  All blocking follows
the same discipline: the primitive either resumes the task at the current
virtual instant or records it in a wait queue and marks it blocked;
wait-time accounting happens in :meth:`repro.simthread.task.Task.unblock`.

Nondeterminism lives exactly where it does on real hardware: in
*contended lock/semaphore grant order*, resolved by the simulation's
scheduling policy (deterministic FIFO, or seeded-random to emulate timing
races).  Counter and barrier releases are insensitive to grant order —
which is the paper's determinacy argument, and the E7 experiments verify
it by sweeping seeds.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING

from repro.simthread.syscalls import (
    BarrierPass,
    ChannelGet,
    ChannelPut,
    CheckOp,
    EventCheck,
    EventSet,
    IncrementOp,
    LockAcquire,
    LockRelease,
    SemAcquire,
    SemRelease,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simthread.scheduler import Simulation
    from repro.simthread.task import Task

__all__ = [
    "SimCounter",
    "SimEvent",
    "SimBarrier",
    "SimLock",
    "SimSemaphore",
    "SimChannel",
    "SimDeadlockError",
]


class SimDeadlockError(RuntimeError):
    """The simulation stalled with blocked tasks and no runnable event."""


class SimCounter:
    """Virtual-time monotonic counter.

    Waiters are kept in a heap keyed by level — the simulator analogue of
    the paper's ordered wait list.  ``max_live_levels`` mirrors
    :class:`repro.core.stats.CounterStats` for the E8 complexity claims.
    """

    __slots__ = ("name", "value", "_waiters", "_seq", "max_live_levels", "max_live_waiters")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0
        self._waiters: list[tuple[int, int, "Task"]] = []
        self._seq = 0
        self.max_live_levels = 0
        self.max_live_waiters = 0

    # user-facing syscall constructors -----------------------------------
    def check(self, level: int) -> CheckOp:
        return CheckOp(self, level)

    def increment(self, amount: int = 1) -> IncrementOp:
        return IncrementOp(self, amount)

    # scheduler-facing semantics ------------------------------------------
    def _check(self, sim: "Simulation", task: "Task", level: int) -> None:
        if self.value >= level:
            sim._resume(task, at=sim.now)
            return
        self._seq += 1
        heapq.heappush(self._waiters, (level, self._seq, task))
        task.block(sim.now)
        live_levels = len({entry[0] for entry in self._waiters})
        self.max_live_levels = max(self.max_live_levels, live_levels)
        self.max_live_waiters = max(self.max_live_waiters, len(self._waiters))

    def _increment(self, sim: "Simulation", task: "Task", amount: int) -> None:
        self.value += amount
        while self._waiters and self._waiters[0][0] <= self.value:
            _, _, waiter = heapq.heappop(self._waiters)
            waiter.unblock(sim.now)
            sim._resume(waiter, at=sim.now)
        sim._resume(task, at=sim.now)

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"<SimCounter {self.name!r} value={self.value} waiting={self.waiting}>"


class SimEvent:
    """Virtual-time sticky event (the paper's Set/Check condition)."""

    __slots__ = ("name", "is_set", "_waiters")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self.is_set = False
        self._waiters: list["Task"] = []

    def set(self) -> EventSet:
        return EventSet(self)

    def check(self) -> EventCheck:
        return EventCheck(self)

    def _set(self, sim: "Simulation", task: "Task") -> None:
        self.is_set = True
        for waiter in self._waiters:
            waiter.unblock(sim.now)
            sim._resume(waiter, at=sim.now)
        self._waiters.clear()
        sim._resume(task, at=sim.now)

    def _check(self, sim: "Simulation", task: "Task") -> None:
        if self.is_set:
            sim._resume(task, at=sim.now)
        else:
            self._waiters.append(task)
            task.block(sim.now)

    def __repr__(self) -> str:
        return f"<SimEvent {self.name!r} {'set' if self.is_set else 'unset'}>"


class SimBarrier:
    """Virtual-time N-way cyclic barrier."""

    __slots__ = ("name", "parties", "_arrived", "episodes")

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.name = name
        self.parties = parties
        self._arrived: list["Task"] = []
        self.episodes = 0

    def pass_(self) -> BarrierPass:
        return BarrierPass(self)

    def _pass(self, sim: "Simulation", task: "Task") -> None:
        self._arrived.append(task)
        if len(self._arrived) == self.parties:
            self.episodes += 1
            arrived, self._arrived = self._arrived, []
            for waiter in arrived:
                waiter.unblock(sim.now)
                sim._resume(waiter, at=sim.now)
        else:
            task.block(sim.now)

    def __repr__(self) -> str:
        return f"<SimBarrier {self.name!r} {len(self._arrived)}/{self.parties}>"


class SimLock:
    """Virtual-time mutex; contended grant order follows the sim policy."""

    __slots__ = ("name", "owner", "_queue")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.owner: "Task | None" = None
        self._queue: list["Task"] = []

    def acquire(self) -> LockAcquire:
        return LockAcquire(self)

    def release(self) -> LockRelease:
        return LockRelease(self)

    def _acquire(self, sim: "Simulation", task: "Task") -> None:
        if self.owner is None:
            self.owner = task
            sim._resume(task, at=sim.now)
        else:
            self._queue.append(task)
            task.block(sim.now)

    def _release(self, sim: "Simulation", task: "Task") -> None:
        if self.owner is not task:
            raise RuntimeError(f"{task!r} released {self!r} it does not own")
        if self._queue:
            index = sim._pick_index(len(self._queue))
            grantee = self._queue.pop(index)
            self.owner = grantee
            grantee.unblock(sim.now)
            sim._resume(grantee, at=sim.now)
        else:
            self.owner = None
        sim._resume(task, at=sim.now)

    def __repr__(self) -> str:
        holder = self.owner.name if self.owner else None
        return f"<SimLock {self.name!r} owner={holder!r} queued={len(self._queue)}>"


class SimSemaphore:
    """Virtual-time counting semaphore; grant order follows the sim policy."""

    __slots__ = ("name", "value", "_queue")

    def __init__(self, initial: int = 0, name: str = "semaphore") -> None:
        if initial < 0:
            raise ValueError(f"initial must be >= 0, got {initial}")
        self.name = name
        self.value = initial
        self._queue: list[tuple[int, "Task"]] = []

    def acquire(self, n: int = 1) -> SemAcquire:
        return SemAcquire(self, n)

    def release(self, n: int = 1) -> SemRelease:
        return SemRelease(self, n)

    def _acquire(self, sim: "Simulation", task: "Task", n: int) -> None:
        if self.value >= n and not self._queue:
            self.value -= n
            sim._resume(task, at=sim.now)
        else:
            self._queue.append((n, task))
            task.block(sim.now)

    def _release(self, sim: "Simulation", task: "Task", n: int) -> None:
        self.value += n
        self._drain(sim)
        sim._resume(task, at=sim.now)

    def _drain(self, sim: "Simulation") -> None:
        # Grant any satisfiable waiter, selection per policy; repeat until
        # no waiter fits the remaining value.
        while self._queue:
            satisfiable = [i for i, (need, _) in enumerate(self._queue) if need <= self.value]
            if not satisfiable:
                return
            index = satisfiable[sim._pick_index(len(satisfiable))]
            need, grantee = self._queue.pop(index)
            self.value -= need
            grantee.unblock(sim.now)
            sim._resume(grantee, at=sim.now)

    def __repr__(self) -> str:
        return f"<SimSemaphore {self.name!r} value={self.value} queued={len(self._queue)}>"


class SimChannel:
    """Virtual-time bounded FIFO channel."""

    __slots__ = ("name", "capacity", "_items", "_putters", "_getters")

    def __init__(self, capacity: int, name: str = "channel") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: deque[object] = deque()
        self._putters: deque[tuple[object, "Task"]] = deque()
        self._getters: deque["Task"] = deque()

    def put(self, item: object) -> ChannelPut:
        return ChannelPut(self, item)

    def get(self) -> ChannelGet:
        return ChannelGet(self)

    def _put(self, sim: "Simulation", task: "Task", item: object) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.unblock(sim.now)
            sim._resume(getter, at=sim.now, value=item)
            sim._resume(task, at=sim.now)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            sim._resume(task, at=sim.now)
        else:
            self._putters.append((item, task))
            task.block(sim.now)

    def _get(self, sim: "Simulation", task: "Task") -> None:
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pending, putter = self._putters.popleft()
                self._items.append(pending)
                putter.unblock(sim.now)
                sim._resume(putter, at=sim.now)
            sim._resume(task, at=sim.now, value=item)
        elif self._putters:
            pending, putter = self._putters.popleft()
            putter.unblock(sim.now)
            sim._resume(putter, at=sim.now)
            sim._resume(task, at=sim.now, value=pending)
        else:
            self._getters.append(task)
            task.block(sim.now)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"<SimChannel {self.name!r} depth={len(self._items)}/{self.capacity}>"
