"""Discrete-event scheduler: virtual time for simulated threads.

Why a simulator in a paper reproduction?  The paper's performance
arguments (§4, §5.1) are about *dependency structure*: a barrier makes
every thread wait for the slowest, a counter lets each thread proceed the
instant its own data is ready.  On CPython, the GIL serializes compute and
would drown that signal in noise; in virtual time the signal **is** the
measurement.  Each task occupies its own processor (or queues, under a
bounded pool), compute advances its local clock, synchronization imposes
the ordering — so the simulated makespan is exactly the critical path of
the synchronization structure, reproducibly, on any host.

Determinism: every tie is broken by spawn order and event sequence
numbers, and the only deliberate nondeterminism — contended lock /
semaphore grant order — is controlled by ``policy`` (``"fifo"``,
``"lifo"``, or ``"random"`` with a seed).  Running the same program with
the same seed always yields the same trace; sweeping seeds emulates timing
races for the E7 experiments.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from repro.simthread.primitives import (
    SimBarrier,
    SimChannel,
    SimCounter,
    SimDeadlockError,
    SimEvent,
    SimLock,
    SimSemaphore,
)
from repro.simthread.syscalls import Compute, Delay, Syscall
from repro.simthread.task import Task, TaskState, TaskStats

__all__ = ["Simulation", "SimResult", "SimTaskError"]


class SimTaskError(ExceptionGroup):
    """All exceptions raised by tasks during one simulation run."""


@dataclass(slots=True)
class SimResult:
    """Outcome of a completed simulation."""

    #: Virtual completion time of the whole program (max task finish).
    makespan: float
    #: Per-task accounting, keyed by task name.
    tasks: dict[str, TaskStats] = field(default_factory=dict)
    #: Per-task return values, keyed by task name.
    returns: dict[str, Any] = field(default_factory=dict)

    @property
    def total_compute(self) -> float:
        """Sum of processor-busy time across tasks (the serial work)."""
        return sum(stats.compute_time for stats in self.tasks.values())

    @property
    def total_wait(self) -> float:
        """Sum of synchronization wait across tasks (the coordination cost)."""
        return sum(stats.wait_time for stats in self.tasks.values())

    @property
    def speedup(self) -> float:
        """Serial work divided by makespan — parallel speedup in virtual time."""
        return self.total_compute / self.makespan if self.makespan else float("nan")

    def __str__(self) -> str:
        return (
            f"SimResult(makespan={self.makespan:.3f}, tasks={len(self.tasks)}, "
            f"speedup={self.speedup:.2f}, total_wait={self.total_wait:.3f})"
        )


class Simulation:
    """A virtual-time multithreaded machine.

    Parameters
    ----------
    processors:
        ``None`` (default) models one processor per task — the paper's
        multiprocessor setting.  An int bounds the pool; tasks then queue
        (FIFO) for processors during ``Compute``.
    policy:
        Grant order for contended locks/semaphores: ``"fifo"``,
        ``"lifo"``, or ``"random"``.
    seed:
        Seed for the ``"random"`` policy.

    Example
    -------
    >>> sim = Simulation()
    >>> c = sim.counter("done")
    >>> def producer():
    ...     yield Compute(2.0)
    ...     yield c.increment(1)
    >>> def consumer():
    ...     yield c.check(1)
    ...     yield Compute(1.0)
    >>> _ = sim.spawn(producer(), name="p")
    >>> _ = sim.spawn(consumer(), name="q")
    >>> sim.run().makespan
    3.0
    """

    def __init__(
        self,
        *,
        processors: int | None = None,
        policy: str = "fifo",
        seed: int = 0,
        trace: bool = False,
    ) -> None:
        if processors is not None and processors < 1:
            raise ValueError(f"processors must be >= 1 or None, got {processors}")
        if policy not in ("fifo", "lifo", "random"):
            raise ValueError(f"policy must be fifo/lifo/random, got {policy!r}")
        if trace:
            from repro.simthread.tracing import TraceRecorder

            #: Optional execution trace (``None`` unless ``trace=True``).
            self.trace: "TraceRecorder | None" = TraceRecorder()
        else:
            self.trace = None
        self.now = 0.0
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._tasks: list[Task] = []
        self._policy = policy
        self._rng = random.Random(seed)
        self._processors = processors
        self._busy = 0
        self._cpu_queue: list[tuple[Task, float]] = []
        self._started = False

    # ------------------------------------------------------------ factories

    def counter(self, name: str = "counter") -> SimCounter:
        return SimCounter(name)

    def event(self, name: str = "event") -> SimEvent:
        return SimEvent(name)

    def barrier(self, parties: int, name: str = "barrier") -> SimBarrier:
        return SimBarrier(parties, name)

    def lock(self, name: str = "lock") -> SimLock:
        return SimLock(name)

    def semaphore(self, initial: int = 0, name: str = "semaphore") -> SimSemaphore:
        return SimSemaphore(initial, name)

    def channel(self, capacity: int, name: str = "channel") -> SimChannel:
        return SimChannel(capacity, name)

    # ------------------------------------------------------------- spawning

    def spawn(self, gen: Generator[Any, Any, Any], *, name: str | None = None) -> Task:
        """Register a task; it starts at the current virtual instant.

        May be called before :meth:`run` (program setup) or from within a
        running task (dynamic spawning) — the child starts at ``sim.now``.
        """
        if not hasattr(gen, "send"):
            raise TypeError(
                f"spawn expects a generator (did you forget to call the function?), got {gen!r}"
            )
        task = Task(gen, name=name or f"task{len(self._tasks)}", seq=len(self._tasks))
        self._tasks.append(task)
        self._schedule(self.now, lambda: self._step(task))
        return task

    def spawn_all(self, gens: Iterable[Generator[Any, Any, Any]], *, prefix: str = "task") -> list[Task]:
        """Spawn many tasks with numbered names."""
        tasks = []
        for gen in gens:
            tasks.append(self.spawn(gen, name=f"{prefix}{len(tasks)}"))
        return tasks

    # ------------------------------------------------------------- main loop

    def run(self) -> SimResult:
        """Run until every task completes; raise on deadlock or task error."""
        if self._started:
            raise RuntimeError("Simulation.run() may only be called once")
        self._started = True
        while self._events:
            time, _, action = heapq.heappop(self._events)
            if time < self.now:
                raise AssertionError("virtual time went backwards")  # pragma: no cover
            self.now = time
            action()
        blocked = [task for task in self._tasks if task.state is not TaskState.DONE]
        if blocked:
            names = ", ".join(task.name for task in blocked)
            raise SimDeadlockError(
                f"simulation deadlocked at t={self.now}: {len(blocked)} task(s) "
                f"blocked forever: {names}"
            )
        errors = [task.error for task in self._tasks if task.error is not None]
        if errors:
            raise SimTaskError(f"{len(errors)} task(s) failed", errors)
        return SimResult(
            makespan=max((t.stats.finish_time for t in self._tasks), default=0.0),
            tasks={task.name: task.stats for task in self._tasks},
            returns={task.name: task.result for task in self._tasks},
        )

    # ------------------------------------------------------ scheduler internals

    def _schedule(self, at: float, action: Callable[[], None]) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (at, self._event_seq, action))

    def _resume(self, task: Task, *, at: float, value: Any = None) -> None:
        """Schedule the task's next generator step at virtual time ``at``."""
        task._send_value = value
        task.state = TaskState.READY
        self._schedule(at, lambda: self._step(task))

    def _step(self, task: Task) -> None:
        if task.state is TaskState.DONE:  # pragma: no cover - defensive
            return
        task.state = TaskState.RUNNING
        send_value, task._send_value = task._send_value, None
        try:
            syscall = task.gen.send(send_value)
        except StopIteration as stop:
            task.state = TaskState.DONE
            task.stats.finish_time = self.now
            task.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001 - aggregated in run()
            task.state = TaskState.DONE
            task.stats.finish_time = self.now
            task.error = exc
            return
        if not isinstance(syscall, Syscall):
            task.state = TaskState.DONE
            task.stats.finish_time = self.now
            task.error = TypeError(
                f"task {task.name!r} yielded {syscall!r}; tasks must yield Syscall objects"
            )
            return
        if not isinstance(syscall, (Compute, Delay)):
            task.stats.sync_ops += 1
        if self.trace is not None:
            self.trace.record(self.now, task, syscall)
            if isinstance(syscall, Delay):
                self.trace.record_busy(task, self.now, self.now + syscall.duration, "delay")
        syscall.apply(self, task)

    def _request_processor(self, task: Task, duration: float) -> None:
        if self._processors is None or self._busy < self._processors:
            self._busy += 1
            self._begin_compute(task, duration)
        else:
            self._cpu_queue.append((task, duration))
            task.block(self.now)

    def _begin_compute(self, task: Task, duration: float) -> None:
        task.stats.compute_time += duration
        if self.trace is not None:
            self.trace.record_busy(task, self.now, self.now + duration, "compute")

        def complete() -> None:
            self._busy -= 1
            if self._cpu_queue:
                queued, queued_duration = self._cpu_queue.pop(0)
                queued.unblock(self.now)
                self._busy += 1
                self._begin_compute(queued, queued_duration)
            self._step(task)

        self._schedule(self.now + duration, complete)

    def _pick_index(self, n: int) -> int:
        """Tie-break among n contenders per the scheduling policy."""
        if n == 1 or self._policy == "fifo":
            return 0
        if self._policy == "lifo":
            return n - 1
        return self._rng.randrange(n)

    def __repr__(self) -> str:
        pool = "∞" if self._processors is None else str(self._processors)
        return (
            f"<Simulation t={self.now} tasks={len(self._tasks)} "
            f"processors={pool} policy={self._policy}>"
        )
