"""Syscall vocabulary for simulated threads.

A simulated thread is a Python generator that *yields* syscall objects;
the scheduler interprets them against virtual time.  This mirrors how the
paper separates a thread's compute (which takes time) from its
synchronization operations (which impose ordering):

>>> def worker(c):
...     yield Compute(5.0)       # five units of processor work
...     yield c.check(3)         # suspend until counter >= 3
...     yield c.increment(1)     # announce progress

``yield from`` composes sub-generators, so simulated programs factor into
functions exactly like real threaded code.

Each syscall implements ``apply(sim, task)`` — its operational semantics
against the discrete-event scheduler.  The schedule explorer in
:mod:`repro.verify` reinterprets the same vocabulary with untimed
semantics for exhaustive interleaving search.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simthread.primitives import (
        SimBarrier,
        SimChannel,
        SimCounter,
        SimEvent,
        SimLock,
        SimSemaphore,
    )
    from repro.simthread.scheduler import Simulation
    from repro.simthread.task import Task

__all__ = [
    "Syscall",
    "Compute",
    "Delay",
    "CheckOp",
    "IncrementOp",
    "EventSet",
    "EventCheck",
    "BarrierPass",
    "LockAcquire",
    "LockRelease",
    "SemAcquire",
    "SemRelease",
    "ChannelPut",
    "ChannelGet",
]


class Syscall:
    """Base class; concrete syscalls define ``apply``."""

    __slots__ = ()

    def apply(self, sim: "Simulation", task: "Task") -> None:  # pragma: no cover
        raise NotImplementedError


class Compute(Syscall):
    """Occupy a processor for ``duration`` units of virtual time.

    With a bounded processor pool the task may first queue for a free
    processor; the queueing delay is accounted as wait time, the
    ``duration`` itself as compute time.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        self.duration = float(duration)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        sim._request_processor(task, self.duration)

    def __repr__(self) -> str:
        return f"Compute({self.duration})"


class Delay(Syscall):
    """Advance virtual time without occupying a processor (a sleep)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"delay duration must be >= 0, got {duration}")
        self.duration = float(duration)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        task.stats.delay_time += self.duration
        sim._resume(task, at=sim.now + self.duration)

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class CheckOp(Syscall):
    """``counter.check(level)``: suspend until the counter reaches level."""

    __slots__ = ("counter", "level")

    def __init__(self, counter: "SimCounter", level: int) -> None:
        if level < 0:
            raise ValueError(f"check level must be >= 0, got {level}")
        self.counter = counter
        self.level = int(level)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.counter._check(sim, task, self.level)

    def __repr__(self) -> str:
        return f"Check({self.counter.name}, {self.level})"


class IncrementOp(Syscall):
    """``counter.increment(amount)``: bump and release satisfied waiters."""

    __slots__ = ("counter", "amount")

    def __init__(self, counter: "SimCounter", amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"increment amount must be >= 0, got {amount}")
        self.counter = counter
        self.amount = int(amount)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.counter._increment(sim, task, self.amount)

    def __repr__(self) -> str:
        return f"Increment({self.counter.name}, {self.amount})"


class EventSet(Syscall):
    """Set a sticky event, releasing all its waiters."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent") -> None:
        self.event = event

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.event._set(sim, task)


class EventCheck(Syscall):
    """Suspend until a sticky event has been set."""

    __slots__ = ("event",)

    def __init__(self, event: "SimEvent") -> None:
        self.event = event

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.event._check(sim, task)


class BarrierPass(Syscall):
    """Arrive at an N-way barrier; all parties resume when the last arrives."""

    __slots__ = ("barrier",)

    def __init__(self, barrier: "SimBarrier") -> None:
        self.barrier = barrier

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.barrier._pass(sim, task)


class LockAcquire(Syscall):
    """Acquire a mutex; contended acquisition order is a scheduler policy."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SimLock") -> None:
        self.lock = lock

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.lock._acquire(sim, task)


class LockRelease(Syscall):
    """Release a mutex, granting it to a waiter per the scheduler policy."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SimLock") -> None:
        self.lock = lock

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.lock._release(sim, task)


class SemAcquire(Syscall):
    """P operation on a counting semaphore."""

    __slots__ = ("semaphore", "n")

    def __init__(self, semaphore: "SimSemaphore", n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.semaphore = semaphore
        self.n = int(n)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.semaphore._acquire(sim, task, self.n)


class SemRelease(Syscall):
    """V operation on a counting semaphore."""

    __slots__ = ("semaphore", "n")

    def __init__(self, semaphore: "SimSemaphore", n: int = 1) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.semaphore = semaphore
        self.n = int(n)

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.semaphore._release(sim, task, self.n)


class ChannelPut(Syscall):
    """Blocking put on a bounded channel."""

    __slots__ = ("channel", "item")

    def __init__(self, channel: "SimChannel", item: object) -> None:
        self.channel = channel
        self.item = item

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.channel._put(sim, task, self.item)


class ChannelGet(Syscall):
    """Blocking get on a bounded channel; the item becomes the yield's value."""

    __slots__ = ("channel",)

    def __init__(self, channel: "SimChannel") -> None:
        self.channel = channel

    def apply(self, sim: "Simulation", task: "Task") -> None:
        self.channel._get(sim, task)
