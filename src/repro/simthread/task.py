"""Simulated thread (task) bookkeeping."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator

__all__ = ["Task", "TaskState", "TaskStats"]


class TaskState(enum.Enum):
    """Lifecycle of a simulated thread."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass(slots=True)
class TaskStats:
    """Virtual-time accounting for one task.

    ``compute_time`` — time spent occupying a processor;
    ``wait_time``    — time blocked on synchronization (or queued for a
                       processor under a bounded pool);
    ``delay_time``   — explicit :class:`~repro.simthread.syscalls.Delay`;
    ``finish_time``  — virtual completion instant;
    ``sync_ops``     — number of synchronization syscalls executed.
    """

    compute_time: float = 0.0
    wait_time: float = 0.0
    delay_time: float = 0.0
    finish_time: float = 0.0
    sync_ops: int = 0


class Task:
    """One simulated thread: a generator plus scheduling state."""

    __slots__ = (
        "name",
        "gen",
        "state",
        "stats",
        "result",
        "error",
        "_send_value",
        "_blocked_since",
        "seq",
    )

    def __init__(self, gen: Generator[Any, Any, Any], name: str, seq: int) -> None:
        self.name = name
        self.gen = gen
        self.state = TaskState.READY
        self.stats = TaskStats()
        self.result: Any = None
        self.error: BaseException | None = None
        #: Value delivered to the generator at next resume (e.g. channel item).
        self._send_value: Any = None
        #: Virtual instant the task blocked, for wait-time accounting.
        self._blocked_since: float = 0.0
        #: Spawn order; used for deterministic tie-breaking.
        self.seq = seq

    def block(self, now: float) -> None:
        self.state = TaskState.BLOCKED
        self._blocked_since = now

    def unblock(self, now: float) -> None:
        if self.state is TaskState.BLOCKED:
            self.stats.wait_time += now - self._blocked_since
        self.state = TaskState.READY

    def __repr__(self) -> str:
        return f"<Task {self.name!r} {self.state.value}>"
