"""Execution tracing for the virtual-time simulator.

A :class:`TraceRecorder` attached to a :class:`~repro.simthread.Simulation`
collects one :class:`TraceEvent` per syscall dispatch, timestamped in
virtual time.  From the trace you can derive per-task busy/wait segments
(:meth:`TraceRecorder.segments`) and render a text Gantt chart
(:func:`render_gantt`) — the visual form of the barrier-vs-ragged
argument in §4/§5.1, see ``examples/gantt_chart.py``.

Tracing is opt-in (``Simulation(trace=True)``) and costs one list append
per syscall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.simthread.task import Task

__all__ = ["TraceEvent", "TraceRecorder", "render_gantt"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One dispatched syscall: virtual time, task, and its repr."""

    time: float
    task: str
    syscall: str


@dataclass(frozen=True, slots=True)
class Segment:
    """A busy interval of one task: [start, end) doing ``what``."""

    task: str
    start: float
    end: float
    what: str  # "compute" | "delay"


class TraceRecorder:
    """Collects trace events; computes busy segments per task."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._segments: list[Segment] = []

    def record(self, time: float, task: "Task", syscall: object) -> None:
        self.events.append(TraceEvent(time=time, task=task.name, syscall=repr(syscall)))

    def record_busy(self, task: "Task", start: float, end: float, what: str) -> None:
        self._segments.append(Segment(task=task.name, start=start, end=end, what=what))

    def segments(self) -> Sequence[Segment]:
        """Busy (compute/delay) intervals, in start order."""
        return sorted(self._segments, key=lambda s: (s.task, s.start))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<TraceRecorder events={len(self.events)} segments={len(self._segments)}>"


def render_gantt(recorder: TraceRecorder, *, width: int = 72, makespan: float | None = None) -> str:
    """Render busy segments as a text Gantt chart (one row per task).

    ``█`` marks processor-busy time, ``░`` explicit delays, spaces are
    synchronization waits — so barrier stalls appear as literal gaps.
    """
    segments = recorder.segments()
    if not segments:
        return "(no busy segments recorded)"
    end = makespan if makespan is not None else max(s.end for s in segments)
    if end <= 0:
        return "(zero-length trace)"
    scale = width / end
    rows: dict[str, list[str]] = {}
    for segment in segments:
        row = rows.setdefault(segment.task, [" "] * width)
        start_col = int(segment.start * scale)
        end_col = max(start_col + 1, int(segment.end * scale))
        mark = "█" if segment.what == "compute" else "░"
        for col in range(start_col, min(end_col, width)):
            row[col] = mark
    name_width = max(len(name) for name in rows)
    lines = [
        f"{name.rjust(name_width)} |{''.join(row)}|"
        for name, row in sorted(rows.items())
    ]
    legend = f"{'':>{name_width}}  0{'virtual time'.center(width - 2)}{end:g}"
    return "\n".join(lines + [legend])
