"""Structured multithreaded programming model (paper §3).

Python renderings of Dijkstra-style ``parbegin``/``parend`` with
quantification: :func:`multithreaded` (the block),
:func:`multithreaded_for` (the quantified loop), and :class:`ThreadScope`
(imperative spawning with the same join-boundary guarantee).  The
execution-mode switch (:func:`sequential_execution`) provides §6's
"ignore the multithreaded keyword" semantics for sequential-equivalence
testing.
"""

from repro.structured.block import MultithreadedBlockError, multithreaded
from repro.structured.execution import (
    ExecutionMode,
    current_mode,
    execution_mode,
    sequential_execution,
)
from repro.structured.forloop import block_range, multithreaded_for
from repro.structured.scope import SpawnHandle, ThreadScope

__all__ = [
    "multithreaded",
    "multithreaded_for",
    "block_range",
    "ThreadScope",
    "SpawnHandle",
    "MultithreadedBlockError",
    "ExecutionMode",
    "current_mode",
    "execution_mode",
    "sequential_execution",
]
