"""The ``multithreaded`` block (§3), as a Python function.

The paper writes::

    multithreaded {
        statement
        ...
    }

We write::

    multithreaded(thunk_a, thunk_b, ...)

Each thunk is run as an asynchronous thread sharing the caller's address
space; the call does not return until every thread has terminated (the
construct is a *join* boundary, like the paper's block).  Return values
are collected in statement order; exceptions from any statement are
aggregated into an :class:`ExceptionGroup` raised after all threads have
terminated, so the join-boundary guarantee holds even on failure.

Under :func:`~repro.structured.execution.sequential_execution` the same
call runs the thunks in textual order on the calling thread — the
paper's §6 "ignore the multithreaded keyword" semantics.
"""

from __future__ import annotations

import contextvars
import threading
from typing import Any, Callable, Sequence

from repro.structured.execution import ExecutionMode, current_mode, fresh_logical_thread

__all__ = ["multithreaded", "MultithreadedBlockError"]


class MultithreadedBlockError(ExceptionGroup):
    """All exceptions raised by statements of one multithreaded block."""


def _run_threaded(thunks: Sequence[Callable[[], Any]], name: str) -> list[Any]:
    results: list[Any] = [None] * len(thunks)
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def runner(index: int, thunk: Callable[[], Any], ctx: contextvars.Context) -> None:
        try:
            results[index] = fresh_logical_thread(ctx, thunk)
        except BaseException as exc:  # noqa: BLE001 - aggregated and re-raised
            with errors_lock:
                errors.append(exc)

    threads = [
        threading.Thread(
            target=runner,
            args=(i, thunk, contextvars.copy_context()),
            name=f"{name}-{i}",
        )
        for i, thunk in enumerate(thunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise MultithreadedBlockError(
            f"{len(errors)} of {len(thunks)} statements failed", errors
        )
    return results


def _run_sequential(thunks: Sequence[Callable[[], Any]]) -> list[Any]:
    results: list[Any] = []
    for thunk in thunks:
        try:
            # Each statement still gets its own logical thread identity, so
            # identity-sensitive analyses see the same structure either way.
            results.append(fresh_logical_thread(contextvars.copy_context(), thunk))
        except BaseException as exc:  # noqa: BLE001 - uniform failure type
            raise MultithreadedBlockError("1 statement failed", [exc]) from None
    return results


def multithreaded(
    *thunks: Callable[[], Any],
    mode: ExecutionMode | None = None,
    name: str = "multithreaded",
) -> list[Any]:
    """Execute ``thunks`` as the statements of a multithreaded block.

    Parameters
    ----------
    thunks:
        Zero-argument callables — the block's statements.  Use
        ``functools.partial`` (or a closure) to bind arguments.
    mode:
        Override the ambient execution mode (threaded/sequential).
    name:
        Prefix for spawned thread names (diagnostics and tracing).

    Returns the statements' return values in statement order.

    >>> from repro.structured import multithreaded
    >>> multithreaded(lambda: 1, lambda: 2)
    [1, 2]
    """
    for thunk in thunks:
        if not callable(thunk):
            raise TypeError(f"multithreaded statements must be callable, got {thunk!r}")
    effective = mode if mode is not None else current_mode()
    if not thunks:
        return []
    if effective is ExecutionMode.SEQUENTIAL:
        return _run_sequential(thunks)
    return _run_threaded(thunks, name)
