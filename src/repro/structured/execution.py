"""Execution-mode plumbing for the structured threading model.

Section 6 of the paper defines *sequential execution* of a multithreaded
program as "execution ignoring the ``multithreaded`` keyword": statements
of a multithreaded block run in textual order, iterations of a
multithreaded for-loop run in index order, all on the calling thread.
The determinacy theorem then says: for a counter-synchronized program
obeying the shared-variable discipline, if sequential execution does not
deadlock, every multithreaded execution terminates with the same result.

This module provides the mode switch that makes the same program text
runnable both ways, which is what the sequential-equivalence tests and the
E7 experiments exercise.

The mode is carried in a :mod:`contextvars` context variable and is
explicitly propagated into threads spawned by the structured constructs,
so nested constructs inherit the enclosing mode.
"""

from __future__ import annotations

import contextvars
import enum
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ExecutionMode",
    "current_mode",
    "execution_mode",
    "sequential_execution",
    "current_logical_thread",
    "fresh_logical_thread",
]


class ExecutionMode(enum.Enum):
    """How structured constructs execute their constituent statements."""

    #: Spawn one thread per statement/iteration (the paper's semantics).
    THREADED = "threaded"
    #: Run statements/iterations in order on the calling thread
    #: (the paper's "ignore the multithreaded keyword" semantics).
    SEQUENTIAL = "sequential"


_mode: contextvars.ContextVar[ExecutionMode] = contextvars.ContextVar(
    "repro_execution_mode", default=ExecutionMode.THREADED
)


def current_mode() -> ExecutionMode:
    """The execution mode in effect for structured constructs."""
    return _mode.get()


@contextmanager
def execution_mode(mode: ExecutionMode) -> Iterator[None]:
    """Run a block under the given execution mode.

    >>> from repro.structured import execution_mode, ExecutionMode
    >>> with execution_mode(ExecutionMode.SEQUENTIAL):
    ...     pass  # all multithreaded constructs here run sequentially
    """
    if not isinstance(mode, ExecutionMode):
        raise TypeError(f"mode must be an ExecutionMode, got {mode!r}")
    token = _mode.set(mode)
    try:
        yield
    finally:
        _mode.reset(token)


@contextmanager
def sequential_execution() -> Iterator[None]:
    """Shorthand for ``execution_mode(ExecutionMode.SEQUENTIAL)``."""
    with execution_mode(ExecutionMode.SEQUENTIAL):
        yield


# ---------------------------------------------------------------------------
# Logical thread identity.
#
# Analyses such as the §6 determinacy checker must see each *statement* of a
# multithreaded construct as its own thread — even under sequential
# execution, where all statements share the calling OS thread.  (Otherwise a
# racy program would look ordered whenever it happened to run sequentially,
# breaking the "one execution certifies all executions" property.)  Every
# statement therefore runs with a fresh opaque token in this context
# variable; identity-sensitive tools key on the token when present and fall
# back to the OS thread when code runs outside any construct.

_logical_thread: contextvars.ContextVar[object | None] = contextvars.ContextVar(
    "repro_logical_thread", default=None
)


def current_logical_thread() -> object | None:
    """The statement token of the enclosing multithreaded construct, if any."""
    return _logical_thread.get()


def fresh_logical_thread(ctx: contextvars.Context, fn, /, *args, **kwargs):
    """Run ``fn`` inside ``ctx`` under a brand-new logical thread token.

    Used by the structured constructs for every statement, in both
    threaded and sequential modes.
    """

    def with_token():
        _logical_thread.set(object())
        return fn(*args, **kwargs)

    return ctx.run(with_token)
