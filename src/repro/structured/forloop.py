"""The ``multithreaded`` for-loop (§3), as a Python function.

The paper writes::

    multithreaded
    for (int i = lo; i < hi; i += step)
        statement

We write::

    multithreaded_for(body, range(lo, hi, step))

One thread per iteration, each with its own copy of the control variable
(Python closures over the loop index are materialized per-iteration, so
the "local copy" requirement holds by construction).  The call joins all
iteration threads before returning — the loop is a join boundary exactly
like the block.

:func:`block_range` implements the paper's ubiquitous
``t*N/numThreads .. (t+1)*N/numThreads`` row partitioning so applications
share one audited formula.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.structured.block import multithreaded
from repro.structured.execution import ExecutionMode

__all__ = ["multithreaded_for", "block_range"]


def multithreaded_for(
    body: Callable[[Any], Any],
    iterations: Iterable[Any],
    *,
    mode: ExecutionMode | None = None,
    name: str = "multithreaded-for",
) -> list[Any]:
    """Run ``body(i)`` for each ``i`` as the iterations of a multithreaded loop.

    ``iterations`` is typically a ``range`` (the paper's single
    control-variable scheme) but any finite iterable works — it is
    materialized up front, mirroring the paper's requirement that the
    iteration scheme not be modified by the loop body.

    Returns ``[body(i) for i in iterations]`` in iteration order.

    >>> from repro.structured import multithreaded_for
    >>> multithreaded_for(lambda i: i * i, range(4))
    [0, 1, 4, 9]
    """
    if not callable(body):
        raise TypeError(f"body must be callable, got {body!r}")
    items: Sequence[Any] = list(iterations)

    def make_thunk(value: Any) -> Callable[[], Any]:
        # A dedicated function (not a lambda in the loop) guarantees each
        # thread binds its own copy of the control variable.
        def thunk() -> Any:
            return body(value)

        return thunk

    return multithreaded(*(make_thunk(i) for i in items), mode=mode, name=name)


def block_range(part: int, total: int, parts: int) -> range:
    """The paper's block partition: rows ``part*total//parts`` to
    ``(part+1)*total//parts`` (exclusive).

    Covers ``range(total)`` exactly once across ``parts`` partitions, with
    sizes differing by at most one.

    >>> [list(block_range(t, 10, 3)) for t in range(3)]
    [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]
    """
    if not isinstance(parts, int) or isinstance(parts, bool) or parts < 1:
        raise ValueError(f"parts must be an int >= 1, got {parts!r}")
    if not isinstance(total, int) or isinstance(total, bool) or total < 0:
        raise ValueError(f"total must be an int >= 0, got {total!r}")
    if not isinstance(part, int) or isinstance(part, bool) or not 0 <= part < parts:
        raise ValueError(f"part must be an int in [0, {parts}), got {part!r}")
    return range(part * total // parts, (part + 1) * total // parts)
