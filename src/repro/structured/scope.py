"""Imperative spawning scope — structured concurrency for irregular shapes.

The block and for-loop constructs cover the paper's notation; some
applications (e.g. the §5.3 writer + nested reader loop) are more natural
with an imperative *scope*: spawn whatever you like inside the ``with``,
and the scope joins everything at exit — preserving the paper's invariant
that execution never continues past a multithreaded construct while any of
its threads runs.

>>> from repro.structured import ThreadScope
>>> with ThreadScope() as scope:
...     h = scope.spawn(lambda: 21 * 2)
>>> h.result()
42
"""

from __future__ import annotations

import contextvars
import threading
from typing import Any, Callable, Generic, TypeVar

from repro.structured.block import MultithreadedBlockError
from repro.structured.execution import ExecutionMode, current_mode, fresh_logical_thread

T = TypeVar("T")

__all__ = ["ThreadScope", "SpawnHandle"]


class SpawnHandle(Generic[T]):
    """Join handle for one spawned statement.

    ``result()`` is only valid after the owning scope has exited (the
    scope is the join boundary; handles do not join individually).
    """

    __slots__ = ("_name", "_done", "_value", "_error")

    def __init__(self, name: str) -> None:
        self._name = name
        self._done = False
        self._value: T | None = None
        self._error: BaseException | None = None

    def result(self) -> T:
        """The statement's return value (raises its exception if it failed)."""
        if not self._done:
            raise RuntimeError(
                f"{self!r}: result() before scope exit — the scope joins, not the handle"
            )
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"<SpawnHandle {self._name!r} {state}>"


class ThreadScope:
    """A joinable spawning scope with block-equivalent semantics.

    All spawned callables run as threads (or inline, under sequential
    execution mode); ``__exit__`` joins them all and aggregates their
    exceptions into :class:`MultithreadedBlockError`.  Spawning after exit
    is an error — the paper forbids jumping into a multithreaded block.
    """

    def __init__(self, *, name: str = "scope", mode: ExecutionMode | None = None) -> None:
        self._name = name
        self._mode = mode
        self._threads: list[threading.Thread] = []
        self._handles: list[SpawnHandle[Any]] = []
        self._errors: list[BaseException] = []
        self._errors_lock = threading.Lock()
        self._entered = False
        self._closed = False

    def __enter__(self) -> "ThreadScope":
        if self._entered:
            raise RuntimeError(f"{self!r} is not reentrant")
        self._entered = True
        return self

    def spawn(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> SpawnHandle[T]:
        """Run ``fn(*args, **kwargs)`` as a statement of this scope."""
        if not self._entered or self._closed:
            raise RuntimeError(f"{self!r}: spawn outside the active scope")
        if not callable(fn):
            raise TypeError(f"spawn target must be callable, got {fn!r}")
        handle: SpawnHandle[T] = SpawnHandle(f"{self._name}-{len(self._handles)}")
        self._handles.append(handle)
        effective = self._mode if self._mode is not None else current_mode()
        if effective is ExecutionMode.SEQUENTIAL:
            try:
                handle._value = fresh_logical_thread(
                    contextvars.copy_context(), fn, *args, **kwargs
                )
            except BaseException as exc:  # noqa: BLE001 - aggregated at exit
                handle._error = exc
                self._errors.append(exc)
            finally:
                handle._done = True
            return handle

        ctx = contextvars.copy_context()

        def runner() -> None:
            try:
                handle._value = fresh_logical_thread(ctx, fn, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - aggregated at exit
                handle._error = exc
                with self._errors_lock:
                    self._errors.append(exc)
            finally:
                handle._done = True

        thread = threading.Thread(target=runner, name=handle._name)
        self._threads.append(thread)
        thread.start()
        return handle

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._closed = True
        for thread in self._threads:
            thread.join()
        if self._errors and exc_type is None:
            raise MultithreadedBlockError(
                f"{len(self._errors)} of {len(self._handles)} statements failed",
                self._errors,
            )

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("open" if self._entered else "new")
        return f"<ThreadScope {self._name!r} {state} spawned={len(self._handles)}>"
