"""Traditional synchronization primitives, built from scratch.

These are the mechanisms the paper compares counters against (§1, §8):
sticky events (the paper's "condition variables"), barriers, semaphores,
single-assignment variables — plus the modern comparators the related-work
discussion anticipates (CountDownLatch, Phaser) and a bounded-buffer
channel for the §5.3 contrast.  Everything is implemented over
``threading.Lock`` / ``threading.Condition`` only, so the substrate is
self-contained and inspectable.
"""

from repro.sync.barrier import CounterBarrier, CyclicBarrier
from repro.sync.channel import CLOSED, Channel
from repro.sync.errors import (
    AlreadyAssignedError,
    BrokenBarrierError,
    ChannelClosedError,
    SyncError,
    SyncTimeout,
)
from repro.sync.event import Event
from repro.sync.latch import CountDownLatch
from repro.sync.monitor import Monitor, synchronized
from repro.sync.phaser import Phaser
from repro.sync.rendezvous import Rendezvous
from repro.sync.rwlock import ReadWriteLock
from repro.sync.semaphore import CountingSemaphore
from repro.sync.single_assignment import SingleAssignment

__all__ = [
    "Event",
    "Monitor",
    "synchronized",
    "ReadWriteLock",
    "Rendezvous",
    "CyclicBarrier",
    "CounterBarrier",
    "CountingSemaphore",
    "CountDownLatch",
    "Phaser",
    "SingleAssignment",
    "Channel",
    "CLOSED",
    "SyncError",
    "SyncTimeout",
    "BrokenBarrierError",
    "AlreadyAssignedError",
    "ChannelClosedError",
]
