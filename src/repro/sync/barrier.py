"""Cyclic barriers, built from scratch over a lock and condition variable.

The paper's §4.3 and §5.1 baselines synchronize threads with an N-way
barrier (``b.Pass()``).  Two implementations are provided:

* :class:`CyclicBarrier` — the classic counting barrier with *sense
  reversal*: a generation flag distinguishes consecutive barrier episodes
  so a fast thread re-entering the barrier cannot consume wakeups meant
  for the previous episode.  Broken-barrier semantics follow
  POSIX/Java: a timeout or abort breaks the barrier for everyone until
  ``reset()``.
* :class:`CounterBarrier` — a barrier *expressed with one monotonic
  counter* (arrivals increment; ``pass_`` waits for ``generation *
  parties``).  It exists to demonstrate that counters subsume barriers
  (§8) and as a differential-testing twin for :class:`CyclicBarrier`.
"""

from __future__ import annotations

import threading
import time

from repro.core.api import CounterProtocol
from repro.core.counter import MonotonicCounter
from repro.sync.errors import BrokenBarrierError, SyncTimeout

__all__ = ["CyclicBarrier", "CounterBarrier"]


class CyclicBarrier:
    """N-party reusable barrier (central algorithm, sense-reversing).

    >>> b = CyclicBarrier(2)
    >>> # two threads each call b.pass_() per iteration
    """

    __slots__ = ("_cond", "_parties", "_arrived", "_generation", "_broken", "_name", "passes")

    def __init__(self, parties: int, *, name: str | None = None) -> None:
        if not isinstance(parties, int) or isinstance(parties, bool) or parties < 1:
            raise ValueError(f"parties must be an int >= 1, got {parties!r}")
        self._cond = threading.Condition(threading.Lock())
        self._parties = parties
        self._arrived = 0
        self._generation = 0
        self._broken = False
        self._name = name
        #: Number of completed barrier episodes (diagnostic).
        self.passes = 0

    @property
    def parties(self) -> int:
        return self._parties

    @property
    def broken(self) -> bool:
        with self._cond:
            return self._broken

    def pass_(self, timeout: float | None = None) -> int:
        """Wait until all parties arrive; returns the arrival index (0-based).

        The last arriver gets index ``parties - 1``, releases everyone, and
        advances the generation.  On timeout the barrier breaks and every
        waiter (current and future) raises
        :class:`~repro.sync.errors.BrokenBarrierError`.
        """
        with self._cond:
            if self._broken:
                raise BrokenBarrierError(f"{self!r} is broken")
            generation = self._generation
            index = self._arrived
            self._arrived += 1
            if self._arrived == self._parties:
                self._arrived = 0
                self._generation += 1
                self.passes += 1
                self._cond.notify_all()
                return index
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._generation == generation and not self._broken:
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._generation != generation or self._broken:
                        break
                    self._break_locked()
                    raise SyncTimeout(
                        f"{self!r}: pass_() timed out after {timeout}s "
                        f"({self._arrived}/{self._parties} arrived)"
                    )
            if self._broken and self._generation == generation:
                raise BrokenBarrierError(f"{self!r} broke while waiting")
            return index

    def abort(self) -> None:
        """Break the barrier, waking and failing all waiters."""
        with self._cond:
            self._break_locked()

    def reset(self) -> None:
        """Return a broken barrier to service (current waiters are failed)."""
        with self._cond:
            self._break_locked()
            self._broken = False
            self._arrived = 0
            self._generation += 1

    def _break_locked(self) -> None:
        self._broken = True
        self._cond.notify_all()

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        state = "broken" if self._broken else f"{self._arrived}/{self._parties}"
        return f"<CyclicBarrier{label} {state}>"


class CounterBarrier:
    """A reusable N-party barrier expressed with a single monotonic counter.

    Episode *g* completes when the counter reaches ``(g + 1) * parties``:
    each party increments once on arrival and checks for the episode
    total.  Each thread tracks its own episode number locally, so the
    object itself is just a counter — a direct demonstration of §8's claim
    that one counter with many suspension queues replaces a dedicated
    barrier object.

    Unlike :class:`CyclicBarrier` this barrier cannot "break": counter
    monotonicity gives every episode a stable completion condition.  A
    thread must not skip episodes (same contract as any barrier).
    """

    __slots__ = ("_counter", "_parties", "_local", "_name")

    def __init__(
        self,
        parties: int,
        *,
        counter: CounterProtocol | None = None,
        name: str | None = None,
    ) -> None:
        if not isinstance(parties, int) or isinstance(parties, bool) or parties < 1:
            raise ValueError(f"parties must be an int >= 1, got {parties!r}")
        self._counter = counter if counter is not None else MonotonicCounter(name=name)
        self._parties = parties
        self._local = threading.local()
        self._name = name

    @property
    def parties(self) -> int:
        return self._parties

    @property
    def counter(self) -> CounterProtocol:
        """The underlying counter (for inspection in tests/benchmarks)."""
        return self._counter

    def pass_(self, timeout: float | None = None) -> None:
        """Arrive at the barrier and wait for the current episode to fill."""
        episode = getattr(self._local, "episode", 0)
        self._local.episode = episode + 1
        self._counter.increment(1)
        self._counter.check((episode + 1) * self._parties, timeout=timeout)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<CounterBarrier{label} parties={self._parties} value={self._counter.value}>"
