"""Bounded multi-producer multi-consumer channel (the §5.3 contrast).

The paper contrasts the single-writer multiple-reader *broadcast* pattern
(each reader sees every item; counters excel) with the classic bounded
buffer (each item consumed once; semaphores excel).  This channel is the
bounded buffer, built from scratch on two
:class:`~repro.sync.semaphore.CountingSemaphore` instances plus a lock —
the textbook construction — so benchmark E6/E9 can compare both patterns
on equal substrate footing.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

from repro.sync.errors import ChannelClosedError, SyncTimeout
from repro.sync.semaphore import CountingSemaphore

T = TypeVar("T")

__all__ = ["Channel", "CLOSED"]


class _Closed:
    """Sentinel yielded internally when a channel drains after close."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CLOSED>"


CLOSED = _Closed()


class Channel(Generic[T]):
    """Bounded FIFO channel: ``put`` blocks when full, ``get`` when empty.

    ``close()`` wakes consumers; ``get`` on a drained, closed channel
    raises :class:`ChannelClosedError`, and iteration stops cleanly:

    >>> ch = Channel(capacity=2)
    >>> ch.put(1); ch.put(2); ch.close()
    >>> list(ch)
    [1, 2]
    """

    __slots__ = ("_items", "_slots", "_filled", "_mutex", "_closed")

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"capacity must be an int >= 1, got {capacity!r}")
        self._items: deque[T | _Closed] = deque()
        self._slots = CountingSemaphore(capacity, name="slots")
        self._filled = CountingSemaphore(0, name="filled")
        self._mutex = threading.Lock()
        self._closed = False

    def put(self, item: T, timeout: float | None = None) -> None:
        """Enqueue ``item``, blocking while the channel is full."""
        with self._mutex:
            if self._closed:
                raise ChannelClosedError("put() on closed channel")
        self._slots.acquire(timeout=timeout)
        with self._mutex:
            if self._closed:
                self._slots.release()
                raise ChannelClosedError("put() on closed channel")
            self._items.append(item)
        self._filled.release()

    def get(self, timeout: float | None = None) -> T:
        """Dequeue one item, blocking while the channel is empty.

        Raises :class:`ChannelClosedError` once the channel is closed and
        fully drained.
        """
        self._filled.acquire(timeout=timeout)
        with self._mutex:
            item = self._items.popleft()
            if isinstance(item, _Closed):
                # Keep the tombstone available for other consumers.
                self._items.append(item)
                self._filled.release()
                raise ChannelClosedError("channel closed and drained")
        self._slots.release()
        return item

    def close(self) -> None:
        """Close for writing; pending items remain consumable."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._items.append(CLOSED)
        self._filled.release()

    def __iter__(self):
        while True:
            try:
                yield self.get()
            except ChannelClosedError:
                return

    def __len__(self) -> int:
        """Instantaneous queue depth (diagnostic only)."""
        with self._mutex:
            return sum(1 for item in self._items if not isinstance(item, _Closed))

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Channel {state} depth={len(self)}>"


# Re-exported for callers that catch timeouts from channel ops.
__all__.append("SyncTimeout")
