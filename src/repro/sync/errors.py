"""Exception hierarchy for the :mod:`repro.sync` substrate primitives."""

from __future__ import annotations

__all__ = [
    "SyncError",
    "SyncTimeout",
    "BrokenBarrierError",
    "AlreadyAssignedError",
    "ChannelClosedError",
]


class SyncError(Exception):
    """Base class for all substrate synchronization errors."""


class SyncTimeout(SyncError, TimeoutError):
    """A bounded wait on a substrate primitive expired."""


class BrokenBarrierError(SyncError, RuntimeError):
    """The barrier was broken (a party timed out or the barrier was aborted).

    Mirrors the semantics of POSIX/Java barriers: once broken, every
    current and future ``pass_()`` raises until ``reset()``.
    """


class AlreadyAssignedError(SyncError, RuntimeError):
    """A single-assignment variable was assigned a second time."""


class ChannelClosedError(SyncError, RuntimeError):
    """A ``put`` was attempted on a closed channel."""
