"""The paper's "condition variable": a sticky set/check event.

Section 4.4 of the paper uses objects with ``Set()`` and ``Check()``
operations, where ``Check`` suspends until the object has been set and a
set object stays set.  (This is the *event* of Win32 / the "condition
variable with memory" of older literature — not a POSIX condition
variable, which is stateless.)  We implement it from scratch over a lock
and a stateless wait queue so the substrate does not depend on
``threading.Event``.

An :class:`Event` is exactly a monotonic counter restricted to the value
domain {0, 1}: ``set`` == ``increment`` to 1, ``check`` == ``check(1)``.
That correspondence is what lets one counter replace an array of these
objects (§4.5), and it is property-tested in
``tests/sync/test_event.py``.
"""

from __future__ import annotations

import threading
import time

from repro.sync.errors import SyncTimeout

__all__ = ["Event"]


class Event:
    """One-shot sticky event: ``set()`` once, ``check()`` forever after.

    >>> e = Event()
    >>> e.is_set()
    False
    >>> e.set()
    >>> e.check()   # returns immediately
    """

    __slots__ = ("_cond", "_flag", "_name")

    def __init__(self, *, name: str | None = None) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._flag = False
        self._name = name

    def set(self) -> None:
        """Set the event and wake all waiters.  Idempotent."""
        with self._cond:
            if not self._flag:
                self._flag = True
                self._cond.notify_all()

    def check(self, timeout: float | None = None) -> None:
        """Suspend until the event is set.

        ``timeout`` (seconds) raises :class:`~repro.sync.errors.SyncTimeout`
        on expiry; ``None`` waits indefinitely.
        """
        with self._cond:
            if self._flag:
                return
            if timeout is None:
                while not self._flag:
                    self._cond.wait()
                return
            deadline = time.monotonic() + timeout
            while not self._flag:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._flag:
                        return
                    raise SyncTimeout(f"{self!r}: check() timed out after {timeout}s")

    # `wait` as an alias familiar to threading.Event users.
    wait = check

    def is_set(self) -> bool:
        """Diagnostic probe; do not use for synchronization decisions."""
        with self._cond:
            return self._flag

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        state = "set" if self._flag else "unset"
        return f"<Event{label} {state}>"
