"""CountDownLatch — the related-work comparator from modern libraries.

The reproduction-band notes observe that monotonic counters resemble
``java.util.concurrent.CountDownLatch``.  The resemblance is real but the
latch is strictly weaker: it counts *down* to a single fixed level (zero),
so it has **one** suspension queue and is single-shot, whereas a counter
counts up forever and suspends threads at arbitrarily many levels.
Benchmark E9 quantifies the consequence: emulating the Floyd-Warshall
condvar-array pattern needs N latches but only one counter.
"""

from __future__ import annotations

import threading
import time

from repro.sync.errors import SyncTimeout

__all__ = ["CountDownLatch"]


class CountDownLatch:
    """Single-shot latch: ``count_down`` toward zero, ``await_`` for zero."""

    __slots__ = ("_cond", "_count", "_name")

    def __init__(self, count: int, *, name: str | None = None) -> None:
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ValueError(f"count must be an int >= 0, got {count!r}")
        self._cond = threading.Condition(threading.Lock())
        self._count = count
        self._name = name

    @property
    def count(self) -> int:
        """Remaining count (diagnostic only)."""
        with self._cond:
            return self._count

    def count_down(self, n: int = 1) -> None:
        """Decrease the count by ``n`` (floored at zero); zero releases all."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ValueError(f"n must be an int >= 1, got {n!r}")
        with self._cond:
            if self._count == 0:
                return
            self._count = max(0, self._count - n)
            if self._count == 0:
                self._cond.notify_all()

    def await_(self, timeout: float | None = None) -> None:
        """Suspend until the count reaches zero."""
        with self._cond:
            if self._count == 0:
                return
            if timeout is None:
                while self._count:
                    self._cond.wait()
                return
            deadline = time.monotonic() + timeout
            while self._count:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._count == 0:
                        return
                    raise SyncTimeout(f"{self!r}: await_() timed out after {timeout}s")

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<CountDownLatch{label} count={self._count}>"
