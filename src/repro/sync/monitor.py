"""Hoare-style monitors (paper ref 13), built from scratch.

The paper's §1/§8 lists monitors among the fundamental mechanisms, with
"a statically bounded number of queues" — one per declared condition.
This class provides the classic signal-and-continue monitor discipline
(Mesa semantics): ``synchronized`` methods/blocks under one hidden lock,
plus named condition queues with ``wait_for`` / ``notify``.

It exists as a substrate/comparator: the E9 discussion contrasts its
*statically declared* queues with a counter's dynamically varying ones.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import wraps
from typing import Callable, Iterator, TypeVar

from repro.sync.errors import SyncError, SyncTimeout

T = TypeVar("T")

__all__ = ["Monitor", "synchronized"]


class Monitor:
    """A Mesa-semantics monitor with named condition queues.

    Subclass and decorate methods with :func:`synchronized`, or use
    :meth:`entered` as a context manager.  Condition queues are declared
    implicitly on first use by name — but each name is one queue, fixed
    for the monitor's lifetime, reflecting the static-queue model the
    paper contrasts counters against.

    >>> class Cell(Monitor):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self._full = False
    ...     @synchronized
    ...     def put(self, v):
    ...         self._value, self._full = v, True
    ...         self.notify_all("full")
    ...     @synchronized
    ...     def take(self):
    ...         self.wait_for("full", lambda: self._full)
    ...         return self._value
    """

    def __init__(self) -> None:
        self._monitor_lock = threading.RLock()
        self._conditions: dict[str, threading.Condition] = {}

    @contextmanager
    def entered(self) -> Iterator[None]:
        """Hold the monitor lock for a block (re-entrant)."""
        with self._monitor_lock:
            yield

    def _condition(self, name: str) -> threading.Condition:
        condition = self._conditions.get(name)
        if condition is None:
            condition = threading.Condition(self._monitor_lock)
            self._conditions[name] = condition
        return condition

    @property
    def queue_names(self) -> tuple[str, ...]:
        """The declared condition queues (static once used)."""
        return tuple(sorted(self._conditions))

    def wait_for(
        self,
        queue: str,
        predicate: Callable[[], bool],
        timeout: float | None = None,
    ) -> None:
        """Wait on the named queue until ``predicate()`` holds.

        Mesa semantics: re-tests the predicate after every wakeup.  Must
        be called while inside the monitor (a synchronized method or
        :meth:`entered` block).
        """
        if not self._monitor_lock._is_owned():  # type: ignore[attr-defined]
            raise SyncError("wait_for() outside the monitor")
        condition = self._condition(queue)
        if timeout is None:
            while not predicate():
                condition.wait()
            return
        deadline = time.monotonic() + timeout
        while not predicate():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not condition.wait(remaining):
                if predicate():
                    return
                raise SyncTimeout(f"wait_for({queue!r}) timed out after {timeout}s")

    def notify(self, queue: str, n: int = 1) -> None:
        """Wake up to ``n`` waiters on the named queue."""
        if not self._monitor_lock._is_owned():  # type: ignore[attr-defined]
            raise SyncError("notify() outside the monitor")
        self._condition(queue).notify(n)

    def notify_all(self, queue: str) -> None:
        """Wake every waiter on the named queue."""
        if not self._monitor_lock._is_owned():  # type: ignore[attr-defined]
            raise SyncError("notify_all() outside the monitor")
        self._condition(queue).notify_all()


def synchronized(method: Callable[..., T]) -> Callable[..., T]:
    """Make a :class:`Monitor` method hold the monitor lock."""

    @wraps(method)
    def wrapper(self: Monitor, *args, **kwargs) -> T:
        if not isinstance(self, Monitor):
            raise TypeError("@synchronized methods require a Monitor subclass")
        with self._monitor_lock:
            return method(self, *args, **kwargs)

    return wrapper
