"""Phaser — a multi-phase related-work comparator.

``java.util.concurrent.Phaser`` generalizes barriers with dynamic party
registration and a monotonically advancing *phase* number.  Its
``await_advance(phase)`` is close in spirit to ``counter.check(level)`` —
both wait for a monotone quantity — but the phaser couples waiting to the
all-parties-arrived protocol, while a counter decouples "progress
announcement" (increment) from "progress requirement" (check) completely.
Benchmark E9 uses this class to re-express the §4 Floyd-Warshall pipeline
and measure the cost of the coupling.
"""

from __future__ import annotations

import threading
import time

from repro.sync.errors import SyncError, SyncTimeout

__all__ = ["Phaser"]


class Phaser:
    """Reusable multi-phase barrier with dynamic registration.

    Parties register (at construction or via :meth:`register`), then each
    phase completes when every registered party has arrived.
    ``arrive_and_await_advance`` is the barrier-style composite;
    ``arrive`` / ``await_advance`` are the split operations.
    """

    __slots__ = ("_cond", "_parties", "_arrived", "_phase", "_name")

    def __init__(self, parties: int = 0, *, name: str | None = None) -> None:
        if not isinstance(parties, int) or isinstance(parties, bool) or parties < 0:
            raise ValueError(f"parties must be an int >= 0, got {parties!r}")
        self._cond = threading.Condition(threading.Lock())
        self._parties = parties
        self._arrived = 0
        self._phase = 0
        self._name = name

    @property
    def phase(self) -> int:
        """Current phase number (diagnostic only)."""
        with self._cond:
            return self._phase

    @property
    def parties(self) -> int:
        with self._cond:
            return self._parties

    def register(self, n: int = 1) -> int:
        """Add ``n`` parties; returns the current phase."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ValueError(f"n must be an int >= 1, got {n!r}")
        with self._cond:
            self._parties += n
            return self._phase

    def arrive(self) -> int:
        """Arrive at the current phase without waiting; returns that phase."""
        with self._cond:
            return self._arrive_locked(deregister=False)

    def arrive_and_deregister(self) -> int:
        """Arrive and drop out; remaining parties complete the phase."""
        with self._cond:
            return self._arrive_locked(deregister=True)

    def arrive_and_await_advance(self, timeout: float | None = None) -> int:
        """Barrier-style: arrive, then wait for the phase to advance."""
        with self._cond:
            phase = self._arrive_locked(deregister=False)
            self._await_locked(phase, timeout)
            return self._phase

    def await_advance(self, phase: int, timeout: float | None = None) -> int:
        """Wait until the phaser's phase exceeds ``phase``.

        Returns immediately if the phaser has already advanced past
        ``phase`` — like ``check``, the condition is stable because the
        phase number is monotone.
        """
        if not isinstance(phase, int) or isinstance(phase, bool) or phase < 0:
            raise ValueError(f"phase must be an int >= 0, got {phase!r}")
        with self._cond:
            self._await_locked(phase, timeout)
            return self._phase

    def _arrive_locked(self, *, deregister: bool) -> int:
        if self._parties == 0:
            raise SyncError(f"{self!r}: arrive() with no registered parties")
        phase = self._phase
        self._arrived += 1
        if deregister:
            self._parties -= 1
        if self._arrived >= self._parties:
            self._arrived = 0
            self._phase += 1
            self._cond.notify_all()
        return phase

    def _await_locked(self, phase: int, timeout: float | None) -> None:
        if timeout is None:
            while self._phase <= phase:
                self._cond.wait()
            return
        deadline = time.monotonic() + timeout
        while self._phase <= phase:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._cond.wait(remaining):
                if self._phase > phase:
                    return
                raise SyncTimeout(
                    f"{self!r}: await_advance({phase}) timed out after {timeout}s"
                )

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<Phaser{label} phase={self._phase} "
            f"arrived={self._arrived}/{self._parties}>"
        )
