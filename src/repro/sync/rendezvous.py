"""Ada-style rendezvous (paper ref 1) — the last §1 mechanism.

An *entry* couples a caller and an acceptor: ``call(request)`` blocks
until an acceptor takes the request, computes a reply, and both proceed
— extended rendezvous semantics (the caller stays blocked for the whole
service, unlike a queue handoff).  One entry has exactly two suspension
queues (callers, acceptors), the "statically bounded" shape §8 contrasts
with counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Generic, TypeVar

from repro.sync.errors import SyncTimeout

Req = TypeVar("Req")
Rep = TypeVar("Rep")

__all__ = ["Rendezvous"]


class _Exchange(Generic[Req, Rep]):
    """One caller's pending exchange: request in, reply (or error) out."""

    __slots__ = ("request", "reply", "error", "finished", "done")

    def __init__(self, request: Req, lock: threading.Lock) -> None:
        self.request = request
        self.reply: Rep | None = None
        self.error: BaseException | None = None
        self.finished = False
        self.done = threading.Condition(lock)


class Rendezvous(Generic[Req, Rep]):
    """A single entry with extended-rendezvous semantics.

    >>> entry = Rendezvous()
    >>> # server thread:  entry.accept(lambda req: req * 2)
    >>> # client thread:  entry.call(21)  ->  42
    """

    def __init__(self, *, name: str | None = None) -> None:
        self._lock = threading.Lock()
        self._callers_ok = threading.Condition(self._lock)
        self._queue: list[_Exchange[Req, Rep]] = []
        self._name = name

    def call(self, request: Req, timeout: float | None = None) -> Rep:
        """Issue an entry call; blocks until an acceptor services it.

        Raises whatever the acceptor's service function raised, or
        :class:`~repro.sync.errors.SyncTimeout` if nobody accepted in
        time (the request is then withdrawn).
        """
        exchange = _Exchange[Req, Rep](request, self._lock)
        with self._lock:
            self._queue.append(exchange)
            self._callers_ok.notify(1)
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._finished(exchange):
                if deadline is None:
                    exchange.done.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not exchange.done.wait(remaining):
                    if self._finished(exchange):
                        break
                    if exchange in self._queue:  # not yet taken: withdraw
                        self._queue.remove(exchange)
                        raise SyncTimeout(f"{self!r}: call() timed out after {timeout}s")
                    # Taken but not finished: service in progress; extended
                    # rendezvous means we must see it through.
                    while not self._finished(exchange):
                        exchange.done.wait()
            if exchange.error is not None:
                raise exchange.error
            return exchange.reply  # type: ignore[return-value]

    @staticmethod
    def _finished(exchange: _Exchange[Req, Rep]) -> bool:
        return exchange.finished

    def accept(self, service: Callable[[Req], Rep], timeout: float | None = None) -> Rep:
        """Take one pending call, run ``service`` on it, release the caller.

        Returns the reply (for the acceptor's own use).  Blocks until a
        call arrives; ``service`` runs *outside* the entry lock so other
        calls can queue meanwhile, but the caller stays blocked until the
        reply is posted — the extended-rendezvous contract.
        """
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._queue:
                if deadline is None:
                    self._callers_ok.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._callers_ok.wait(remaining):
                    if self._queue:
                        break
                    raise SyncTimeout(f"{self!r}: accept() timed out after {timeout}s")
            exchange = self._queue.pop(0)
        try:
            reply = service(exchange.request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
            with self._lock:
                exchange.error = exc
                exchange.finished = True
                exchange.done.notify_all()
            raise
        with self._lock:
            exchange.reply = reply
            exchange.finished = True
            exchange.done.notify_all()
        return reply

    @property
    def pending(self) -> int:
        """Queued, not-yet-accepted calls (diagnostic only)."""
        with self._lock:
            return len(self._queue)

    def __repr__(self) -> str:
        # Lock-free: repr is used inside error messages raised while the
        # entry lock is held (it is a plain, non-reentrant Lock).
        label = f" {self._name!r}" if self._name else ""
        return f"<Rendezvous{label} pending={len(self._queue)}>"
