"""Reader-writer lock, built from scratch over a lock and conditions.

A substrate comparator with exactly two suspension queues (readers,
writers) — another "statically bounded queues" mechanism in the paper's
§8 taxonomy.  Writer-preference to avoid writer starvation: new readers
queue behind a waiting writer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.sync.errors import SyncError, SyncTimeout

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self, *, name: str | None = None) -> None:
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._active_readers = 0
        self._active_writer = False
        self._waiting_writers = 0
        self._name = name

    # ---------------------------------------------------------------- read

    def acquire_read(self, timeout: float | None = None) -> None:
        """Take the lock shared; blocks while a writer holds or waits."""
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._active_writer or self._waiting_writers:
                if not self._wait(self._readers_ok, deadline):
                    raise SyncTimeout(f"{self!r}: acquire_read timed out")
            self._active_readers += 1

    def release_read(self) -> None:
        with self._lock:
            if self._active_readers <= 0:
                raise SyncError(f"{self!r}: release_read without acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify(1)

    # --------------------------------------------------------------- write

    def acquire_write(self, timeout: float | None = None) -> None:
        """Take the lock exclusive; blocks while anyone else holds it."""
        with self._lock:
            self._waiting_writers += 1
            deadline = None if timeout is None else time.monotonic() + timeout
            try:
                while self._active_writer or self._active_readers:
                    if not self._wait(self._writers_ok, deadline):
                        raise SyncTimeout(f"{self!r}: acquire_write timed out")
                self._active_writer = True
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._lock:
            if not self._active_writer:
                raise SyncError(f"{self!r}: release_write without acquire_write")
            self._active_writer = False
            if self._waiting_writers:
                self._writers_ok.notify(1)
            else:
                self._readers_ok.notify_all()

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _wait(condition: threading.Condition, deadline: float | None) -> bool:
        if deadline is None:
            condition.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return condition.wait(remaining) or True  # re-test in caller loop

    @contextmanager
    def reading(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        state = "W" if self._active_writer else f"R{self._active_readers}"
        return f"<ReadWriteLock{label} {state} waitingW={self._waiting_writers}>"
