"""Counting semaphore, built from scratch over a lock and condition variable.

Dijkstra's semaphore [paper ref 7] is the traditional tool for the
multiple-writer multiple-reader bounded buffer that §5.3 contrasts with
the single-writer broadcast pattern.  We implement P/V (``acquire`` /
``release``) directly so :mod:`repro.sync.channel` and benchmark E9 have a
from-scratch substrate.

Unlike a monotonic counter, a semaphore's value can *decrease*, so a
waiter observing "value > 0" races with other waiters — exactly the
nondeterminism §6 discusses.
"""

from __future__ import annotations

import threading
import time

from repro.sync.errors import SyncTimeout

__all__ = ["CountingSemaphore"]


class CountingSemaphore:
    """Classic counting semaphore with FIFO-fair wakeup accounting.

    ``acquire`` (P) decrements, suspending while the value is zero;
    ``release`` (V) increments and wakes one waiter.  Fairness note: we
    wake with ``notify(1)`` and re-test under the lock, so barging is
    possible exactly as with POSIX semaphores — this is the intended
    (nondeterministic) baseline behaviour.
    """

    __slots__ = ("_cond", "_value", "_name")

    def __init__(self, initial: int = 0, *, name: str | None = None) -> None:
        if not isinstance(initial, int) or isinstance(initial, bool) or initial < 0:
            raise ValueError(f"initial must be an int >= 0, got {initial!r}")
        self._cond = threading.Condition(threading.Lock())
        self._value = initial
        self._name = name

    @property
    def value(self) -> int:
        """Instantaneous value (diagnostic only)."""
        with self._cond:
            return self._value

    def acquire(self, n: int = 1, timeout: float | None = None) -> None:
        """P operation: atomically take ``n`` units, waiting as needed."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ValueError(f"n must be an int >= 1, got {n!r}")
        with self._cond:
            if timeout is None:
                while self._value < n:
                    self._cond.wait()
                self._value -= n
                return
            deadline = time.monotonic() + timeout
            while self._value < n:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._value >= n:
                        break
                    raise SyncTimeout(f"{self!r}: acquire({n}) timed out after {timeout}s")
            self._value -= n

    def release(self, n: int = 1) -> None:
        """V operation: return ``n`` units and wake waiters."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ValueError(f"n must be an int >= 1, got {n!r}")
        with self._cond:
            self._value += n
            # notify_all rather than notify(n): waiters may need n > 1 units,
            # so a targeted wake could strand a satisfiable waiter.
            self._cond.notify_all()

    def __enter__(self) -> "CountingSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<CountingSemaphore{label} value={self._value}>"
