"""Single-assignment (sync) variables, per the paper's related work (§8).

Dataflow languages (Val, Sisal, Strand, PCN, CC++ — paper refs 3-5, 10,
12, 15) build determinism on *single-assignment variables*: a cell that is
written once and whose readers suspend until the write happens.  Counters
generalize them by (i) separating synchronization from data and (ii)
supporting many waiting levels; a single-assignment variable is the
special case "counter with one level" + a payload.

This class is the substrate for the equivalence tests in
``tests/sync/test_single_assignment.py`` and a comparator in E9.
"""

from __future__ import annotations

import threading
import time
from typing import Generic, TypeVar

from repro.sync.errors import AlreadyAssignedError, SyncTimeout

T = TypeVar("T")

__all__ = ["SingleAssignment"]


class SingleAssignment(Generic[T]):
    """Write-once cell whose readers suspend until assignment.

    >>> cell = SingleAssignment()
    >>> cell.assign(42)
    >>> cell.read()
    42
    """

    __slots__ = ("_cond", "_assigned", "_value", "_name")

    def __init__(self, *, name: str | None = None) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._assigned = False
        self._value: T | None = None
        self._name = name

    def assign(self, value: T) -> None:
        """Assign the value; a second assignment raises."""
        with self._cond:
            if self._assigned:
                raise AlreadyAssignedError(f"{self!r} already assigned")
            self._value = value
            self._assigned = True
            self._cond.notify_all()

    def read(self, timeout: float | None = None) -> T:
        """Suspend until assigned, then return the value."""
        with self._cond:
            if self._assigned:
                return self._value  # type: ignore[return-value]
            if timeout is None:
                while not self._assigned:
                    self._cond.wait()
                return self._value  # type: ignore[return-value]
            deadline = time.monotonic() + timeout
            while not self._assigned:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._assigned:
                        break
                    raise SyncTimeout(f"{self!r}: read() timed out after {timeout}s")
            return self._value  # type: ignore[return-value]

    def is_assigned(self) -> bool:
        """Diagnostic probe; do not use for synchronization decisions."""
        with self._cond:
            return self._assigned

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        state = "assigned" if self._assigned else "unassigned"
        return f"<SingleAssignment{label} {state}>"
