"""``repro.testkit`` — schedule-injection testing for the real primitives.

The counters' concurrency tests historically came in two flavours:
hammer tests (real threads, real time, hope the race window opens) and
hand-built monkeypatched reproductions (deterministic, but testing a
Frankenstein object).  This package adds the missing middle: the **real**
primitives, instrumented at named sync points
(:mod:`repro.core.syncpoints`), driven through **chosen** interleavings.

Pieces:

* :class:`Controller` (:mod:`.harness`) — gates worker threads at sync
  points and releases them one grant at a time.
* :mod:`.schedulers` — seeded random and PCT grant policies for
  exploratory runs.
* :mod:`.script` — ``until``/``grant``/``run_thread``/``probe`` ops to
  pin one exact interleaving, and :func:`replay` to re-impose a recorded
  failing trace.
* :mod:`.trace` — the compact ``thread:point`` schedule format failing
  tests print.
* :mod:`.invariants` — quiescence and tally checkers over the counters'
  private state.
* :func:`interleave` (:mod:`.marks`) — the pytest decorator that runs a
  test body under N schedules and reports failures with a replayable
  trace.
* :func:`explore_model` (:mod:`.explore`) — exhaustive DPOR enumeration
  of every inequivalent schedule of a small model, with a certificate
  (:mod:`.por` holds the dependence/happens-before machinery).
* :func:`shrink_trace` / :func:`replay_fails` (:mod:`.shrink`) —
  delta-debug a failing grant trace down to the steps that matter.

The hooks this rides on are compiled into the core but disabled by
default: a module-bool read on the slow paths only, and *no* hook on the
lock-free fast paths (see ``docs/testing.md`` for the measured
non-impact).
"""

from repro.testkit.explore import (
    DeadlockWitness,
    ExploreReport,
    FailureWitness,
    explore_model,
)
from repro.testkit.harness import (
    WORKER_START,
    Controller,
    DeadlockReport,
    ScheduleDeadlock,
    ScheduleError,
    ScheduleFailure,
)
from repro.testkit.invariants import (
    assert_counter_quiescent,
    assert_multiwait_closed,
    assert_sharded_quiescent,
    tallies_consistent,
)
from repro.testkit.marks import ScheduleRun, interleave
from repro.testkit.schedulers import (
    DirectedScheduler,
    PCTScheduler,
    PrefixDivergence,
    RandomScheduler,
    make_scheduler,
)
from repro.testkit.script import (
    Grant,
    Probe,
    ReplayResult,
    RunThread,
    StaleTraceError,
    Until,
    grant,
    probe,
    replay,
    run_script,
    run_thread,
    until,
)
from repro.testkit.shrink import ShrinkResult, replay_fails, shrink_trace
from repro.testkit.trace import Trace, TraceStep

__all__ = [
    "Controller",
    "DeadlockReport",
    "ScheduleError",
    "ScheduleDeadlock",
    "ScheduleFailure",
    "WORKER_START",
    "RandomScheduler",
    "PCTScheduler",
    "DirectedScheduler",
    "PrefixDivergence",
    "make_scheduler",
    "explore_model",
    "ExploreReport",
    "DeadlockWitness",
    "FailureWitness",
    "shrink_trace",
    "replay_fails",
    "ShrinkResult",
    "StaleTraceError",
    "Trace",
    "TraceStep",
    "interleave",
    "ScheduleRun",
    "run_script",
    "replay",
    "ReplayResult",
    "until",
    "grant",
    "run_thread",
    "probe",
    "Until",
    "Grant",
    "RunThread",
    "Probe",
    "assert_counter_quiescent",
    "assert_sharded_quiescent",
    "assert_multiwait_closed",
    "tallies_consistent",
]
